//! Live time-series metrics: the continuously-published side of obs.
//!
//! The [`crate::Recorder`] pipeline is post-hoc — a trace read after a
//! run ends. This module is the *live* complement: a process-wide
//! registry of named metrics the router, online controller, negotiation
//! state machine, netsim bus and DES replayer publish into while they
//! run, read concurrently by the exposition layer ([`crate::expose`])
//! and the `mmrepl top` dashboard.
//!
//! Three metric kinds:
//!
//! * **counters** — monotone `u64` totals (`serve.route.requests`). A
//!   windowed rate is computed at every [`advance_windows`] tick;
//! * **gauges** — last-write-wins `f64` levels
//!   (`online.migration_queue_bytes`);
//! * **reservoirs** — sliding-quantile latency reservoirs: a ring of
//!   [`RESERVOIR_WINDOWS`] sub-window [`Histogram`]s rotated by
//!   [`advance_windows`], so p50/p99/p999 always describe the recent
//!   window, while the cumulative count/sum stay monotone for
//!   Prometheus summary semantics.
//!
//! Recording stays behind the same single atomic enabled-check as the
//! recorder ([`crate::enabled`]): the disabled path costs one relaxed
//! load. The enabled path takes the registry's read lock (writes happen
//! only at registration) and then touches one atomic — lock-light, not
//! lock-free, which is fine because every publisher batches (one call
//! per routed *slice*, not per request).

use crate::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Sub-windows in a sliding-quantile reservoir: quantiles cover the last
/// `RESERVOIR_WINDOWS` ticks of [`advance_windows`].
pub const RESERVOIR_WINDOWS: usize = 8;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Reservoir,
}

/// Per-kind state mutated only at ticks, observations and snapshots.
enum Windowed {
    /// Counter value at the last tick and the rate computed from it.
    Counter { last: u64, rate_per_s: f64 },
    /// Gauges carry no windowed state.
    Gauge,
    /// The sub-window ring plus cumulative count/sum.
    Reservoir {
        ring: Vec<Histogram>,
        slot: usize,
        count: u64,
        sum: f64,
    },
}

struct Metric {
    kind: Kind,
    help: String,
    /// Counter: cumulative count. Gauge: `f64` bits. Unused by
    /// reservoirs.
    value: AtomicU64,
    windowed: Mutex<Windowed>,
}

impl Metric {
    fn new(kind: Kind, help: &str) -> Metric {
        let windowed = match kind {
            Kind::Counter => Windowed::Counter {
                last: 0,
                rate_per_s: 0.0,
            },
            Kind::Gauge => Windowed::Gauge,
            Kind::Reservoir => Windowed::Reservoir {
                ring: (0..RESERVOIR_WINDOWS)
                    .map(|_| Histogram::for_response_times())
                    .collect(),
                slot: 0,
                count: 0,
                sum: 0.0,
            },
        };
        Metric {
            kind,
            help: help.to_owned(),
            value: AtomicU64::new(0),
            windowed: Mutex::new(windowed),
        }
    }
}

struct Registry {
    metrics: RwLock<BTreeMap<String, Arc<Metric>>>,
    /// Recording calls that passed the enabled-check — the count the
    /// perfsuite `telemetry_overhead` model prices at the disabled-path
    /// per-call cost.
    ops: AtomicU64,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        metrics: RwLock::new(BTreeMap::new()),
        ops: AtomicU64::new(0),
    })
}

/// Looks a metric up, auto-registering it with an empty help string on
/// first use. Returns `None` on a kind collision (the name is already
/// registered as a different kind) — recording then silently no-ops
/// rather than corrupting the other kind's state.
fn metric(name: &str, kind: Kind) -> Option<Arc<Metric>> {
    let reg = registry();
    if let Some(m) = reg.metrics.read().unwrap().get(name) {
        return (m.kind == kind).then(|| Arc::clone(m));
    }
    let mut map = reg.metrics.write().unwrap();
    let m = map
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(Metric::new(kind, "")));
    (m.kind == kind).then(|| Arc::clone(m))
}

fn register(name: &str, kind: Kind, help: &str) {
    let reg = registry();
    let mut map = reg.metrics.write().unwrap();
    map.insert(name.to_owned(), Arc::new(Metric::new(kind, help)));
}

/// Registers (or re-registers, zeroing) a rate counter, so the
/// exposition carries the series even before its first increment.
pub fn register_counter(name: &str, help: &str) {
    register(name, Kind::Counter, help);
}

/// Registers (or re-registers, zeroing) a gauge.
pub fn register_gauge(name: &str, help: &str) {
    register(name, Kind::Gauge, help);
}

/// Registers (or re-registers, clearing) a sliding-quantile reservoir.
pub fn register_reservoir(name: &str, help: &str) {
    register(name, Kind::Reservoir, help);
}

/// Adds `delta` to a live counter. One relaxed load when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    registry().ops.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = metric(name, Kind::Counter) {
        m.value.fetch_add(delta, Ordering::Relaxed);
    }
}

/// Sets a live gauge (last write wins). One relaxed load when disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    registry().ops.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = metric(name, Kind::Gauge) {
        m.value.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Records one sample into a reservoir's current sub-window.
#[inline]
pub fn observe(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    registry().ops.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = metric(name, Kind::Reservoir) {
        if let Windowed::Reservoir {
            ring,
            slot,
            count,
            sum,
        } = &mut *m.windowed.lock().unwrap()
        {
            ring[*slot].record(v);
            *count += 1;
            *sum += v;
        }
    }
}

/// Merges a batch of samples (pre-accumulated in `h`, summing to
/// `sum_s` seconds) into a reservoir — the one-call-per-slice form the
/// router uses. `h` must share the [`Histogram::for_response_times`]
/// layout; an incompatible batch is dropped.
#[inline]
pub fn observe_hist(name: &str, h: &Histogram, sum_s: f64) {
    if !crate::enabled() {
        return;
    }
    registry().ops.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = metric(name, Kind::Reservoir) {
        if let Windowed::Reservoir {
            ring,
            slot,
            count,
            sum,
        } = &mut *m.windowed.lock().unwrap()
        {
            if !ring[*slot].compatible(h) {
                debug_assert!(false, "incompatible batch layout for reservoir {name}");
                return;
            }
            ring[*slot].merge(h);
            *count += h.count();
            *sum += sum_s;
        }
    }
}

/// Closes one window of `dt_s` seconds: every counter's rate becomes
/// `(now - last) / dt_s`, and every reservoir rotates to (and clears)
/// its next sub-window. Called by the exposition ticker, never by
/// publishers.
pub fn advance_windows(dt_s: f64) {
    let dt = dt_s.max(1e-9);
    for m in registry().metrics.read().unwrap().values() {
        match &mut *m.windowed.lock().unwrap() {
            Windowed::Counter { last, rate_per_s } => {
                let now = m.value.load(Ordering::Relaxed);
                *rate_per_s = now.saturating_sub(*last) as f64 / dt;
                *last = now;
            }
            Windowed::Gauge => {}
            Windowed::Reservoir { ring, slot, .. } => {
                *slot = (*slot + 1) % ring.len();
                ring[*slot] = Histogram::for_response_times();
            }
        }
    }
}

/// One counter sample in a [`TsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct TsCounter {
    /// Metric name (dotted, unsanitized).
    pub name: String,
    /// Help text from registration (empty when auto-registered).
    pub help: String,
    /// Cumulative value.
    pub value: u64,
    /// Rate over the last closed window (0 before the first tick).
    pub rate_per_s: f64,
}

/// One gauge sample in a [`TsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct TsGauge {
    /// Metric name (dotted, unsanitized).
    pub name: String,
    /// Help text from registration.
    pub help: String,
    /// Current level.
    pub value: f64,
}

/// One reservoir sample in a [`TsSnapshot`]: cumulative count/sum plus
/// sliding-window quantiles.
#[derive(Clone, Debug, PartialEq)]
pub struct TsReservoir {
    /// Metric name (dotted, unsanitized).
    pub name: String,
    /// Help text from registration.
    pub help: String,
    /// Cumulative samples ever observed.
    pub count: u64,
    /// Cumulative sum of observed values, seconds.
    pub sum_s: f64,
    /// Samples inside the current sliding window.
    pub window_count: u64,
    /// Sliding-window median (`None` while the window is empty).
    pub p50: Option<f64>,
    /// Sliding-window 90th percentile.
    pub p90: Option<f64>,
    /// Sliding-window 99th percentile.
    pub p99: Option<f64>,
    /// Sliding-window 99.9th percentile.
    pub p999: Option<f64>,
}

/// A deterministic (name-sorted) copy of the live registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<TsCounter>,
    /// Gauges, sorted by name.
    pub gauges: Vec<TsGauge>,
    /// Reservoirs, sorted by name.
    pub reservoirs: Vec<TsReservoir>,
}

impl TsSnapshot {
    /// One counter's cumulative value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// One gauge's level (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// One reservoir, when present.
    pub fn reservoir(&self, name: &str) -> Option<&TsReservoir> {
        self.reservoirs.iter().find(|r| r.name == name)
    }
}

/// Reads the whole registry into a [`TsSnapshot`]. Deterministic: the
/// registry map is name-ordered, so two snapshots of identical state
/// render identically whatever thread interleaving produced the state.
pub fn ts_snapshot() -> TsSnapshot {
    let mut snap = TsSnapshot::default();
    for (name, m) in registry().metrics.read().unwrap().iter() {
        match &*m.windowed.lock().unwrap() {
            Windowed::Counter { rate_per_s, .. } => snap.counters.push(TsCounter {
                name: name.clone(),
                help: m.help.clone(),
                value: m.value.load(Ordering::Relaxed),
                rate_per_s: *rate_per_s,
            }),
            Windowed::Gauge => snap.gauges.push(TsGauge {
                name: name.clone(),
                help: m.help.clone(),
                value: f64::from_bits(m.value.load(Ordering::Relaxed)),
            }),
            Windowed::Reservoir {
                ring, count, sum, ..
            } => {
                let mut merged = ring[0].clone();
                for h in &ring[1..] {
                    merged.merge(h);
                }
                snap.reservoirs.push(TsReservoir {
                    name: name.clone(),
                    help: m.help.clone(),
                    count: *count,
                    sum_s: *sum,
                    window_count: merged.count(),
                    p50: merged.quantile(0.5),
                    p90: merged.quantile(0.9),
                    p99: merged.quantile(0.99),
                    p999: merged.quantile(0.999),
                });
            }
        }
    }
    snap
}

/// Recording calls the registry absorbed since the last reset — the
/// input to the perfsuite's disabled-path `telemetry_overhead` model.
pub fn ts_ops() -> u64 {
    registry().ops.load(Ordering::Relaxed)
}

/// Clears every registered metric and the ops counter. Called by
/// [`crate::reset`] so back-to-back studies in one process cannot leak
/// series between runs.
pub fn reset_timeseries() {
    let reg = registry();
    reg.metrics.write().unwrap().clear();
    reg.ops.store(0, Ordering::Relaxed);
}

/// Registers the canonical metric set every instrumented subsystem
/// publishes into, so a scrape carries each series (zero-valued) from
/// the first tick — before the study's publishers have touched them.
pub fn register_core_metrics() {
    register_counter("serve.route.requests", "requests routed");
    register_counter("serve.route.objects", "objects routed");
    register_counter("serve.route.local", "objects served from the local store");
    register_counter("serve.route.peer", "objects served from peer replicas");
    register_counter(
        "serve.route.repo",
        "objects served by the serving repository node",
    );
    register_counter(
        "serve.route.overlay_deflected",
        "locally-marked objects deflected remotely by a pending overlay bit",
    );
    register_reservoir(
        "serve.route.latency_s",
        "estimated per-request response time, seconds (Eq. 5)",
    );
    register_counter("serve.epoch_swaps", "placement snapshots published");
    register_counter("negotiate.rounds", "offer/counter negotiation rounds");
    register_counter(
        "negotiate.retries",
        "negotiation offers re-sent after a timeout",
    );
    register_counter("negotiate.timeouts", "negotiation deadlines that expired");
    register_counter(
        "negotiate.degraded_sites",
        "sites degraded to last-known state on silence",
    );
    register_counter(
        "negotiate.duplicates_ignored",
        "duplicated control messages absorbed by seq-dedup",
    );
    register_counter("negotiate.messages", "control-plane messages delivered");
    register_counter("netsim.bus.sent", "messages posted on the bus");
    register_counter("netsim.bus.delivered", "messages delivered by the bus");
    register_counter("netsim.bus.dropped", "messages dropped by fault injection");
    register_counter(
        "netsim.bus.duplicated",
        "extra copies scheduled by fault injection",
    );
    register_counter(
        "netsim.bus.reordered",
        "messages held back past later sends by fault injection",
    );
    register_gauge("netsim.bus.in_flight", "messages currently in flight");
    register_counter("des.page_requests", "page requests replayed by the DES");
    register_reservoir("des.response_s", "DES page response time, seconds");
    register_counter("online.replans", "incremental replans the controller ran");
    register_counter(
        "online.migrated_bytes",
        "replica bytes the controller scheduled for migration",
    );
    register_gauge(
        "online.migration_queue_bytes",
        "bytes still queued on the sites' migration queues",
    );
    register_gauge("online.epoch", "drift epoch the online study is serving");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_counts_no_ops() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(false);
        counter_add("ts.c", 5);
        gauge_set("ts.g", 1.0);
        observe("ts.r", 0.5);
        let snap = ts_snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty());
        assert_eq!(ts_ops(), 0);
    }

    #[test]
    fn counters_gauges_and_reservoirs_roundtrip() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        register_counter("ts.req", "requests");
        counter_add("ts.req", 3);
        counter_add("ts.req", 4);
        gauge_set("ts.depth", 12.5);
        observe("ts.lat", 0.2);
        observe("ts.lat", 0.4);
        crate::set_enabled(false);
        let snap = ts_snapshot();
        assert_eq!(snap.counter("ts.req"), 7);
        assert_eq!(snap.gauge("ts.depth"), Some(12.5));
        let r = snap.reservoir("ts.lat").unwrap();
        assert_eq!((r.count, r.window_count), (2, 2));
        assert!((r.sum_s - 0.6).abs() < 1e-12);
        assert!(r.p50.is_some() && r.p999.is_some());
        assert_eq!(
            snap.counters
                .iter()
                .find(|c| c.name == "ts.req")
                .unwrap()
                .help,
            "requests"
        );
        crate::reset();
        assert!(ts_snapshot().counters.is_empty());
    }

    #[test]
    fn advance_windows_computes_rates_and_slides_quantiles() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        counter_add("ts.rate", 10);
        advance_windows(2.0);
        let snap = ts_snapshot();
        let c = snap.counters.iter().find(|c| c.name == "ts.rate").unwrap();
        assert!((c.rate_per_s - 5.0).abs() < 1e-12, "rate {}", c.rate_per_s);
        // A second tick with no increments drops the rate to zero but
        // keeps the cumulative value.
        advance_windows(1.0);
        let snap = ts_snapshot();
        let c = snap.counters.iter().find(|c| c.name == "ts.rate").unwrap();
        assert_eq!((c.value, c.rate_per_s as u64), (10, 0));

        // Reservoir samples age out after RESERVOIR_WINDOWS rotations
        // while the cumulative count stays monotone.
        observe("ts.win", 1.0);
        for _ in 0..RESERVOIR_WINDOWS {
            advance_windows(1.0);
        }
        let snap = ts_snapshot();
        let r = snap.reservoir("ts.win").unwrap();
        assert_eq!(r.count, 1, "cumulative count is monotone");
        assert_eq!(r.window_count, 0, "sample aged out of the window");
        assert_eq!(r.p50, None);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn kind_collisions_no_op_instead_of_corrupting() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        register_gauge("ts.kind", "a gauge");
        counter_add("ts.kind", 7); // wrong kind: dropped
        gauge_set("ts.kind", 2.0);
        crate::set_enabled(false);
        let snap = ts_snapshot();
        assert_eq!(snap.counter("ts.kind"), 0);
        assert_eq!(snap.gauge("ts.kind"), Some(2.0));
        crate::reset();
    }

    #[test]
    fn core_metric_set_registers_zero_valued_series() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        register_core_metrics();
        let snap = ts_snapshot();
        for name in [
            "serve.route.requests",
            "negotiate.rounds",
            "netsim.bus.sent",
            "online.replans",
        ] {
            assert!(
                snap.counters.iter().any(|c| c.name == name),
                "missing {name}"
            );
        }
        assert!(snap.reservoir("serve.route.latency_s").is_some());
        assert!(snap.gauge("online.migration_queue_bytes").is_some());
        crate::reset();
        assert!(ts_snapshot().reservoirs.is_empty());
    }
}
