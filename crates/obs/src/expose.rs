//! Prometheus text-format exposition of the live telemetry registry.
//!
//! [`gather`] snapshots the time-series registry and the SLO trackers;
//! [`to_prometheus`] renders that snapshot as Prometheus text format
//! 0.0.4 (`# HELP`/`# TYPE` comments, `_total` counters, summary
//! quantiles). [`Exporter`] runs a background ticker that advances the
//! metric windows and either answers HTTP `GET`s on a bound address or
//! atomically rewrites a scrape file every interval — the
//! `--expose <addr|file>` flag on `mmrepl online`/`route`/`negotiate`.
//!
//! Exactly one clock may drive [`crate::slo_tick`] and
//! [`crate::advance_windows`] at a time: the [`Exporter`] owns it when
//! running, and `mmrepl top` drives it from its render loop instead of
//! starting an exporter.

use crate::slo::{slo_tick, SloStatus};
use crate::timeseries::{advance_windows, ts_snapshot, TsSnapshot};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One coherent view of everything the telemetry plane tracks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counters, gauges and latency reservoirs.
    pub series: TsSnapshot,
    /// SLO burn-rate statuses.
    pub slos: Vec<SloStatus>,
}

/// Snapshots the registry and the SLO trackers together.
pub fn gather() -> TelemetrySnapshot {
    TelemetrySnapshot {
        series: ts_snapshot(),
        slos: crate::slo::slo_statuses(),
    }
}

/// `serve.route.latency_s` → `mmrepl_serve_route_latency_s`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("mmrepl_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {help}");
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders a snapshot as Prometheus text exposition format 0.0.4.
/// Deterministic: identical snapshots render to identical bytes, and
/// series appear in name order within each section.
pub fn to_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for c in &snap.series.counters {
        let name = prom_name(&c.name);
        header(&mut out, &format!("{name}_total"), &c.help, "counter");
        let _ = writeln!(out, "{name}_total {}", c.value);
        header(
            &mut out,
            &format!("{name}_per_s"),
            "windowed rate of the matching _total counter",
            "gauge",
        );
        let _ = writeln!(out, "{name}_per_s {}", c.rate_per_s);
    }
    for g in &snap.series.gauges {
        let name = prom_name(&g.name);
        header(&mut out, &name, &g.help, "gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for r in &snap.series.reservoirs {
        let name = prom_name(&r.name);
        header(&mut out, &name, &r.help, "summary");
        for (q, v) in [
            ("0.5", r.p50),
            ("0.9", r.p90),
            ("0.99", r.p99),
            ("0.999", r.p999),
        ] {
            let v = v.unwrap_or(f64::NAN);
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{name}_sum {}", r.sum_s);
        let _ = writeln!(out, "{name}_count {}", r.count);
    }
    if !snap.slos.is_empty() {
        header(
            &mut out,
            "mmrepl_slo_burn_rate",
            "error-budget burn rate over the labelled window",
            "gauge",
        );
        for s in &snap.slos {
            let _ = writeln!(
                out,
                "mmrepl_slo_burn_rate{{slo=\"{}\",window=\"short\"}} {}",
                s.name, s.short_burn
            );
            let _ = writeln!(
                out,
                "mmrepl_slo_burn_rate{{slo=\"{}\",window=\"long\"}} {}",
                s.name, s.long_burn
            );
        }
        header(
            &mut out,
            "mmrepl_slo_alerting",
            "1 while both burn windows exceed the alert threshold",
            "gauge",
        );
        for s in &snap.slos {
            let _ = writeln!(
                out,
                "mmrepl_slo_alerting{{slo=\"{}\"}} {}",
                s.name,
                u8::from(s.alerting)
            );
        }
        header(
            &mut out,
            "mmrepl_slo_alerts_total",
            "times the SLO entered the alerting state",
            "counter",
        );
        for s in &snap.slos {
            let _ = writeln!(
                out,
                "mmrepl_slo_alerts_total{{slo=\"{}\"}} {}",
                s.name, s.alerts
            );
        }
        header(
            &mut out,
            "mmrepl_slo_good_total",
            "requests that met the SLO latency target",
            "counter",
        );
        for s in &snap.slos {
            let _ = writeln!(
                out,
                "mmrepl_slo_good_total{{slo=\"{}\"}} {}",
                s.name, s.good
            );
        }
        header(
            &mut out,
            "mmrepl_slo_requests_total",
            "requests the SLO judged",
            "counter",
        );
        for s in &snap.slos {
            let _ = writeln!(
                out,
                "mmrepl_slo_requests_total{{slo=\"{}\"}} {}",
                s.name, s.total
            );
        }
    }
    out
}

/// Where the exporter publishes scrapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScrapeTarget {
    /// Serve `GET /metrics` (any path, in fact) on this address.
    Http(SocketAddr),
    /// Atomically rewrite this file every interval.
    File(PathBuf),
}

impl FromStr for ScrapeTarget {
    type Err = String;

    /// Anything that parses as a socket address (`127.0.0.1:9184`)
    /// serves HTTP; everything else is a scrape-file path.
    fn from_str(s: &str) -> Result<ScrapeTarget, String> {
        if s.is_empty() {
            return Err("empty --expose target".into());
        }
        match s.parse::<SocketAddr>() {
            Ok(addr) => Ok(ScrapeTarget::Http(addr)),
            Err(_) => Ok(ScrapeTarget::File(PathBuf::from(s))),
        }
    }
}

/// Background scrape publisher: ticks the telemetry clock every
/// interval and exposes [`to_prometheus`] output at its target.
pub struct Exporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    endpoint: String,
}

impl Exporter {
    /// Starts the publisher thread. Binding errors (HTTP target) and
    /// thread-spawn errors surface here, before anything runs.
    pub fn start(target: ScrapeTarget, interval: Duration) -> std::io::Result<Exporter> {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(10));
        let builder = std::thread::Builder::new().name("mmrepl-expose".into());
        let (endpoint, handle) = match target {
            ScrapeTarget::File(path) => {
                let endpoint = path.display().to_string();
                let handle = builder.spawn(move || file_loop(&path, interval, &flag))?;
                (endpoint, handle)
            }
            ScrapeTarget::Http(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                let endpoint = format!("http://{}/metrics", listener.local_addr()?);
                let handle = builder.spawn(move || http_loop(&listener, interval, &flag))?;
                (endpoint, handle)
            }
        };
        Ok(Exporter {
            stop,
            handle: Some(handle),
            endpoint,
        })
    }

    /// Where scrapes are served: `http://addr/metrics` or a file path.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Stops the publisher and joins its thread. A file target gets one
    /// final flush, so even a sub-interval run leaves a complete scrape
    /// behind.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Closes one telemetry window: SLO ticks first, then metric windows.
fn tick(dt_s: f64) {
    slo_tick();
    advance_windows(dt_s);
}

fn file_loop(path: &Path, interval: Duration, stop: &AtomicBool) {
    let mut last = Instant::now();
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        if last.elapsed() >= interval || stopping {
            tick(last.elapsed().as_secs_f64());
            last = Instant::now();
            let body = to_prometheus(&gather());
            let _ = crate::export::write_atomic(path, body.as_bytes());
        }
        if stopping {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http_loop(listener: &TcpListener, interval: Duration, stop: &AtomicBool) {
    let mut last = Instant::now();
    loop {
        if last.elapsed() >= interval {
            tick(last.elapsed().as_secs_f64());
            last = Instant::now();
        }
        match listener.accept() {
            Ok((mut conn, _)) => {
                // Drain the request head; any GET gets the exposition.
                let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let body = to_prometheus(&gather());
                let _ = write!(
                    conn,
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let _ = conn.write_all(body.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{register_slo, slo_record, SloSpec};
    use crate::timeseries::{counter_add, gauge_set, observe, register_counter};

    #[test]
    fn scrape_target_parses_addresses_and_paths() {
        assert_eq!(
            "127.0.0.1:9184".parse::<ScrapeTarget>(),
            Ok(ScrapeTarget::Http("127.0.0.1:9184".parse().unwrap()))
        );
        assert_eq!(
            "out/metrics.prom".parse::<ScrapeTarget>(),
            Ok(ScrapeTarget::File(PathBuf::from("out/metrics.prom")))
        );
        assert!("".parse::<ScrapeTarget>().is_err());
    }

    #[test]
    fn exposition_carries_every_metric_kind() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        register_counter("ex.requests", "requests routed");
        counter_add("ex.requests", 41);
        gauge_set("ex.depth", 3.5);
        observe("ex.latency_s", 0.25);
        register_slo(SloSpec::from_qos("ex.slo", 1.0));
        // All good: burn 0, not alerting (a 99.9% objective fires on
        // nearly any miss).
        slo_record("ex.slo", 10, 10);
        crate::slo::slo_tick();
        crate::set_enabled(false);
        let text = to_prometheus(&gather());
        assert!(text.contains("# HELP mmrepl_ex_requests_total requests routed"));
        assert!(text.contains("# TYPE mmrepl_ex_requests_total counter"));
        assert!(text.contains("mmrepl_ex_requests_total 41"));
        assert!(text.contains("mmrepl_ex_depth 3.5"));
        assert!(text.contains("# TYPE mmrepl_ex_latency_s summary"));
        assert!(text.contains("mmrepl_ex_latency_s{quantile=\"0.999\"}"));
        assert!(text.contains("mmrepl_ex_latency_s_count 1"));
        assert!(text.contains("mmrepl_slo_burn_rate{slo=\"ex.slo\",window=\"short\"}"));
        assert!(text.contains("mmrepl_slo_burn_rate{slo=\"ex.slo\",window=\"long\"}"));
        assert!(text.contains("mmrepl_slo_alerting{slo=\"ex.slo\"} 0"));
        assert!(text.contains("mmrepl_slo_requests_total{slo=\"ex.slo\"} 10"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || value == "NaN",
                "bad sample value in {line}"
            );
            assert!(parts.next().is_some(), "no name in {line}");
        }
        crate::reset();
    }

    #[test]
    fn file_exporter_flushes_on_stop_even_before_the_interval() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        counter_add("ex.file", 7);
        let dir = std::env::temp_dir().join("mmrepl-expose-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scrape.prom");
        let _ = std::fs::remove_file(&path);
        let exporter =
            Exporter::start(ScrapeTarget::File(path.clone()), Duration::from_secs(3600)).unwrap();
        assert_eq!(exporter.endpoint(), path.display().to_string());
        exporter.stop();
        crate::set_enabled(false);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("mmrepl_ex_file_total 7"), "{text}");
        crate::reset();
    }

    #[test]
    fn http_exporter_answers_a_scrape() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        counter_add("ex.http", 3);
        let exporter = Exporter::start(
            ScrapeTarget::Http("127.0.0.1:0".parse().unwrap()),
            Duration::from_millis(50),
        )
        .unwrap();
        let addr = exporter
            .endpoint()
            .trim_start_matches("http://")
            .trim_end_matches("/metrics")
            .to_owned();
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        write!(conn, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("mmrepl_ex_http_total 3"), "{response}");
        exporter.stop();
        crate::set_enabled(false);
        crate::reset();
    }
}
