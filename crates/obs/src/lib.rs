#![warn(missing_docs)]

//! # mmrepl-obs
//!
//! Structured tracing and metrics for the whole workspace: lightweight
//! spans, counters, log-spaced histograms, decision-provenance records
//! and typed events, all behind one atomic enabled-check so the disabled
//! path costs a single relaxed load per call site.
//!
//! Recording is thread-local ([`Recorder`] per thread, no locks in hot
//! paths); `mmrepl-core`'s worker pool flushes each worker's recorder
//! into a global sink after every dispatch, so parallel planner and
//! replay runs aggregate deterministically. [`snapshot`]/[`take`] read
//! the aggregate; [`to_jsonl`]/[`write_jsonl`] export it; [`stage_table`]
//! renders the per-stage wall-time breakdown.
//!
//! ## Example
//!
//! ```
//! mmrepl_obs::reset();
//! mmrepl_obs::set_enabled(true);
//! {
//!     let _span = mmrepl_obs::span("plan.partition");
//!     mmrepl_obs::add("partition.objects_local", 3);
//! }
//! mmrepl_obs::set_enabled(false);
//! let trace = mmrepl_obs::take();
//! assert_eq!(trace.counter("partition.objects_local"), 3);
//! assert!(mmrepl_obs::to_jsonl(&trace).contains("plan.partition"));
//! ```

mod export;
mod expose;
mod hist;
mod recorder;
mod slo;
mod timeseries;

pub use export::{stage_table, to_jsonl, write_atomic, write_jsonl, TRACE_SCHEMA};
pub use expose::{gather, to_prometheus, Exporter, ScrapeTarget, TelemetrySnapshot};
pub use hist::Histogram;
pub use recorder::{
    add, decision, enabled, event, flush_thread, merge_histogram, provenance_cap, record_value,
    reset, set_enabled, set_provenance_cap, snapshot, span, take, Decision, Event, Recorder, Span,
    SpanStat, DEFAULT_PROVENANCE_CAP, EVENT_CAP,
};
pub use slo::{
    register_slo, reset_slo, slo_record, slo_record_latencies, slo_statuses, slo_tick,
    take_slo_events, SloEvent, SloEventKind, SloSpec, SloStatus, DEFAULT_LATENCY_TARGET_S,
};
pub use timeseries::{
    advance_windows, counter_add, gauge_set, observe, observe_hist, register_core_metrics,
    register_counter, register_gauge, register_reservoir, reset_timeseries, ts_ops, ts_snapshot,
    TsCounter, TsGauge, TsReservoir, TsSnapshot, RESERVOIR_WINDOWS,
};

/// Serialises tests that toggle the process-wide enabled flag or read
/// the global sink/registry: the whole crate's stateful tests share one
/// lock so parallel test threads can't interleave global state.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
