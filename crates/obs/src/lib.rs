#![warn(missing_docs)]

//! # mmrepl-obs
//!
//! Structured tracing and metrics for the whole workspace: lightweight
//! spans, counters, log-spaced histograms, decision-provenance records
//! and typed events, all behind one atomic enabled-check so the disabled
//! path costs a single relaxed load per call site.
//!
//! Recording is thread-local ([`Recorder`] per thread, no locks in hot
//! paths); `mmrepl-core`'s worker pool flushes each worker's recorder
//! into a global sink after every dispatch, so parallel planner and
//! replay runs aggregate deterministically. [`snapshot`]/[`take`] read
//! the aggregate; [`to_jsonl`]/[`write_jsonl`] export it; [`stage_table`]
//! renders the per-stage wall-time breakdown.
//!
//! ## Example
//!
//! ```
//! mmrepl_obs::reset();
//! mmrepl_obs::set_enabled(true);
//! {
//!     let _span = mmrepl_obs::span("plan.partition");
//!     mmrepl_obs::add("partition.objects_local", 3);
//! }
//! mmrepl_obs::set_enabled(false);
//! let trace = mmrepl_obs::take();
//! assert_eq!(trace.counter("partition.objects_local"), 3);
//! assert!(mmrepl_obs::to_jsonl(&trace).contains("plan.partition"));
//! ```

mod export;
mod hist;
mod recorder;

pub use export::{stage_table, to_jsonl, write_jsonl, TRACE_SCHEMA};
pub use hist::Histogram;
pub use recorder::{
    add, decision, enabled, event, flush_thread, merge_histogram, provenance_cap, record_value,
    reset, set_enabled, set_provenance_cap, snapshot, span, take, Decision, Event, Recorder, Span,
    SpanStat, DEFAULT_PROVENANCE_CAP, EVENT_CAP,
};
