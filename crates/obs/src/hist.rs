//! Log-spaced histogram.
//!
//! The one histogram implementation shared by the whole workspace:
//! `netsim::metrics` re-exports it for response-time percentiles, and the
//! [`crate::Recorder`] uses it for traced value distributions. Buckets
//! are geometric, so a few hundred of them give ~2 % relative resolution
//! over five decades — the right trade for positive, heavy-tailed
//! quantities like response times and absorbed workloads.

use serde::{Deserialize, Serialize};

/// Log-spaced histogram over `[min, max]` with saturating under/overflow
/// buckets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    log_min: f64,
    log_width: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// A histogram with `n_buckets` log-spaced buckets covering
    /// `[min, max]` (both positive, min < max).
    pub fn new(min: f64, max: f64, n_buckets: usize) -> Self {
        assert!(
            min > 0.0 && max > min,
            "invalid histogram range [{min}, {max}]"
        );
        assert!(n_buckets >= 1, "need at least one bucket");
        let log_min = min.ln();
        let log_width = (max.ln() - log_min) / n_buckets as f64;
        Histogram {
            min,
            max,
            log_min,
            log_width,
            // +2 for the underflow and overflow buckets.
            buckets: vec![0; n_buckets + 2],
        }
    }

    /// The default range for response times: 10 ms to 100,000 s at ~2 %
    /// relative resolution (modem-era multimedia pages run to minutes;
    /// deliberately-overloaded queueing scenarios to hours).
    pub fn for_response_times() -> Self {
        Histogram::new(0.01, 100_000.0, 800)
    }

    /// The default range for traced values of unknown scale: 1 ns to 1e9
    /// at ~5 % relative resolution. Used by [`crate::record_value`] when a
    /// metric has no explicit configuration.
    pub fn for_traced_values() -> Self {
        Histogram::new(1e-9, 1e9, 800)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v < self.min {
            0
        } else if v >= self.max {
            self.buckets.len() - 1
        } else {
            1 + (((v.ln() - self.log_min) / self.log_width) as usize).min(self.buckets.len() - 3)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        let b = self.bucket_of(v);
        self.buckets[b] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`), or `None` when empty.
    /// Returns the geometric midpoint of the bucket containing the
    /// quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bucket_value(i));
            }
        }
        Some(self.max)
    }

    fn bucket_value(&self, i: usize) -> f64 {
        if i == 0 {
            self.min
        } else if i == self.buckets.len() - 1 {
            self.max
        } else {
            // Geometric midpoint of the bucket.
            let lo = self.log_min + (i - 1) as f64 * self.log_width;
            (lo + 0.5 * self.log_width).exp()
        }
    }

    /// Samples at or below `v`, bucket-granular: every sample sharing
    /// `v`'s bucket counts, so the answer can overshoot by at most one
    /// bucket's worth (~2 % relative for the response-time layout).
    /// This is the "good" count for a latency objective.
    pub fn count_below(&self, v: f64) -> u64 {
        let b = self.bucket_of(v);
        self.buckets[..=b].iter().sum()
    }

    /// True when the two histograms share a bucket layout and may be
    /// merged.
    pub fn compatible(&self, other: &Histogram) -> bool {
        self.min == other.min && self.max == other.max && self.buckets.len() == other.buckets.len()
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(self.compatible(other), "merging incompatible histograms");
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_handles_out_of_range() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        h.record(0.5); // underflow
        h.record(1e9); // overflow
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(1.0)); // underflow bucket
        assert_eq!(h.quantile(1.0), Some(100.0)); // overflow bucket
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let mut b = Histogram::new(1.0, 100.0, 10);
        a.record(5.0);
        b.record(5.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let b = Histogram::new(1.0, 100.0, 20);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(0.0, 10.0, 5);
    }

    #[test]
    fn quantile_round_trips_at_bucket_boundaries() {
        // Samples placed exactly on bucket boundaries must come back from
        // `quantile` inside the bucket they were assigned to: within one
        // bucket's relative width of the recorded value, with underflow
        // and overflow pinned to the range ends.
        let (min, max, n) = (1.0, 1024.0, 10);
        let h_ref = Histogram::new(min, max, n);
        let log_width = (max.ln() - min.ln()) / n as f64;
        for b in 0..n {
            // The exact lower edge of interior bucket `b`.
            let edge = (min.ln() + b as f64 * log_width).exp();
            let mut h = Histogram::new(min, max, n);
            h.record(edge);
            let q = h.quantile(0.5).unwrap();
            // Geometric midpoint of the bucket containing `edge`: within
            // half a bucket width in log space.
            let err = (q.ln() - edge.ln()).abs();
            assert!(
                err <= 0.5 * log_width + 1e-12,
                "edge {edge}: quantile {q} strayed {err} (> half width {log_width})"
            );
        }
        // Exact range endpoints: min lands in the first interior bucket,
        // max saturates into the overflow bucket and reports `max`.
        let mut h = h_ref.clone();
        h.record(min);
        assert!((h.quantile(0.5).unwrap().ln() - (min.ln() + 0.5 * log_width)).abs() < 1e-9);
        let mut h = h_ref;
        h.record(max);
        assert_eq!(h.quantile(0.5), Some(max));
    }

    #[test]
    fn merge_of_two_empty_histograms_stays_empty() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let b = Histogram::new(1.0, 100.0, 10);
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), None);
        assert_eq!(a.quantile(1.0), None);
    }

    #[test]
    fn merge_accumulates_overflow_and_underflow_buckets() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let mut b = Histogram::new(1.0, 100.0, 10);
        a.record(1e6); // overflow
        b.record(1e7); // overflow
        b.record(0.1); // underflow
        a.merge(&b);
        assert_eq!(a.count(), 3);
        // Both overflow samples saturate at `max`, the underflow at `min`.
        assert_eq!(a.quantile(1.0), Some(100.0));
        assert_eq!(a.quantile(0.0), Some(1.0));
        assert_eq!(a.count_below(0.5), 1, "only the underflow sample");
        assert_eq!(a.count_below(1e9), 3, "everything, overflow included");
    }

    #[test]
    fn single_sample_answers_every_quantile_identically() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        h.record(7.0);
        let v = h.quantile(0.5).unwrap();
        for q in [0.0, 0.25, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(v), "quantile {q} disagrees");
        }
        // The merge of a single-sample histogram into an empty one
        // preserves that behaviour.
        let mut empty = Histogram::new(1.0, 100.0, 10);
        empty.merge(&h);
        assert_eq!(empty.quantile(0.999), Some(v));
    }

    #[test]
    fn count_below_is_a_cumulative_bucket_sum() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        for v in [0.5, 2.0, 5.0, 50.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.count_below(0.1), 1, "underflow bucket always counts");
        assert_eq!(h.count_below(10.0), 3);
        assert_eq!(h.count_below(99.0), 4);
        assert_eq!(h.count_below(1e9), 5);
    }

    #[test]
    fn compatible_detects_layout_mismatch() {
        let a = Histogram::new(1.0, 100.0, 10);
        assert!(a.compatible(&Histogram::new(1.0, 100.0, 10)));
        assert!(!a.compatible(&Histogram::new(1.0, 100.0, 11)));
        assert!(!a.compatible(&Histogram::new(2.0, 100.0, 10)));
    }
}
