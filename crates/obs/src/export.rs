//! JSONL export and the end-of-run stage table.
//!
//! Each trace line is one JSON object with a `record` field naming its
//! kind: `meta`, `span`, `counter`, `hist`, `decision` or `event`. The
//! schema is flat on purpose — `json.loads` per line is all a consumer
//! needs (see the smoke check in `scripts/check.sh`).

use crate::{Recorder, SpanStat};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Trace schema version stamped into the `meta` line.
pub const TRACE_SCHEMA: u32 = 1;

#[derive(Serialize, Deserialize)]
struct MetaLine {
    record: String,
    schema: u32,
    ops: u64,
    decisions: usize,
    decisions_dropped: u64,
    events: usize,
    events_dropped: u64,
}

#[derive(Serialize, Deserialize)]
struct SpanLine {
    record: String,
    name: String,
    count: u64,
    total_s: f64,
}

#[derive(Serialize, Deserialize)]
struct CounterLine {
    record: String,
    name: String,
    value: u64,
}

#[derive(Serialize, Deserialize)]
struct HistLine {
    record: String,
    name: String,
    count: u64,
    p50: Option<f64>,
    p90: Option<f64>,
    p99: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct DecisionLine {
    record: String,
    site: u32,
    page: u32,
    object: u32,
    stream: String,
    local_s: f64,
    remote_s: f64,
}

#[derive(Serialize, Deserialize)]
struct EventLine {
    record: String,
    kind: String,
    site: Option<u32>,
    stage: String,
    detail: String,
}

/// Serialises a recorder as JSON Lines: one `meta` line, then every span,
/// counter, histogram, decision and event.
pub fn to_jsonl(rec: &Recorder) -> String {
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };
    push(
        &mut out,
        serde_json::to_string(&MetaLine {
            record: "meta".into(),
            schema: TRACE_SCHEMA,
            ops: rec.ops(),
            decisions: rec.decisions_len(),
            decisions_dropped: rec.decisions_dropped(),
            events: rec.events().len(),
            events_dropped: rec.events_dropped(),
        })
        .expect("serialise meta line"),
    );
    for (name, stat) in rec.spans() {
        push(
            &mut out,
            serde_json::to_string(&SpanLine {
                record: "span".into(),
                name: name.clone(),
                count: stat.count,
                total_s: stat.total_s(),
            })
            .expect("serialise span line"),
        );
    }
    for (name, &value) in rec.counters() {
        push(
            &mut out,
            serde_json::to_string(&CounterLine {
                record: "counter".into(),
                name: name.clone(),
                value,
            })
            .expect("serialise counter line"),
        );
    }
    for (name, h) in rec.hists() {
        push(
            &mut out,
            serde_json::to_string(&HistLine {
                record: "hist".into(),
                name: name.clone(),
                count: h.count(),
                p50: h.quantile(0.5),
                p90: h.quantile(0.9),
                p99: h.quantile(0.99),
            })
            .expect("serialise hist line"),
        );
    }
    for d in rec.decisions() {
        push(
            &mut out,
            serde_json::to_string(&DecisionLine {
                record: "decision".into(),
                site: d.site,
                page: d.page,
                object: d.object,
                stream: if d.local { "local" } else { "remote" }.into(),
                local_s: d.local_s,
                remote_s: d.remote_s,
            })
            .expect("serialise decision line"),
        );
    }
    for e in rec.events() {
        push(
            &mut out,
            serde_json::to_string(&EventLine {
                record: "event".into(),
                kind: e.kind.clone(),
                site: e.site,
                stage: e.stage.clone(),
                detail: e.detail.clone(),
            })
            .expect("serialise event line"),
        );
    }
    out
}

/// Writes [`to_jsonl`] output to a file, crash-safely: an interrupted
/// run never leaves a truncated trace behind (see [`write_atomic`]).
pub fn write_jsonl(rec: &Recorder, path: &Path) -> std::io::Result<()> {
    write_atomic(path, to_jsonl(rec).as_bytes())
}

/// Writes `bytes` to `path` via a sibling `<path>.tmp` file renamed
/// over the target only once fully written, so readers (and restarts)
/// only ever see a complete file. On failure the previous content of
/// `path`, if any, is left untouched and the temp file is removed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_with(path, |w| w.write_all(bytes))
}

fn write_atomic_with(
    path: &Path,
    f: impl FnOnce(&mut std::fs::File) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let written = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        f(&mut file)?;
        file.flush()
    })();
    match written {
        Ok(()) => std::fs::rename(&tmp, path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:9.3} s ")
    } else if s >= 1e-3 {
        format!("{:9.3} ms", s * 1e3)
    } else {
        format!("{:9.3} µs", s * 1e6)
    }
}

/// The canonical pipeline order for the stage table: planner stages in
/// the order the planner runs them — with the negotiation sub-spans
/// under `plan.negotiate`, where they execute — then the serving plane.
/// Spans not listed here (auxiliary or future stages) sort after the
/// known ones, alphabetically, and `plan.total` always closes the table.
const STAGE_ORDER: &[&str] = &[
    "plan.select",
    "plan.partition",
    "plan.storage_restore",
    "plan.capacity_restore",
    "plan.restore.shard",
    "plan.offload",
    "plan.negotiate",
    "negotiate.round",
    "negotiate.settle",
    "plan.assemble",
    "serve.route",
];

/// Renders a human-readable stage-breakdown table of every recorded span.
/// When a `plan.total` span exists, each other span gets a share column
/// relative to it.
pub fn stage_table(rec: &Recorder) -> String {
    let total = rec.span("plan.total").map(|s| s.total_s());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>7} {:>12} {:>7}",
        "span", "calls", "time", "share"
    );
    let mut rows: Vec<(&String, &SpanStat)> = rec.spans().iter().collect();
    // Pipeline order, unknown spans after the known ones by name, total
    // last — so the table reads as the pass sequence, not as whichever
    // insertion order the run happened to produce.
    fn order_of(name: &str) -> usize {
        STAGE_ORDER
            .iter()
            .position(|s| *s == name)
            .unwrap_or(STAGE_ORDER.len())
    }
    rows.sort_by(|a, b| {
        let ka = (a.0.as_str() == "plan.total", order_of(a.0), a.0);
        let kb = (b.0.as_str() == "plan.total", order_of(b.0), b.0);
        ka.cmp(&kb)
    });
    for (name, stat) in rows {
        let share = match total {
            Some(t) if t > 0.0 && name != "plan.total" => {
                format!("{:6.1}%", 100.0 * stat.total_s() / t)
            }
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{:<26} {:>7} {:>12} {:>7}",
            name,
            stat.count,
            fmt_time(stat.total_s()),
            share
        );
    }
    // The planner's shard-imbalance diagnostic: slowest over fastest
    // restoration shard, recorded ×100 (so 100 = perfectly balanced).
    if let Some(&x100) = rec.counters().get("plan.restore.shard.imbalance_x100") {
        let _ = writeln!(
            out,
            "shard imbalance (max/min wall time) {:.2}x",
            x100 as f64 / 100.0
        );
    }
    // Serving-plane tail latency, when the router recorded its
    // per-request response-time histogram.
    if let Some(h) = rec.hists().get("serve.route.latency_s") {
        if let (Some(p50), Some(p99), Some(p999)) =
            (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999))
        {
            let _ = writeln!(
                out,
                "serve.route latency p50 {} p99 {} p999 {} ({} requests)",
                fmt_time(p50).trim(),
                fmt_time(p99).trim(),
                fmt_time(p999).trim(),
                h.count()
            );
        }
    }
    if rec.decisions_len() > 0 || rec.decisions_dropped() > 0 {
        let _ = writeln!(
            out,
            "decisions kept {} (dropped {})",
            rec.decisions_len(),
            rec.decisions_dropped()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Event, Recorder};

    fn sample() -> Recorder {
        let mut r = Recorder::with_cap(16);
        r.add("storage.heap_pops", 12);
        r.record_span_ns("plan.total", 2_000_000);
        r.record_span_ns("plan.partition", 500_000);
        r.record_value("offload.absorbed", 3.5);
        r.push_decision(Decision {
            site: 1,
            page: 2,
            object: 3,
            local: true,
            local_s: 0.5,
            remote_s: 0.7,
        });
        r.push_event(Event {
            kind: "audit_divergence".into(),
            site: Some(1),
            stage: "storage restoration".into(),
            detail: "load mismatch".into(),
        });
        r
    }

    #[test]
    fn jsonl_has_one_parseable_line_per_item() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        // meta + 2 spans + 1 counter + 1 hist + 1 decision + 1 event.
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"record\":\"meta\""));
        // Every line round-trips through the discriminating field.
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
            assert!(line.contains("\"record\":\""), "no record field in {line}");
        }
        // Typed round-trips.
        let span: SpanLine = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(span.name, "plan.partition");
        assert!((span.total_s - 5e-4).abs() < 1e-12);
        let dec: DecisionLine = serde_json::from_str(lines[5]).unwrap();
        assert_eq!((dec.site, dec.page, dec.object), (1, 2, 3));
        assert_eq!(dec.stream, "local");
        let ev: EventLine = serde_json::from_str(lines[6]).unwrap();
        assert_eq!(ev.kind, "audit_divergence");
        assert_eq!(ev.site, Some(1));
    }

    #[test]
    fn stage_table_renders_shard_imbalance_as_a_ratio() {
        let mut r = sample();
        r.add("plan.restore.shard.imbalance_x100", 237);
        let table = stage_table(&r);
        assert!(
            table.contains("shard imbalance (max/min wall time) 2.37x"),
            "{table}"
        );
        // Absent counter → no imbalance line.
        let plain = stage_table(&sample());
        assert!(!plain.contains("shard imbalance"), "{plain}");
    }

    #[test]
    fn stage_table_follows_the_pipeline_order() {
        let mut r = Recorder::with_cap(4);
        // Scrambled insertion order, including a span the canonical
        // list doesn't know about.
        r.record_span_ns("serve.route", 9_000_000);
        r.record_span_ns("plan.total", 2_000_000);
        r.record_span_ns("zz.custom", 8_000_000);
        r.record_span_ns("plan.storage_restore", 1_000);
        r.record_span_ns("plan.select", 500);
        r.record_span_ns("plan.partition", 700_000);
        let table = stage_table(&r);
        let pos = |name: &str| table.find(name).unwrap_or_else(|| panic!("{name} missing"));
        // Known stages in pass order regardless of recorded time…
        assert!(pos("plan.select") < pos("plan.partition"), "{table}");
        assert!(
            pos("plan.partition") < pos("plan.storage_restore"),
            "{table}"
        );
        assert!(pos("plan.storage_restore") < pos("serve.route"), "{table}");
        // …unknown spans after the known ones, total always last.
        assert!(pos("serve.route") < pos("zz.custom"), "{table}");
        assert!(pos("zz.custom") < pos("plan.total"), "{table}");
    }

    #[test]
    fn stage_table_orders_negotiation_and_serving_spans_fed_in_reverse() {
        // Feed every canonical stage in exactly reversed order: the
        // table must still come out in pipeline order, with the
        // negotiation sub-spans sitting under plan.negotiate.
        let mut r = Recorder::with_cap(4);
        for (i, name) in STAGE_ORDER.iter().rev().enumerate() {
            r.record_span_ns(name, 1_000 * (i as u64 + 1));
        }
        let table = stage_table(&r);
        let pos = |name: &str| table.find(name).unwrap_or_else(|| panic!("{name} missing"));
        for pair in STAGE_ORDER.windows(2) {
            assert!(
                pos(pair[0]) < pos(pair[1]),
                "{} before {}:\n{table}",
                pair[0],
                pair[1]
            );
        }
        assert!(pos("plan.negotiate") < pos("negotiate.round"), "{table}");
        assert!(pos("negotiate.round") < pos("negotiate.settle"), "{table}");
        assert!(pos("negotiate.settle") < pos("serve.route"), "{table}");
    }

    #[test]
    fn stage_table_prints_route_tail_latency_when_recorded() {
        let mut r = sample();
        let mut h = crate::Histogram::for_response_times();
        for _ in 0..99 {
            h.record(0.010);
        }
        h.record(2.0);
        r.merge_histogram("serve.route.latency_s", &h);
        let table = stage_table(&r);
        assert!(table.contains("serve.route latency p50"), "{table}");
        assert!(table.contains("p99"), "{table}");
        assert!(table.contains("(100 requests)"), "{table}");
        // Without the histogram there is no footer.
        assert!(
            !stage_table(&sample()).contains("serve.route latency"),
            "footer must be conditional"
        );
    }

    #[test]
    fn write_jsonl_is_atomic_under_partial_writes() {
        let dir = std::env::temp_dir().join("mmrepl-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, "original contents\n").unwrap();

        // A writer that dies mid-stream must leave the previous file
        // intact and clean up its temp file.
        let err = write_atomic_with(&path, |w| {
            w.write_all(b"partial garbage")?;
            Err(std::io::Error::other("disk full"))
        });
        assert!(err.is_err());
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "original contents\n",
            "interrupted write clobbered the target"
        );
        let tmp = dir.join("trace.jsonl.tmp");
        assert!(!tmp.exists(), "temp file leaked");

        // A successful write replaces the file wholesale…
        write_jsonl(&sample(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.contains("\"record\":\"meta\""));
        // …and leaves no temp file either.
        assert!(!tmp.exists(), "temp file leaked after success");
    }

    #[test]
    fn stage_table_shows_share_of_total() {
        let table = stage_table(&sample());
        assert!(table.contains("plan.partition"), "{table}");
        assert!(table.contains("25.0%"), "{table}");
        assert!(table.contains("plan.total"), "{table}");
        assert!(table.contains("decisions kept 1"), "{table}");
        // Total row is last among spans.
        let part = table.find("plan.partition").unwrap();
        let total = table.find("plan.total").unwrap();
        assert!(part < total);
    }
}
