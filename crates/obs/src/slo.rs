//! SLO tracking: per-site latency/availability objectives with
//! multi-window error-budget burn rates.
//!
//! An SLO here is "fraction of requests answered within the latency
//! target must stay above the objective". Targets come straight from
//! the QoS bounds the placement optimizes against (Eq. 5 response-time
//! ceilings), via [`SloSpec::from_qos`].
//!
//! Burn rate is the standard error-budget form: with `objective` = o,
//! the budget is `1 - o`; a window whose bad fraction is `b` burns the
//! budget at rate `b / (1 - o)`. Burn 1.0 spends the budget exactly on
//! schedule; burn 6.0 exhausts a 30-day budget in 5 days. Alerting uses
//! two windows — a short one for responsiveness and a long one to
//! suppress blips — and fires only when **both** exceed the threshold,
//! which is the classic multi-window multi-burn-rate construction.
//!
//! Windows are ticks of the exposition clock ([`slo_tick`]), not wall
//! seconds, so replayed (simulated-time) studies burn budget in the
//! same units they publish metrics.

use crate::Histogram;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// Latency target assumed when a site's QoS bound is unbounded.
pub const DEFAULT_LATENCY_TARGET_S: f64 = 10.0;

/// Retained threshold-crossing events before older ones are dropped.
const EVENT_CAP: usize = 256;

/// One latency/availability objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Objective name, e.g. `serve.latency`.
    pub name: String,
    /// A request answered within this many seconds is "good".
    pub latency_target_s: f64,
    /// Required good fraction, e.g. `0.999`.
    pub objective: f64,
    /// Ticks in the short alerting window.
    pub short_windows: usize,
    /// Ticks in the long alerting window.
    pub long_windows: usize,
    /// Burn rate both windows must exceed to alert.
    pub burn_alert: f64,
}

impl SloSpec {
    /// Derives a spec from a QoS response-time bound: the bound becomes
    /// the latency target (falling back to
    /// [`DEFAULT_LATENCY_TARGET_S`] when unbounded), with a 99.9%
    /// objective and a 6x two-window burn alert.
    pub fn from_qos(name: &str, qos_bound_s: f64) -> SloSpec {
        let latency_target_s = if qos_bound_s.is_finite() && qos_bound_s > 0.0 {
            qos_bound_s
        } else {
            DEFAULT_LATENCY_TARGET_S
        };
        SloSpec {
            name: name.to_owned(),
            latency_target_s,
            objective: 0.999,
            short_windows: 6,
            long_windows: 36,
            burn_alert: 6.0,
        }
    }
}

/// What a threshold crossing did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloEventKind {
    /// Both burn windows crossed above the alert threshold.
    BurnAlert,
    /// A previously alerting SLO dropped back under the threshold.
    Recovered,
}

/// A typed threshold-crossing event emitted by [`slo_tick`].
#[derive(Clone, Debug, PartialEq)]
pub struct SloEvent {
    /// Name of the SLO that crossed.
    pub slo: String,
    /// Crossing direction.
    pub kind: SloEventKind,
    /// Short-window burn at the crossing.
    pub short_burn: f64,
    /// Long-window burn at the crossing.
    pub long_burn: f64,
}

/// Point-in-time view of one tracked SLO.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Latency target, seconds.
    pub latency_target_s: f64,
    /// Required good fraction.
    pub objective: f64,
    /// Error-budget burn over the short window.
    pub short_burn: f64,
    /// Error-budget burn over the long window.
    pub long_burn: f64,
    /// Whether the SLO is currently in the alerting state.
    pub alerting: bool,
    /// Times the SLO entered the alerting state.
    pub alerts: u64,
    /// Cumulative good requests.
    pub good: u64,
    /// Cumulative total requests.
    pub total: u64,
}

struct Tracker {
    spec: SloSpec,
    /// Good/total accumulated since the last tick (the open tick).
    open: (u64, u64),
    /// Closed ticks, newest last, capped at `spec.long_windows`.
    ticks: VecDeque<(u64, u64)>,
    cum_good: u64,
    cum_total: u64,
    alerting: bool,
    alerts: u64,
}

impl Tracker {
    fn new(spec: SloSpec) -> Tracker {
        Tracker {
            spec,
            open: (0, 0),
            ticks: VecDeque::new(),
            cum_good: 0,
            cum_total: 0,
            alerting: false,
            alerts: 0,
        }
    }

    /// Burn over the newest `windows` closed ticks. An empty window
    /// burns nothing: no traffic spends no budget.
    fn burn(&self, windows: usize) -> f64 {
        let take = windows.min(self.ticks.len());
        let (mut good, mut total) = (0u64, 0u64);
        for &(g, t) in self.ticks.iter().rev().take(take) {
            good += g;
            total += t;
        }
        if total == 0 {
            return 0.0;
        }
        let bad_frac = (total - good) as f64 / total as f64;
        let budget = (1.0 - self.spec.objective).max(f64::EPSILON);
        bad_frac / budget
    }
}

#[derive(Default)]
struct SloState {
    trackers: BTreeMap<String, Tracker>,
    events: Vec<SloEvent>,
}

fn state() -> &'static Mutex<SloState> {
    static STATE: OnceLock<Mutex<SloState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(SloState::default()))
}

/// Registers (or replaces, zeroing) an objective to track.
pub fn register_slo(spec: SloSpec) {
    let mut st = state().lock().unwrap();
    let name = spec.name.clone();
    st.trackers.insert(name, Tracker::new(spec));
}

/// Accumulates `good`-of-`total` outcomes into an SLO's open tick.
/// No-ops when recording is disabled or the SLO is unregistered.
#[inline]
pub fn slo_record(name: &str, good: u64, total: u64) {
    if !crate::enabled() || total == 0 {
        return;
    }
    let mut st = state().lock().unwrap();
    if let Some(t) = st.trackers.get_mut(name) {
        t.open.0 += good.min(total);
        t.open.1 += total;
        t.cum_good += good.min(total);
        t.cum_total += total;
    }
}

/// Accumulates a latency batch: samples at or below the SLO's target
/// bucket count as good (bucket-granular, like
/// [`Histogram::count_below`]).
#[inline]
pub fn slo_record_latencies(name: &str, h: &Histogram) {
    if !crate::enabled() || h.count() == 0 {
        return;
    }
    let target = {
        let st = state().lock().unwrap();
        match st.trackers.get(name) {
            Some(t) => t.spec.latency_target_s,
            None => return,
        }
    };
    slo_record(name, h.count_below(target), h.count());
}

/// Closes the open tick on every tracker, recomputes both window burns,
/// and emits [`SloEvent`]s on threshold crossings. Driven by the same
/// exposition clock as [`crate::advance_windows`].
pub fn slo_tick() {
    let mut st = state().lock().unwrap();
    let mut events = Vec::new();
    for t in st.trackers.values_mut() {
        let closed = std::mem::take(&mut t.open);
        t.ticks.push_back(closed);
        while t.ticks.len() > t.spec.long_windows.max(1) {
            t.ticks.pop_front();
        }
        let (short, long) = (t.burn(t.spec.short_windows), t.burn(t.spec.long_windows));
        let firing = short > t.spec.burn_alert && long > t.spec.burn_alert;
        if firing != t.alerting {
            t.alerting = firing;
            if firing {
                t.alerts += 1;
            }
            events.push(SloEvent {
                slo: t.spec.name.clone(),
                kind: if firing {
                    SloEventKind::BurnAlert
                } else {
                    SloEventKind::Recovered
                },
                short_burn: short,
                long_burn: long,
            });
        }
    }
    st.events.extend(events);
    let excess = st.events.len().saturating_sub(EVENT_CAP);
    if excess > 0 {
        st.events.drain(..excess);
    }
}

/// Drains the pending threshold-crossing events.
pub fn take_slo_events() -> Vec<SloEvent> {
    std::mem::take(&mut state().lock().unwrap().events)
}

/// Point-in-time statuses for every tracked SLO, name-sorted. The open
/// tick is *not* included in the burns — they describe closed windows.
pub fn slo_statuses() -> Vec<SloStatus> {
    let st = state().lock().unwrap();
    st.trackers
        .values()
        .map(|t| SloStatus {
            name: t.spec.name.clone(),
            latency_target_s: t.spec.latency_target_s,
            objective: t.spec.objective,
            short_burn: t.burn(t.spec.short_windows),
            long_burn: t.burn(t.spec.long_windows),
            alerting: t.alerting,
            alerts: t.alerts,
            good: t.cum_good,
            total: t.cum_total,
        })
        .collect()
}

/// Drops every tracker and pending event. Called by [`crate::reset`].
pub fn reset_slo() {
    let mut st = state().lock().unwrap();
    st.trackers.clear();
    st.events.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(short: usize, long: usize) -> SloSpec {
        SloSpec {
            name: "t.latency".into(),
            latency_target_s: 1.0,
            objective: 0.9,
            short_windows: short,
            long_windows: long,
            burn_alert: 2.0,
        }
    }

    #[test]
    fn from_qos_uses_the_bound_and_falls_back_when_unbounded() {
        let s = SloSpec::from_qos("site.3", 2.5);
        assert_eq!(s.latency_target_s, 2.5);
        let s = SloSpec::from_qos("site.4", f64::INFINITY);
        assert_eq!(s.latency_target_s, DEFAULT_LATENCY_TARGET_S);
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        register_slo(spec(2, 4));
        // 85% good against a 90% objective: bad 0.15, budget 0.1 ->
        // burn 1.5, safely under the 2x alert threshold.
        slo_record("t.latency", 85, 100);
        slo_tick();
        let st = &slo_statuses()[0];
        assert!(
            (st.short_burn - 1.5).abs() < 1e-9,
            "short {}",
            st.short_burn
        );
        assert!((st.long_burn - 1.5).abs() < 1e-9);
        assert!(!st.alerting);
        assert_eq!((st.good, st.total), (85, 100));
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn alert_needs_both_windows_and_recovery_emits_an_event() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        register_slo(spec(1, 3));
        // One catastrophic tick: short window (1 tick) burns hot, but
        // the long window still averages it with nothing else... with an
        // empty history the long window IS that tick, so both fire.
        slo_record("t.latency", 0, 100);
        slo_tick();
        let events = take_slo_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SloEventKind::BurnAlert);
        assert!(slo_statuses()[0].alerting);
        assert_eq!(slo_statuses()[0].alerts, 1);
        // Two clean ticks dilute the long window below 2x and clear the
        // short window entirely: recovery.
        slo_record("t.latency", 100, 100);
        slo_tick();
        slo_record("t.latency", 100, 100);
        slo_tick();
        let events = take_slo_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SloEventKind::Recovered);
        assert!(!slo_statuses()[0].alerting);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn empty_windows_burn_nothing_and_latency_batches_use_the_target() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(true);
        register_slo(spec(2, 4));
        slo_tick();
        slo_tick();
        let st = &slo_statuses()[0];
        assert_eq!((st.short_burn, st.long_burn), (0.0, 0.0));

        let mut h = Histogram::for_response_times();
        h.record(0.5); // within the 1s target
        h.record(50.0); // far outside
        slo_record_latencies("t.latency", &h);
        slo_record_latencies("t.unregistered", &h); // silently dropped
        slo_tick();
        let st = &slo_statuses()[0];
        assert_eq!(st.total, 2);
        assert_eq!(st.good, 1);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(false);
        register_slo(spec(2, 4));
        slo_record("t.latency", 0, 100);
        slo_tick();
        let st = &slo_statuses()[0];
        assert_eq!(st.total, 0);
        assert_eq!(st.short_burn, 0.0);
        crate::reset();
    }
}
