//! Recorders, spans and the process-wide trace pipeline.
//!
//! The design has three layers:
//!
//! 1. a process-wide **enabled flag** ([`enabled`]) — one relaxed atomic
//!    load. Every recording entry point checks it first, so the disabled
//!    path (the production default) does no other work at all;
//! 2. a **thread-local [`Recorder`]** that each recording call mutates
//!    without synchronisation. Hot loops never touch a lock;
//! 3. a **global sink** recorder that thread-locals merge into via
//!    [`flush_thread`]. `mmrepl-core`'s worker pool calls it after every
//!    dispatch, so spans and counters recorded on pool workers aggregate
//!    with the caller's; [`snapshot`]/[`take`] flush the calling thread
//!    and read the sink.
//!
//! [`Recorder::merge`] is commutative up to provenance *content* (the
//! ring buffer keeps whichever `cap` decisions arrive last): counters,
//! span totals and histograms come out identical whatever the merge
//! order, which is what makes per-thread recording deterministic to
//! aggregate. The property tests in `tests/prop_recorder.rs` pin this
//! down.

use crate::Histogram;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the decision-provenance ring buffer.
pub const DEFAULT_PROVENANCE_CAP: usize = 4096;

/// Capacity of the typed-event buffer (audit divergences and the like are
/// rare; a run that produces more than this keeps the first ones and
/// counts the rest).
pub const EVENT_CAP: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROVENANCE_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_PROVENANCE_CAP);

/// True when tracing is enabled. This is the *entire* disabled-path cost
/// of every recording entry point: one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the decision-provenance ring capacity for recorders created after
/// this call (at least 1).
pub fn set_provenance_cap(cap: usize) {
    PROVENANCE_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// Current decision-provenance ring capacity.
pub fn provenance_cap() -> usize {
    PROVENANCE_CAP.load(Ordering::Relaxed)
}

/// Aggregate timing for one named span: how many times it closed and the
/// total nanoseconds spent inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Total wall time inside the span, in nanoseconds.
    pub total_ns: u64,
}

impl SpanStat {
    /// Total seconds inside the span.
    pub fn total_s(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }
}

/// One decision-provenance record from `PARTITION`: which stream got the
/// object and what both stream finish times were at that moment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Site whose page was being partitioned.
    pub site: u32,
    /// Page the object belongs to.
    pub page: u32,
    /// Object being placed.
    pub object: u32,
    /// True when the object went to the local stream (site stores it).
    pub local: bool,
    /// Local stream finish time had the object gone local, seconds.
    pub local_s: f64,
    /// Remote stream finish time had the object stayed remote, seconds.
    pub remote_s: f64,
}

/// A typed event: something notable and rare (an audit divergence, a
/// dropped offload) pinned to an optional site and a pipeline stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event class, e.g. `audit_divergence`.
    pub kind: String,
    /// Site the event concerns, if any.
    pub site: Option<u32>,
    /// Pipeline stage the event occurred in.
    pub stage: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// A mergeable bundle of counters, span timings, histograms, decision
/// provenance and events. One lives per thread; merged copies form
/// snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recorder {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
    hists: BTreeMap<String, Histogram>,
    // Ring buffer: once `decisions` reaches `cap`, `head` is the slot the
    // next decision overwrites (also the oldest entry).
    decisions: Vec<Decision>,
    head: usize,
    cap: usize,
    decisions_dropped: u64,
    events: Vec<Event>,
    events_dropped: u64,
    ops: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder using the global provenance capacity.
    pub fn new() -> Self {
        Self::with_cap(provenance_cap())
    }

    /// An empty recorder whose decision ring holds at most `cap` entries.
    pub fn with_cap(cap: usize) -> Self {
        Recorder {
            counters: BTreeMap::new(),
            spans: BTreeMap::new(),
            hists: BTreeMap::new(),
            decisions: Vec::new(),
            head: 0,
            cap: cap.max(1),
            decisions_dropped: 0,
            events: Vec::new(),
            events_dropped: 0,
            ops: 0,
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// Number of recording operations that landed in this recorder
    /// (including merged-in ones). Each would have cost one enabled-check
    /// on the disabled path, which is what the perfsuite overhead model
    /// multiplies out.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        self.ops += 1;
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Folds one completed span into the named span's aggregate.
    pub fn record_span_ns(&mut self, name: &str, ns: u64) {
        // A span costs two enabled-checks on the disabled path (enter and
        // exit), so it counts as two ops.
        self.ops += 2;
        let s = self.spans.entry(name.to_owned()).or_default();
        s.count += 1;
        s.total_ns += ns;
    }

    /// Records `v` into the named histogram, creating it with the
    /// [`Histogram::for_traced_values`] range on first use.
    pub fn record_value(&mut self, name: &str, v: f64) {
        self.ops += 1;
        if let Some(h) = self.hists.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::for_traced_values();
            h.record(v);
            self.hists.insert(name.to_owned(), h);
        }
    }

    /// Merges an externally-built histogram (any layout) into the named
    /// slot. A name must always carry one layout; see [`Histogram::merge`].
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.ops += 1;
        if let Some(mine) = self.hists.get_mut(name) {
            mine.merge(h);
        } else {
            self.hists.insert(name.to_owned(), h.clone());
        }
    }

    /// Pushes a provenance record, overwriting the oldest once the ring
    /// is full.
    pub fn push_decision(&mut self, d: Decision) {
        self.ops += 1;
        if self.decisions.len() < self.cap {
            self.decisions.push(d);
        } else {
            self.decisions[self.head] = d;
            self.head = (self.head + 1) % self.cap;
            self.decisions_dropped += 1;
        }
    }

    /// Pushes a typed event, counting instead of storing past [`EVENT_CAP`].
    pub fn push_event(&mut self, e: Event) {
        self.ops += 1;
        if self.events.len() < EVENT_CAP {
            self.events.push(e);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Named counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Value of one counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Span aggregates, sorted by name.
    pub fn spans(&self) -> &BTreeMap<String, SpanStat> {
        &self.spans
    }

    /// One span's aggregate, if it ever closed.
    pub fn span(&self, name: &str) -> Option<SpanStat> {
        self.spans.get(name).copied()
    }

    /// Histograms, sorted by name.
    pub fn hists(&self) -> &BTreeMap<String, Histogram> {
        &self.hists
    }

    /// Decision provenance in arrival order (oldest surviving first).
    pub fn decisions(&self) -> impl Iterator<Item = &Decision> {
        let (newer, older) = self.decisions.split_at(self.head.min(self.decisions.len()));
        older.iter().chain(newer.iter())
    }

    /// Number of surviving provenance records.
    pub fn decisions_len(&self) -> usize {
        self.decisions.len()
    }

    /// Decisions overwritten by ring wrap-around.
    pub fn decisions_dropped(&self) -> u64 {
        self.decisions_dropped
    }

    /// Typed events in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events discarded past [`EVENT_CAP`].
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Merges another recorder into this one. Counters, span aggregates
    /// and histograms are order-independent; the decision ring keeps the
    /// last `cap` records in merge order.
    pub fn merge(&mut self, other: &Recorder) {
        for (k, &v) in &other.counters {
            if let Some(c) = self.counters.get_mut(k) {
                *c += v;
            } else {
                self.counters.insert(k.clone(), v);
            }
        }
        for (k, &v) in &other.spans {
            let s = self.spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.total_ns += v.total_ns;
        }
        for (k, h) in &other.hists {
            if let Some(mine) = self.hists.get_mut(k) {
                mine.merge(h);
            } else {
                self.hists.insert(k.clone(), h.clone());
            }
        }
        for d in other.decisions() {
            if self.decisions.len() < self.cap {
                self.decisions.push(*d);
            } else {
                self.decisions[self.head] = *d;
                self.head = (self.head + 1) % self.cap;
                self.decisions_dropped += 1;
            }
        }
        self.decisions_dropped += other.decisions_dropped;
        for e in &other.events {
            if self.events.len() < EVENT_CAP {
                self.events.push(e.clone());
            } else {
                self.events_dropped += 1;
            }
        }
        self.events_dropped += other.events_dropped;
        self.ops += other.ops;
    }
}

thread_local! {
    static TLS: RefCell<Recorder> = RefCell::new(Recorder::new());
}

fn sink() -> &'static Mutex<Recorder> {
    static SINK: OnceLock<Mutex<Recorder>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Recorder::new()))
}

/// A live span: created by [`span`], records its wall time into the
/// thread-local recorder when dropped. When tracing was disabled at
/// creation it is inert.
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            TLS.with(|r| r.borrow_mut().record_span_ns(self.name, ns));
        }
    }
}

/// Opens a named span; wall time from now until the guard drops is added
/// to the span's aggregate. Inert (no clock read) when tracing is
/// disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Adds `delta` to a named counter on the current thread's recorder.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if enabled() {
        TLS.with(|r| r.borrow_mut().add(name, delta));
    }
}

/// Records a value into a named histogram on the current thread's
/// recorder.
#[inline]
pub fn record_value(name: &'static str, v: f64) {
    if enabled() {
        TLS.with(|r| r.borrow_mut().record_value(name, v));
    }
}

/// Merges an externally-accumulated histogram into the named slot.
#[inline]
pub fn merge_histogram(name: &'static str, h: &Histogram) {
    if enabled() {
        TLS.with(|r| r.borrow_mut().merge_histogram(name, h));
    }
}

/// Records one partition decision into the provenance ring.
#[inline]
pub fn decision(d: Decision) {
    if enabled() {
        TLS.with(|r| r.borrow_mut().push_decision(d));
    }
}

/// Records a typed event.
#[inline]
pub fn event(kind: &str, site: Option<u32>, stage: &str, detail: String) {
    if enabled() {
        TLS.with(|r| {
            r.borrow_mut().push_event(Event {
                kind: kind.to_owned(),
                site,
                stage: stage.to_owned(),
                detail,
            })
        });
    }
}

/// Merges the current thread's recorder into the global sink and clears
/// it. Cheap no-op when the thread recorded nothing. `mmrepl-core`'s
/// worker pool calls this after every dispatch; call it yourself on any
/// thread you spawned by hand before reading a snapshot.
pub fn flush_thread() {
    TLS.with(|r| {
        let mut tls = r.borrow_mut();
        if tls.is_empty() {
            return;
        }
        let taken = std::mem::take(&mut *tls);
        sink().lock().unwrap().merge(&taken);
    });
}

/// Flushes the calling thread and returns a copy of the global sink.
pub fn snapshot() -> Recorder {
    flush_thread();
    sink().lock().unwrap().clone()
}

/// Flushes the calling thread and drains the global sink, leaving it
/// empty.
pub fn take() -> Recorder {
    flush_thread();
    std::mem::take(&mut *sink().lock().unwrap())
}

/// Clears the calling thread's recorder, the global sink, and the live
/// telemetry plane (time-series registry and SLO trackers), so
/// back-to-back studies in one process cannot leak metrics between
/// runs. Recorders on other threads are expected to already be flushed
/// (the pool flushes after every dispatch).
pub fn reset() {
    TLS.with(|r| *r.borrow_mut() = Recorder::new());
    *sink().lock().unwrap() = Recorder::new();
    crate::timeseries::reset_timeseries();
    crate::slo::reset_slo();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enabled flag and sink are process-wide; tests that use
    // them serialise on the crate-wide lock so they cannot observe each
    // other's state — including the timeseries/slo/expose test modules.
    // (Tests touching only owned `Recorder`s need no lock.)
    use crate::TEST_LOCK as GLOBAL_LOCK;

    #[test]
    fn disabled_records_nothing() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        reset();
        set_enabled(false);
        add("x", 5);
        record_value("y", 1.0);
        let _s = span("z");
        decision(Decision {
            site: 0,
            page: 0,
            object: 0,
            local: true,
            local_s: 1.0,
            remote_s: 2.0,
        });
        event("k", None, "stage", "detail".into());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_roundtrip_and_reset() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        add("c", 2);
        add("c", 3);
        {
            let _s = span("s");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        record_value("v", 2.5);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("c"), 5);
        let s = snap.span("s").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.total_ns >= 1_000_000, "span measured {} ns", s.total_ns);
        assert_eq!(snap.hists()["v"].count(), 1);
        assert!(snap.ops() >= 5);
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn cross_thread_flush_aggregates() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    add("t", 1);
                    flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let snap = take();
        assert_eq!(snap.counter("t"), 4);
    }

    #[test]
    fn ring_keeps_last_cap_decisions() {
        let mut r = Recorder::with_cap(3);
        for i in 0..7u32 {
            r.push_decision(Decision {
                site: 0,
                page: 0,
                object: i,
                local: false,
                local_s: 0.0,
                remote_s: 0.0,
            });
        }
        let kept: Vec<u32> = r.decisions().map(|d| d.object).collect();
        assert_eq!(kept, vec![4, 5, 6]);
        assert_eq!(r.decisions_dropped(), 4);
        assert_eq!(r.decisions_len(), 3);
    }

    #[test]
    fn event_buffer_saturates() {
        let mut r = Recorder::new();
        for i in 0..(EVENT_CAP + 10) {
            r.push_event(Event {
                kind: "k".into(),
                site: None,
                stage: "s".into(),
                detail: format!("{i}"),
            });
        }
        assert_eq!(r.events().len(), EVENT_CAP);
        assert_eq!(r.events_dropped(), 10);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Recorder::with_cap(8);
        let mut b = Recorder::with_cap(8);
        a.add("c", 1);
        b.add("c", 2);
        b.add("d", 7);
        a.record_span_ns("s", 10);
        b.record_span_ns("s", 30);
        a.record_value("h", 1.0);
        b.record_value("h", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 7);
        let s = a.span("s").unwrap();
        assert_eq!((s.count, s.total_ns), (2, 40));
        assert_eq!(a.hists()["h"].count(), 2);
        assert_eq!(a.ops(), b.ops() + 4);
    }
}
