//! Exposition determinism under multi-threaded recording.
//!
//! Telemetry is recorded by worker threads in whatever interleaving the
//! scheduler produces; the exposition must not depend on it. Two
//! identical multi-threaded runs must render byte-identical Prometheus
//! text and byte-identical JSONL traces.

use mmrepl_obs::Histogram;

/// One run: `threads` workers each record counters, recorder
/// histograms, and time-series samples, flushing their thread-local
/// recorders as a worker pool would. Returns the rendered exposition
/// and trace.
fn run(threads: usize, per_thread: u64) -> (String, String) {
    mmrepl_obs::reset();
    mmrepl_obs::set_enabled(true);
    mmrepl_obs::register_counter("det.requests", "requests");
    mmrepl_obs::register_reservoir("det.latency_s", "latency");
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut h = Histogram::for_response_times();
                for i in 0..per_thread {
                    mmrepl_obs::add("det.recorder_ops", 1);
                    mmrepl_obs::counter_add("det.requests", 1);
                    // Deterministic per-thread sample values.
                    let v = 0.01 * (1 + (t as u64 * per_thread + i) % 7) as f64;
                    h.record(v);
                }
                mmrepl_obs::observe_hist("det.latency_s", &h, 0.0);
                mmrepl_obs::merge_histogram("det.latency_s", &h);
                mmrepl_obs::flush_thread();
            });
        }
    });
    mmrepl_obs::set_enabled(false);
    let exposition = mmrepl_obs::to_prometheus(&mmrepl_obs::gather());
    let trace = mmrepl_obs::to_jsonl(&mmrepl_obs::take());
    mmrepl_obs::reset();
    (exposition, trace)
}

#[test]
fn exposition_is_deterministic_across_thread_interleavings() {
    let (expo_a, trace_a) = run(8, 500);
    let (expo_b, trace_b) = run(8, 500);
    assert_eq!(expo_a, expo_b, "exposition depends on thread schedule");
    assert_eq!(trace_a, trace_b, "trace depends on thread schedule");
    // Sanity: the run actually aggregated all 8 threads' work.
    assert!(
        expo_a.contains("mmrepl_det_requests_total 4000"),
        "{expo_a}"
    );
    assert!(
        expo_a.contains("mmrepl_det_latency_s_count 4000"),
        "{expo_a}"
    );
    assert!(trace_a.contains("\"name\":\"det.recorder_ops\",\"value\":4000"));
}
