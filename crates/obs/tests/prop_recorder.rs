//! Property tests: per-thread recorders merged in any order yield
//! identical counters, histograms and span totals.

use mmrepl_obs::{Decision, Recorder};
use proptest::prelude::*;

/// One synthetic recording operation.
#[derive(Clone, Debug)]
enum Op {
    Add(u8, u64),
    Span(u8, u64),
    Value(u8, f64),
    Decide(u32),
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn apply(r: &mut Recorder, op: &Op) {
    match op {
        Op::Add(n, d) => r.add(NAMES[*n as usize % NAMES.len()], *d),
        Op::Span(n, ns) => r.record_span_ns(NAMES[*n as usize % NAMES.len()], *ns),
        Op::Value(n, v) => r.record_value(NAMES[*n as usize % NAMES.len()], *v),
        Op::Decide(o) => r.push_decision(Decision {
            site: *o % 7,
            page: *o % 13,
            object: *o,
            local: *o % 2 == 0,
            local_s: *o as f64,
            remote_s: (*o as f64) * 0.5,
        }),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest has no `prop_oneof`; pick the variant from a
    // generated selector instead.
    (0u8..4, 0u8..4, 1u64..1_000_000, 0.001f64..1000.0).prop_map(|(sel, n, x, v)| match sel {
        0 => Op::Add(n, x % 100 + 1),
        1 => Op::Span(n, x),
        2 => Op::Value(n, v),
        _ => Op::Decide((x % 10_000) as u32),
    })
}

/// Builds one recorder per thread-worth of ops.
fn build(threads: &[Vec<Op>], cap: usize) -> Vec<Recorder> {
    threads
        .iter()
        .map(|ops| {
            let mut r = Recorder::with_cap(cap);
            for op in ops {
                apply(&mut r, op);
            }
            r
        })
        .collect()
}

/// Merges `parts` into a fresh recorder following `order` (a permutation
/// given as indices).
fn merge_in_order(parts: &[Recorder], order: &[usize], cap: usize) -> Recorder {
    let mut out = Recorder::with_cap(cap);
    for &i in order {
        out.merge(&parts[i]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_order_does_not_change_aggregates(
        threads in prop::collection::vec(prop::collection::vec(op_strategy(), 0..40), 1..6),
        seed in 0u64..1000,
        cap in 1usize..64,
    ) {
        let parts = build(&threads, cap);
        let n = parts.len();
        let identity: Vec<usize> = (0..n).collect();
        // A deterministic pseudo-random permutation derived from `seed`.
        let mut shuffled = identity.clone();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }

        let a = merge_in_order(&parts, &identity, cap);
        let b = merge_in_order(&parts, &shuffled, cap);

        // Counters, span aggregates and histograms are identical.
        prop_assert_eq!(a.counters(), b.counters());
        prop_assert_eq!(a.spans(), b.spans());
        prop_assert_eq!(a.hists(), b.hists());
        prop_assert_eq!(a.ops(), b.ops());
        // The ring's *contents* depend on merge order, but its shape does
        // not: kept + dropped counts are invariant.
        prop_assert_eq!(a.decisions_len(), b.decisions_len());
        prop_assert_eq!(a.decisions_dropped(), b.decisions_dropped());
    }

    #[test]
    fn merged_equals_single_threaded_run(
        threads in prop::collection::vec(prop::collection::vec(op_strategy(), 0..40), 1..6),
    ) {
        // Large enough cap that nothing drops: merging per-thread
        // recorders must equal one recorder fed every op.
        let cap = 100_000;
        let parts = build(&threads, cap);
        let order: Vec<usize> = (0..parts.len()).collect();
        let merged = merge_in_order(&parts, &order, cap);

        let mut single = Recorder::with_cap(cap);
        for ops in &threads {
            for op in ops {
                apply(&mut single, op);
            }
        }
        prop_assert_eq!(merged.counters(), single.counters());
        prop_assert_eq!(merged.spans(), single.spans());
        prop_assert_eq!(merged.hists(), single.hists());
        prop_assert_eq!(merged.decisions_len(), single.decisions_len());
        prop_assert_eq!(merged.ops(), single.ops());
    }
}
