//! Ancestor selection for federated repository trees.
//!
//! With a [`Topology`](mmrepl_model::Topology) attached to the system,
//! every site's remote stream must be served by some *ancestor* of its
//! attach node, over the constrained path (bottleneck bandwidth, summed
//! latency). This module decides which ancestor serves each site and
//! derives the effective [`SiteParams`] the planner then works against.
//!
//! Two policies are implemented, after Rehn-Sonigo's closest-allocation
//! work on replica placement in tree networks:
//!
//! * [`AncestorPolicy::Closest`] (default) — each site is served by its
//!   attach node; when a node's aggregate remote demand exceeds its
//!   capacity, the highest-demand sites are promoted toward the parent
//!   (QoS permitting) until the node fits. Root overload is left for the
//!   off-loading negotiation, exactly like the star's repository overload.
//! * [`AncestorPolicy::Flat`] — every site is served by the root, the
//!   paper's single-repository policy lifted onto the tree. QoS bounds are
//!   *not* consulted (the paper's model has none); the E-X6 study measures
//!   what that costs.
//!
//! On a one-node tree both policies serve every site from the root at
//! zero hops, and the zero-hop channel is the site's raw
//! `repo_rate`/`repo_ovhd` **bit for bit** — so star plans are unchanged.

use crate::streams::SiteParams;
use mmrepl_model::{IdVec, NodeId, SiteId, System};
use serde::{Deserialize, Serialize};

/// Which ancestor serves each site's remote stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AncestorPolicy {
    /// Closest allocation: serve from the attach node, promoting
    /// high-demand sites toward the root only when a node's capacity
    /// overflows and QoS allows.
    #[default]
    Closest,
    /// The paper's flat policy: every site is served by the root
    /// repository regardless of distance or QoS.
    Flat,
}

impl std::fmt::Display for AncestorPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AncestorPolicy::Closest => write!(f, "closest"),
            AncestorPolicy::Flat => write!(f, "flat"),
        }
    }
}

/// The outcome of an ancestor-selection pass: one serving node and one
/// effective parameter bundle per site.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// The node assigned to serve each site's remote stream.
    pub serving: IdVec<SiteId, NodeId>,
    /// The effective planner estimates per site: local fields raw,
    /// repository fields replaced by the serving channel (rate capped by
    /// the path bottleneck, overhead plus path latency).
    pub params: IdVec<SiteId, SiteParams>,
    /// Sites moved off their attach node by capacity pressure.
    pub promotions: usize,
    /// Promotion attempts vetoed by a QoS bound.
    pub qos_blocked: usize,
}

/// Matches the off-loading protocol's feasibility slack.
const EPS: f64 = 1e-9;

/// The remote demand a site would impose on its serving node if *nothing*
/// were replicated locally — the conservative (placement-independent)
/// load proxy the selection pass budgets with, mirroring the all-remote
/// Eq. 9 accounting.
fn remote_demand(system: &System, site: SiteId) -> f64 {
    system
        .pages_of(site)
        .iter()
        .map(|&p| {
            let page = system.page(p);
            page.freq.get() * (page.n_compulsory() as f64 + page.expected_optional_requests())
        })
        .sum()
}

/// Runs ancestor selection over the system's tree topology.
///
/// # Panics
/// Panics if the system carries no topology (star systems never reach the
/// selection stage).
pub fn select_ancestors(system: &System, policy: AncestorPolicy) -> Selection {
    let demand: Vec<f64> = system
        .sites()
        .ids()
        .map(|s| remote_demand(system, s))
        .collect();
    select_ancestors_with_demand(system, policy, &demand)
}

/// Ancestor selection against an explicit per-site remote demand (site-id
/// order) instead of the conservative all-remote proxy.
///
/// The planner's re-selection pass calls this after the restorations with
/// each site's *actual* repository load ([`crate::SiteWork::repo_load`]):
/// replication absorbs demand locally, so sites the proxy promoted off a
/// saturated ancestor often fit their attach node after all — and a site
/// whose measured demand still saturates its ancestor promotes exactly as
/// in the first pass.
///
/// # Panics
/// Panics if the system carries no topology or `demand` is not one entry
/// per site.
pub fn select_ancestors_with_demand(
    system: &System,
    policy: AncestorPolicy,
    demand: &[f64],
) -> Selection {
    assert_eq!(demand.len(), system.n_sites(), "one demand entry per site");
    let topo = system
        .topology()
        .expect("ancestor selection requires a tree topology");

    let mut serving: IdVec<SiteId, NodeId> = match policy {
        AncestorPolicy::Flat => system.sites().ids().map(|_| topo.root()).collect(),
        AncestorPolicy::Closest => system
            .sites()
            .ids()
            .map(|s| topo.attachment(s).node)
            .collect(),
    };

    let mut promotions = 0usize;
    let mut qos_blocked = 0usize;
    if policy == AncestorPolicy::Closest {
        // Deepest nodes first, so load promoted off an edge node is
        // visible when its parent's budget is checked.
        let mut order: Vec<NodeId> = topo.nodes().ids().collect();
        order.sort_by_key(|&n| (std::cmp::Reverse(topo.depth(n)), n));

        for n in order {
            let cap = topo.node(n).capacity.get();
            let Some((parent, _)) = topo.parent(n) else {
                // Root overload is the star's repository overload: the
                // off-loading negotiation absorbs it.
                continue;
            };
            let mut members: Vec<SiteId> =
                system.sites().ids().filter(|&s| serving[s] == n).collect();
            let mut load: f64 = members.iter().map(|&s| demand[s.index()]).sum();
            if load <= cap * (1.0 + EPS) + EPS {
                continue;
            }
            // Promote the heaviest sites first (ties by site id, for
            // determinism) until the node fits or nothing may move.
            members.sort_by(|&a, &b| {
                demand[b.index()]
                    .total_cmp(&demand[a.index()])
                    .then(a.cmp(&b))
            });
            for s in members {
                if load <= cap * (1.0 + EPS) + EPS {
                    break;
                }
                if system.qos_allows(s, parent) == Some(true) {
                    serving[s] = parent;
                    load -= demand[s.index()];
                    promotions += 1;
                } else {
                    qos_blocked += 1;
                }
            }
        }
    }

    let params: IdVec<SiteId, SiteParams> = system
        .sites()
        .iter()
        .map(|(sid, site)| {
            let ch = system
                .serving_channel(sid, serving[sid])
                .expect("serving node is an ancestor of the attach node");
            SiteParams {
                local_ovhd: site.local_ovhd.get(),
                local_rate: site.local_rate.get(),
                repo_ovhd: ch.ovhd.get(),
                repo_rate: ch.rate.get(),
            }
        })
        .collect();

    if mmrepl_obs::enabled() {
        mmrepl_obs::add("select.promotions", promotions as u64);
        mmrepl_obs::add("select.qos_blocked", qos_blocked as u64);
    }

    Selection {
        serving,
        params,
        promotions,
        qos_blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_model::{
        Attachment, Bytes, BytesPerSec, IdVec, Link, MediaObject, RepoNode, ReqPerSec, Secs, Site,
        SystemBuilder, Topology, WebPage,
    };

    fn site() -> Site {
        Site {
            storage: Bytes::gib(10),
            capacity: ReqPerSec::INFINITE,
            local_rate: BytesPerSec::kib_per_sec(6.5),
            repo_rate: BytesPerSec::kib_per_sec(4.0),
            local_ovhd: Secs(1.5),
            repo_ovhd: Secs(2.0),
        }
    }

    fn link(bw_kibps: f64, latency: f64) -> Link {
        Link {
            bandwidth: BytesPerSec::kib_per_sec(bw_kibps),
            latency: Secs(latency),
        }
    }

    /// `n_sites` one-page sites with per-site frequency `freqs[i]`, all
    /// attached per `attach` on the given tree.
    fn tree_system(
        freqs: &[f64],
        nodes: Vec<RepoNode>,
        parents: Vec<Option<(NodeId, Link)>>,
        attach: Vec<Attachment>,
    ) -> System {
        let mut b = SystemBuilder::new();
        let m = b.add_object(MediaObject::of_size(Bytes::kib(200)));
        for &f in freqs {
            let s = b.add_site(site());
            b.add_page(WebPage {
                site: s,
                html_size: Bytes::kib(10),
                freq: ReqPerSec(f),
                compulsory: vec![m],
                optional: vec![],
                opt_req_factor: 1.0,
            });
        }
        b.topology(
            Topology::new(
                IdVec::from_vec(nodes),
                IdVec::from_vec(parents),
                IdVec::from_vec(attach),
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    fn node(cap: f64) -> RepoNode {
        RepoNode {
            capacity: ReqPerSec(cap),
        }
    }

    fn att(n: u32) -> Attachment {
        Attachment {
            node: NodeId::new(n),
            qos: None,
        }
    }

    #[test]
    fn single_node_selection_is_bit_identical_to_raw_params() {
        let sys = tree_system(
            &[1.0, 2.0],
            vec![RepoNode::default()],
            vec![None],
            vec![att(0), att(0)],
        );
        for policy in [AncestorPolicy::Closest, AncestorPolicy::Flat] {
            let sel = select_ancestors(&sys, policy);
            assert_eq!(sel.promotions, 0);
            for (sid, s) in sys.sites().iter() {
                assert_eq!(sel.serving[sid], NodeId::new(0));
                let raw = SiteParams::of(s);
                let got = sel.params[sid];
                assert_eq!(got.repo_rate.to_bits(), raw.repo_rate.to_bits());
                assert_eq!(got.repo_ovhd.to_bits(), raw.repo_ovhd.to_bits());
                assert_eq!(got.local_rate.to_bits(), raw.local_rate.to_bits());
                assert_eq!(got.local_ovhd.to_bits(), raw.local_ovhd.to_bits());
            }
        }
    }

    /// Origin N0 with two edges N1, N2; one site on each edge.
    fn two_edge_tree(edge_caps: (f64, f64), freqs: &[f64]) -> System {
        tree_system(
            freqs,
            vec![node(1000.0), node(edge_caps.0), node(edge_caps.1)],
            vec![
                None,
                Some((NodeId::new(0), link(2.0, 0.5))),
                Some((NodeId::new(0), link(2.0, 0.5))),
            ],
            vec![att(1), att(2)],
        )
    }

    #[test]
    fn closest_stays_at_attach_when_capacity_suffices() {
        let sys = two_edge_tree((100.0, 100.0), &[1.0, 1.0]);
        let sel = select_ancestors(&sys, AncestorPolicy::Closest);
        assert_eq!(sel.serving[SiteId::new(0)], NodeId::new(1));
        assert_eq!(sel.serving[SiteId::new(1)], NodeId::new(2));
        assert_eq!(sel.promotions, 0);
        // Attach serving = zero hops = raw params.
        let raw = SiteParams::of(sys.site(SiteId::new(0)));
        assert_eq!(
            sel.params[SiteId::new(0)].repo_rate.to_bits(),
            raw.repo_rate.to_bits()
        );
    }

    #[test]
    fn overloaded_edge_promotes_heaviest_site_to_parent() {
        // Edge N1 hosts both sites (demand 1 and 3 req/s) but caps at 3.5.
        let sys = tree_system(
            &[1.0, 3.0],
            vec![node(1000.0), node(3.5)],
            vec![None, Some((NodeId::new(0), link(2.0, 0.5)))],
            vec![att(1), att(1)],
        );
        let sel = select_ancestors(&sys, AncestorPolicy::Closest);
        // The heavier site 1 moves to the origin; site 0 stays.
        assert_eq!(sel.serving[SiteId::new(0)], NodeId::new(1));
        assert_eq!(sel.serving[SiteId::new(1)], NodeId::new(0));
        assert_eq!(sel.promotions, 1);
        // Promoted site's channel is constrained: rate capped at 2 KiB/s
        // (site rate 4), overhead 2.0 + 0.5.
        let p = sel.params[SiteId::new(1)];
        assert_eq!(p.repo_rate, BytesPerSec::kib_per_sec(2.0).get());
        assert!((p.repo_ovhd - 2.5).abs() < 1e-12);
        // Un-promoted site keeps the raw channel.
        let raw = SiteParams::of(sys.site(SiteId::new(0)));
        assert_eq!(
            sel.params[SiteId::new(0)].repo_rate.to_bits(),
            raw.repo_rate.to_bits()
        );
    }

    #[test]
    fn qos_bound_blocks_promotion() {
        // Same overload, but the heavy site's QoS (2.2 s) forbids the
        // parent channel (2.0 + 0.5 = 2.5 s), so the lighter site moves
        // instead.
        let sys = tree_system(
            &[1.0, 3.0],
            vec![node(1000.0), node(3.5)],
            vec![None, Some((NodeId::new(0), link(2.0, 0.5)))],
            vec![
                att(1),
                Attachment {
                    node: NodeId::new(1),
                    qos: Some(Secs(2.2)),
                },
            ],
        );
        let sel = select_ancestors(&sys, AncestorPolicy::Closest);
        assert_eq!(sel.serving[SiteId::new(1)], NodeId::new(1));
        assert_eq!(sel.serving[SiteId::new(0)], NodeId::new(0));
        assert_eq!(sel.qos_blocked, 1);
        assert_eq!(sel.promotions, 1);
    }

    #[test]
    fn flat_serves_everyone_from_the_root() {
        let sys = two_edge_tree((0.5, 0.5), &[1.0, 1.0]);
        let sel = select_ancestors(&sys, AncestorPolicy::Flat);
        for s in sys.sites().ids() {
            assert_eq!(sel.serving[s], NodeId::new(0));
            // One hop: rate capped at 2 KiB/s, overhead 2.0 + 0.5.
            assert_eq!(sel.params[s].repo_rate, BytesPerSec::kib_per_sec(2.0).get());
            assert!((sel.params[s].repo_ovhd - 2.5).abs() < 1e-12);
        }
        assert_eq!(sel.promotions, 0);
    }

    #[test]
    fn promotion_cascades_toward_the_root() {
        // Three levels: origin N0 ← regional N1 ← edge N2. The edge caps
        // at 0 so both sites promote to the regional; the regional caps
        // at 3.5 so the heavy one continues to the origin.
        let sys = tree_system(
            &[1.0, 3.0],
            vec![node(1000.0), node(3.5), node(0.0)],
            vec![
                None,
                Some((NodeId::new(0), link(3.0, 0.25))),
                Some((NodeId::new(1), link(2.0, 0.5))),
            ],
            vec![att(2), att(2)],
        );
        let sel = select_ancestors(&sys, AncestorPolicy::Closest);
        assert_eq!(sel.serving[SiteId::new(0)], NodeId::new(1));
        assert_eq!(sel.serving[SiteId::new(1)], NodeId::new(0));
        assert_eq!(sel.promotions, 3);
        // Site 1's two-hop channel: bottleneck min(2,3) = 2 KiB/s,
        // latency 0.5 + 0.25.
        let p = sel.params[SiteId::new(1)];
        assert_eq!(p.repo_rate, BytesPerSec::kib_per_sec(2.0).get());
        assert!((p.repo_ovhd - 2.75).abs() < 1e-12);
    }

    #[test]
    fn selection_is_deterministic() {
        let sys = two_edge_tree((1.5, 100.0), &[1.0, 1.0]);
        let a = select_ancestors(&sys, AncestorPolicy::Closest);
        let b = select_ancestors(&sys, AncestorPolicy::Closest);
        assert_eq!(a, b);
    }
}
