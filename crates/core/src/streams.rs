//! Incremental per-page stream accounting.
//!
//! The restoration loops flip thousands of individual `X`/`X'` marks and
//! must know, after every flip, what the page's response time and objective
//! contribution became. Recomputing Eq. 3-6 from the object lists each time
//! would be O(objects-per-page); [`Streams`] keeps the byte totals of the
//! two parallel streams so each flip and each what-if query is O(1).

use mmrepl_model::{Bytes, Site};
use serde::{Deserialize, Serialize};

/// The per-site estimate bundle the planner works against, extracted once
/// from a [`Site`] so hot loops don't chase references.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteParams {
    /// `Ovhd(S_i)` in seconds.
    pub local_ovhd: f64,
    /// `Ovhd(R, S_i)` in seconds.
    pub repo_ovhd: f64,
    /// `B(S_i)` in bytes/second.
    pub local_rate: f64,
    /// `B(R, S_i)` in bytes/second.
    pub repo_rate: f64,
}

impl SiteParams {
    /// Extracts the estimates from a site.
    pub fn of(site: &Site) -> Self {
        SiteParams {
            local_ovhd: site.local_ovhd.get(),
            repo_ovhd: site.repo_ovhd.get(),
            local_rate: site.local_rate.get(),
            repo_rate: site.repo_rate.get(),
        }
    }

    /// Time to fetch `size` bytes on a fresh local connection (Eq. 6 local
    /// branch).
    #[inline]
    pub fn local_fetch(&self, size: Bytes) -> f64 {
        self.local_ovhd + size.get() as f64 / self.local_rate
    }

    /// Time to fetch `size` bytes on a fresh repository connection (Eq. 6
    /// remote branch).
    #[inline]
    pub fn repo_fetch(&self, size: Bytes) -> f64 {
        self.repo_ovhd + size.get() as f64 / self.repo_rate
    }

    /// Whether serving an object of `size` locally is faster for a
    /// standalone fetch — the rule used to decide optional-object marks.
    #[inline]
    pub fn local_fetch_wins(&self, size: Bytes) -> bool {
        self.local_fetch(size) < self.repo_fetch(size)
    }
}

/// The two parallel compulsory streams of one page, as byte totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Streams {
    /// Bytes on the local stream, *including* the HTML document.
    pub local_bytes: u64,
    /// Bytes on the repository stream.
    pub remote_bytes: u64,
    /// Number of compulsory objects on the repository stream (the stream
    /// time is zero when this is zero — the connection is never opened).
    pub n_remote: u32,
}

impl Streams {
    /// A page with everything local: only the HTML (plus local objects
    /// added later) on the local stream.
    pub fn all_local_base(html: Bytes) -> Self {
        Streams {
            local_bytes: html.get(),
            remote_bytes: 0,
            n_remote: 0,
        }
    }

    /// Eq. 3 — local stream completion time.
    #[inline]
    pub fn local_time(&self, p: &SiteParams) -> f64 {
        p.local_ovhd + self.local_bytes as f64 / p.local_rate
    }

    /// Eq. 4 — repository stream completion time (zero when empty).
    #[inline]
    pub fn remote_time(&self, p: &SiteParams) -> f64 {
        if self.n_remote == 0 {
            0.0
        } else {
            p.repo_ovhd + self.remote_bytes as f64 / p.repo_rate
        }
    }

    /// Eq. 5 — the page response time.
    #[inline]
    pub fn response(&self, p: &SiteParams) -> f64 {
        self.local_time(p).max(self.remote_time(p))
    }

    /// Moves one compulsory object of `size` from the repository stream to
    /// the local stream.
    #[inline]
    pub fn move_to_local(&mut self, size: Bytes) {
        debug_assert!(self.n_remote > 0, "no remote object to move");
        debug_assert!(self.remote_bytes >= size.get(), "remote stream underflow");
        self.remote_bytes -= size.get();
        self.local_bytes += size.get();
        self.n_remote -= 1;
    }

    /// Moves one compulsory object of `size` from the local stream to the
    /// repository stream.
    #[inline]
    pub fn move_to_remote(&mut self, size: Bytes) {
        debug_assert!(self.local_bytes >= size.get(), "local stream underflow");
        self.local_bytes -= size.get();
        self.remote_bytes += size.get();
        self.n_remote += 1;
    }

    /// Response time if one local object of `size` moved to the repository
    /// stream — a what-if without mutation, used by the greedy criteria.
    #[inline]
    pub fn response_if_remote(&self, size: Bytes, p: &SiteParams) -> f64 {
        let mut s = *self;
        s.move_to_remote(size);
        s.response(p)
    }

    /// Response time if one remote object of `size` moved to the local
    /// stream.
    #[inline]
    pub fn response_if_local(&self, size: Bytes, p: &SiteParams) -> f64 {
        let mut s = *self;
        s.move_to_local(size);
        s.response(p)
    }
}

/// Expected optional-download time bookkeeping for one page (the Eq. 6
/// sum), maintained incrementally as `X'` marks flip.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptionalCost {
    /// `f(W_j, M)` multiplier.
    pub factor: f64,
    /// Current Σ_k U'_jk · fetch_time(k), in seconds.
    pub expected: f64,
}

impl OptionalCost {
    /// Builds the cost for a page whose optional slots are described by
    /// `(prob, size, local)` triples.
    pub fn build<'a>(
        factor: f64,
        params: &SiteParams,
        slots: impl Iterator<Item = (f64, Bytes, bool)> + 'a,
    ) -> Self {
        let mut expected = 0.0;
        for (prob, size, local) in slots {
            expected += prob
                * if local {
                    params.local_fetch(size)
                } else {
                    params.repo_fetch(size)
                };
        }
        OptionalCost { factor, expected }
    }

    /// Eq. 6 total for the page.
    #[inline]
    pub fn time(&self) -> f64 {
        self.factor * self.expected
    }

    /// Applies one slot flipping between local and remote.
    #[inline]
    pub fn flip(&mut self, prob: f64, size: Bytes, now_local: bool, params: &SiteParams) {
        let (from, to) = if now_local {
            (params.repo_fetch(size), params.local_fetch(size))
        } else {
            (params.local_fetch(size), params.repo_fetch(size))
        };
        self.expected += prob * (to - from);
    }

    /// The Eq. 6 delta (in page-time seconds) if one slot flipped, without
    /// mutating.
    #[inline]
    pub fn delta_if_flipped(
        &self,
        prob: f64,
        size: Bytes,
        now_local: bool,
        params: &SiteParams,
    ) -> f64 {
        let (from, to) = if now_local {
            (params.repo_fetch(size), params.local_fetch(size))
        } else {
            (params.local_fetch(size), params.repo_fetch(size))
        };
        self.factor * prob * (to - from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_model::{BytesPerSec, ReqPerSec, Secs, Site};

    fn params() -> SiteParams {
        SiteParams::of(&Site {
            storage: Bytes::gib(1),
            capacity: ReqPerSec(150.0),
            local_rate: BytesPerSec::kib_per_sec(10.0),
            repo_rate: BytesPerSec::kib_per_sec(1.0),
            local_ovhd: Secs(1.0),
            repo_ovhd: Secs(2.0),
        })
    }

    #[test]
    fn site_params_extracts_estimates() {
        let p = params();
        assert_eq!(p.local_ovhd, 1.0);
        assert_eq!(p.repo_ovhd, 2.0);
        assert_eq!(p.local_rate, 10.0 * 1024.0);
        assert_eq!(p.repo_rate, 1024.0);
    }

    #[test]
    fn fetch_times_match_cost_model() {
        let p = params();
        assert!((p.local_fetch(Bytes::kib(20)) - 3.0).abs() < 1e-12); // 1 + 2
        assert!((p.repo_fetch(Bytes::kib(20)) - 22.0).abs() < 1e-12); // 2 + 20
        assert!(p.local_fetch_wins(Bytes::kib(20)));
    }

    #[test]
    fn streams_times_match_equations() {
        let p = params();
        let mut s = Streams::all_local_base(Bytes::kib(10));
        // Only HTML: local 1 + 1 = 2; remote 0 (no connection).
        assert!((s.local_time(&p) - 2.0).abs() < 1e-12);
        assert_eq!(s.remote_time(&p), 0.0);
        assert!((s.response(&p) - 2.0).abs() < 1e-12);

        // Put a 30 KiB object remote: remote = 2 + 30 = 32.
        s.local_bytes += Bytes::kib(30).get();
        s.move_to_remote(Bytes::kib(30));
        assert!((s.remote_time(&p) - 32.0).abs() < 1e-12);
        assert!((s.response(&p) - 32.0).abs() < 1e-12);

        // Move it back: local = 1 + 4 = 5, remote connection closes.
        s.move_to_local(Bytes::kib(30));
        assert!((s.local_time(&p) - 5.0).abs() < 1e-12);
        assert_eq!(s.remote_time(&p), 0.0);
    }

    #[test]
    fn what_if_queries_do_not_mutate() {
        let p = params();
        let mut s = Streams::all_local_base(Bytes::kib(10));
        s.local_bytes += Bytes::kib(100).get();
        let before = s;
        let what_if = s.response_if_remote(Bytes::kib(100), &p);
        assert_eq!(s, before);
        // 100 KiB remote: remote = 2 + 100 = 102 dominates local 1+1=2.
        assert!((what_if - 102.0).abs() < 1e-12);

        let mut with_remote = s;
        with_remote.move_to_remote(Bytes::kib(100));
        let back = with_remote.response_if_local(Bytes::kib(100), &p);
        // Back to all local: 1 + 110/10 = 12.
        assert!((back - 12.0).abs() < 1e-12);
    }

    #[test]
    fn optional_cost_build_and_flip() {
        let p = params();
        // Two slots: (0.5, 20 KiB, local), (0.1, 10 KiB, remote).
        let slots = vec![(0.5, Bytes::kib(20), true), (0.1, Bytes::kib(10), false)];
        let mut oc = OptionalCost::build(1.0, &p, slots.into_iter());
        // 0.5*(1+2) + 0.1*(2+10) = 1.5 + 1.2 = 2.7
        assert!((oc.time() - 2.7).abs() < 1e-12);

        // Flip the second slot to local: 0.1*(1+1) = 0.2 instead of 1.2.
        let delta = oc.delta_if_flipped(0.1, Bytes::kib(10), true, &p);
        assert!((delta - (0.2 - 1.2)).abs() < 1e-12);
        oc.flip(0.1, Bytes::kib(10), true, &p);
        assert!((oc.time() - 1.7).abs() < 1e-12);

        // Flip it back.
        oc.flip(0.1, Bytes::kib(10), false, &p);
        assert!((oc.time() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn optional_factor_scales_time() {
        let p = params();
        let slots = vec![(0.5, Bytes::kib(20), true)];
        let oc = OptionalCost::build(2.0, &p, slots.into_iter());
        assert!((oc.time() - 3.0).abs() < 1e-12); // 2 * 1.5
    }

    #[test]
    fn response_balances_at_crossover() {
        // 10 objects x 50 KiB plus 10 KiB HTML, local pipe 10 KiB/s.
        let p = params();
        let mut all_local = Streams::all_local_base(Bytes::kib(10));
        for _ in 0..10 {
            all_local.local_bytes += Bytes::kib(50).get();
        }
        // All local: 1 + 510/10 = 52.0 s.
        let t_all_local = all_local.response(&p);
        assert!((t_all_local - 52.0).abs() < 1e-9);

        // One object remote: local 1 + 460/10 = 47, remote 2 + 50 = 52 —
        // the slow repository pipe exactly ties the all-local time.
        let mut split = all_local;
        split.move_to_remote(Bytes::kib(50));
        assert!((split.response(&p) - 52.0).abs() < 1e-9);

        // A second remote object overloads the slow pipe: remote = 2 + 100
        // = 102 and the split becomes much worse than all-local.
        let mut split2 = split;
        split2.move_to_remote(Bytes::kib(50));
        assert!(split2.response(&p) > t_all_local);

        // With symmetric pipes a balanced split clearly wins.
        let sym = SiteParams {
            repo_rate: p.local_rate,
            repo_ovhd: p.local_ovhd,
            ..p
        };
        let mut split_sym = all_local;
        for _ in 0..5 {
            split_sym.move_to_remote(Bytes::kib(50));
        }
        assert!(split_sym.response(&sym) < all_local.response(&sym));
    }
}
