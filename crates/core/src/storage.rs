//! Storage-constraint restoration (Eq. 10), Section 4.2.
//!
//! While a site stores more bytes than `Size(S_i)`, deallocate the stored
//! object whose removal raises the objective least **per byte freed**
//! ("the difference in D ... is amortized over the size of an object ...
//! to make our criterion more judicious over large objects"), then give
//! the pages that lost a local download a chance to re-balance against the
//! shrunken store ("after each deallocation we check whether we can reduce
//! the download time for pages previously marking the deallocated MO").
//!
//! The candidate ranking lives in a lazily-revalidated min-heap
//! ([`crate::lazyheap`]): deltas of
//! objects sharing a page with the victim go stale on each deallocation,
//! so each pop re-computes the candidate's current delta and re-inserts it
//! unless it is still at least as good as the next-best key. With ~4,500
//! stored objects per site and a handful of references each, restoration
//! is near-linear in the number of deallocations.

use crate::lazyheap::LazyMinHeap;
use crate::state::SiteWork;
use mmrepl_model::ObjectId;
use serde::{Deserialize, Serialize};

/// The greedy deallocation criterion (A2 ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeallocCriterion {
    /// Objective damage divided by bytes freed — the paper's criterion
    /// ("amortized over the size of an object").
    #[default]
    AmortizedOverSize,
    /// Raw objective damage, ignoring object size.
    RawDelta,
}

/// What storage restoration did to one site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Objects deallocated by the greedy criterion.
    pub deallocated: usize,
    /// Orphaned objects dropped for free (lost their last mark during
    /// re-partitioning).
    pub orphaned: usize,
    /// Pages whose partition improved after a deallocation.
    pub repartitioned: usize,
    /// Bytes freed in total.
    pub bytes_freed: u64,
    /// Raw candidate-heap pops, including dead/stale entries the lazy
    /// revalidation cycled through (see [`crate::lazyheap`]).
    #[serde(default)]
    pub heap_pops: u64,
    /// Whether the constraint was met. `false` only when even the empty
    /// store (HTML alone) exceeds capacity.
    pub feasible: bool,
}

/// Restores Eq. 10 for one site with the paper's amortized criterion.
/// Idempotent: returns immediately (feasible, zero work) when the site
/// already fits.
pub fn restore_storage(work: &mut SiteWork<'_>) -> StorageReport {
    restore_storage_with(work, DeallocCriterion::AmortizedOverSize)
}

/// Restores Eq. 10 with an explicit deallocation criterion (A2 ablation).
pub fn restore_storage_with(work: &mut SiteWork<'_>, criterion: DeallocCriterion) -> StorageReport {
    let mut report = StorageReport {
        feasible: true,
        ..StorageReport::default()
    };
    let capacity = work.storage_capacity();
    if work.storage_used() <= capacity {
        return report;
    }

    // Free orphans first — they cost nothing.
    let freed = work.drop_orphans();
    if freed > 0 {
        report.bytes_freed += freed;
    }

    // Min-heap of (criterion key, object). Lazy revalidation on pop:
    // entries whose object was orphaned meanwhile are dead, entries whose
    // delta grew are re-keyed.
    let mut heap: LazyMinHeap<ObjectId> = LazyMinHeap::from_entries(
        work.stored_objects()
            .into_iter()
            .map(|k| (dealloc_key(work, k, criterion), k)),
    );

    let mut affected = Vec::new();
    while work.storage_used() > capacity {
        let Some(object) =
            heap.pop_current(|k| work.is_stored(k), |k| dealloc_key(work, k, criterion))
        else {
            // Store is empty but HTML alone overflows: infeasible.
            report.feasible = false;
            break;
        };

        let size = work.system().object_size(object).get();
        work.dealloc_into(object, &mut affected);
        report.deallocated += 1;
        report.bytes_freed += size;

        // Let the pages that lost a local download re-balance.
        for &idx in &affected {
            if work.repartition_page(idx) {
                report.repartitioned += 1;
            }
        }
        // Re-partitioning may strip the last mark from other objects.
        let orphan_bytes = work.drop_orphans();
        if orphan_bytes > 0 {
            report.bytes_freed += orphan_bytes;
            report.orphaned += 1;
        }
    }

    if work.storage_used() > capacity {
        report.feasible = false;
    }
    report.heap_pops = heap.pops();
    report
}

/// The greedy key under the chosen criterion.
fn dealloc_key(work: &SiteWork<'_>, object: ObjectId, criterion: DeallocCriterion) -> f64 {
    let delta = work.delta_d_dealloc(object);
    match criterion {
        DeallocCriterion::AmortizedOverSize => {
            delta / work.system().object_size(object).get() as f64
        }
        DeallocCriterion::RawDelta => delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_all;
    use mmrepl_model::{CostParams, SiteId, System};
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn constrained_system(frac: f64, seed: u64) -> System {
        generate_system(&WorkloadParams::small(), seed)
            .unwrap()
            .with_storage_fraction(frac)
            .with_processing_fraction(10.0) // relax Eq. 8 (Figure 1 setup)
    }

    fn restored(sys: &System, site: u32) -> (SiteWork<'_>, StorageReport) {
        let placement = partition_all(sys);
        let mut w = SiteWork::new(sys, SiteId::new(site), &placement, CostParams::default());
        let report = restore_storage(&mut w);
        (w, report)
    }

    #[test]
    fn already_feasible_is_a_noop() {
        let sys = constrained_system(1.0, 1);
        let (w, report) = restored(&sys, 0);
        assert!(report.feasible);
        assert_eq!(report.deallocated, 0);
        assert!(w.storage_used() <= w.storage_capacity());
    }

    #[test]
    fn restores_constraint_at_every_sweep_point() {
        for &frac in &[0.8, 0.6, 0.4, 0.2] {
            let sys = constrained_system(frac, 2);
            for site in 0..sys.n_sites() as u32 {
                let (w, report) = restored(&sys, site);
                assert!(report.feasible, "frac {frac} site {site}");
                assert!(
                    w.storage_used() <= w.storage_capacity(),
                    "frac {frac} site {site}: {} > {}",
                    w.storage_used(),
                    w.storage_capacity()
                );
                w.validate_consistency();
            }
        }
    }

    #[test]
    fn deallocation_count_tracks_pressure() {
        let sys_mild = constrained_system(0.8, 3);
        let sys_hard = constrained_system(0.3, 3);
        let (_, mild) = restored(&sys_mild, 0);
        let (_, hard) = restored(&sys_hard, 0);
        assert!(
            hard.deallocated > mild.deallocated,
            "mild {mild:?} hard {hard:?}"
        );
        assert!(hard.bytes_freed > mild.bytes_freed);
    }

    #[test]
    fn objective_degrades_gracefully_not_catastrophically() {
        // The criterion's job: losing 40% of storage must land the
        // objective far closer to the unconstrained optimum than to the
        // all-remote catastrophe (the small test workload shares little
        // between pages, so some degradation is unavoidable).
        let sys = constrained_system(10.0, 4); // effectively unconstrained
        let placement = partition_all(&sys);
        let w_free = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let d_free = w_free.total_d();
        let remote = mmrepl_model::Placement::all_remote(&sys);
        let d_remote =
            SiteWork::new(&sys, SiteId::new(0), &remote, CostParams::default()).total_d();
        assert!(d_remote > d_free * 2.0, "workload too easy to discriminate");

        let sys_tight = constrained_system(0.6, 4);
        let (w_tight, report) = restored(&sys_tight, 0);
        assert!(report.feasible);
        let d_tight = w_tight.total_d();
        assert!(d_tight >= d_free - 1e-9, "constraint can't improve D");
        // Closer to the optimum than to all-remote.
        assert!(
            d_tight - d_free < (d_remote - d_free) * 0.5,
            "60% storage: D {d_tight:.1} vs free {d_free:.1}, remote {d_remote:.1}"
        );
    }

    #[test]
    fn greedy_beats_random_deallocation() {
        let sys = constrained_system(0.5, 5);
        let placement = partition_all(&sys);

        let mut greedy = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let report = restore_storage(&mut greedy);
        assert!(report.feasible);

        // Random-order (id-order) deallocation to the same capacity.
        let mut blind = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let mut stored = blind.stored_objects();
        stored.sort(); // deterministic "uninformed" order
        let mut i = 0;
        while blind.storage_used() > blind.storage_capacity() && i < stored.len() {
            if blind.is_stored(stored[i]) {
                blind.dealloc(stored[i]);
            }
            i += 1;
        }
        assert!(blind.storage_used() <= blind.storage_capacity());
        assert!(
            greedy.total_d() <= blind.total_d(),
            "greedy {} should beat blind {}",
            greedy.total_d(),
            blind.total_d()
        );
    }

    #[test]
    fn infeasible_when_html_alone_overflows() {
        let sys = generate_system(&WorkloadParams::small(), 6)
            .unwrap()
            .with_storage_fraction(0.0001);
        let placement = partition_all(&sys);
        let mut w = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let report = restore_storage(&mut w);
        assert!(!report.feasible);
        // Everything deallocatable was deallocated.
        assert!(w.stored_objects().is_empty());
    }

    #[test]
    fn amortized_criterion_not_worse_than_raw_delta() {
        // A2 ablation: the paper's per-byte amortization should not lose
        // to raw-delta on the very workload it was designed for.
        let sys = constrained_system(0.5, 11);
        let placement = partition_all(&sys);
        let mut amortized = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let ra = restore_storage_with(&mut amortized, DeallocCriterion::AmortizedOverSize);
        let mut raw = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let rr = restore_storage_with(&mut raw, DeallocCriterion::RawDelta);
        assert!(ra.feasible && rr.feasible);
        // Raw delta deallocates cheap-but-tiny objects first and needs
        // far more deallocations to free the same bytes.
        assert!(
            rr.deallocated >= ra.deallocated,
            "raw {} vs amortized {}",
            rr.deallocated,
            ra.deallocated
        );
        assert!(
            amortized.total_d() <= raw.total_d() * 1.05,
            "amortized D {} vs raw D {}",
            amortized.total_d(),
            raw.total_d()
        );
    }

    #[test]
    fn restoration_is_deterministic() {
        let sys = constrained_system(0.5, 7);
        let (a, ra) = restored(&sys, 1);
        let (b, rb) = restored(&sys, 1);
        assert_eq!(ra, rb);
        assert_eq!(a.storage_used(), b.storage_used());
        assert!((a.total_d() - b.total_d()).abs() < 1e-12);
    }
}
