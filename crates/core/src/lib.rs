#![warn(missing_docs)]

//! # mmrepl-core
//!
//! The paper's contribution (Section 4): a distributed replication policy
//! that decides, per page, which multimedia objects each local site stores
//! and serves itself and which it leaves to the central repository, so the
//! two parallel download streams finish together — subject to storage
//! (Eq. 10) and processing-capacity (Eq. 8/9) constraints.
//!
//! Pipeline, exactly as the paper orders it:
//!
//! 1. [`partition`] — the greedy `PARTITION(W_j)` balancing, run
//!    independently per page (decreasing object size, each object placed on
//!    whichever stream stays shorter);
//! 2. [`storage`] — restore Eq. 10 by repeatedly deallocating the stored
//!    object whose removal hurts the objective least *per byte freed*,
//!    re-partitioning the affected pages against the shrunken store;
//! 3. [`capacity`] — restore Eq. 8 by moving the `(page, object)` local
//!    download with the least performance loss *per unit of workload
//!    freed* back to the repository, deallocating objects that lose their
//!    last local mark;
//! 4. [`offload`] — restore Eq. 9 with the distributed
//!    `OFF_LOADING_REPOSITORY` negotiation: sites report
//!    `(Space(S_i), P(S_i), P(S_i,R))` status messages over a simulated
//!    control plane, the repository pushes excess workload back
//!    proportionally to headroom (L1 = sites with space and cpu, L2 = cpu
//!    only), sites absorb what they can and acknowledge, over as many
//!    rounds as needed.
//!
//! [`planner::ReplicationPolicy`] glues the stages together and returns the
//! final [`mmrepl_model::Placement`] plus a [`planner::PlanReport`] of what
//! each stage did.
//!
//! ## Example
//!
//! ```
//! use mmrepl_core::ReplicationPolicy;
//! use mmrepl_model::ConstraintReport;
//! use mmrepl_workload::{generate_system, WorkloadParams};
//!
//! let system = generate_system(&WorkloadParams::small(), 7)
//!     .unwrap()
//!     .with_storage_fraction(0.6)   // Figure 1-style squeeze
//!     .with_processing_fraction(0.9);
//!
//! let outcome = ReplicationPolicy::new().plan(&system);
//! assert!(outcome.report.feasible);
//! assert!(ConstraintReport::check(&system, &outcome.placement).is_feasible());
//! ```

pub mod audit;
pub mod bits;
pub mod capacity;
pub mod lazyheap;
pub mod negotiate;
pub mod offload;
pub mod partition;
pub mod planner;
pub mod pool;
pub mod select;
pub mod state;
pub mod storage;
pub mod streams;

pub use audit::{
    assert_consistent, audit_site, audits_performed, check_repo_constraint, check_site_constraints,
    AuditStage, Divergence,
};
pub use bits::DenseBits;
pub use capacity::{restore_capacity, CapacityReport};
pub use lazyheap::LazyMinHeap;
pub use negotiate::{
    run_negotiation, run_negotiation_with, NegotiateConfig, NegotiateMsg, NegotiateOutcome,
    NegotiateReport, Negotiator, RoundCtx, StrategyKind,
};
pub use offload::{
    absorb_workload, paper_round_plan, run_offload, Assignment, AssignmentRule, OffloadConfig,
    OffloadError, OffloadOutcome, OffloadReport, RoundPlan,
};
pub use partition::{
    optimal_partition, partition_all, partition_all_ordered, partition_all_with, partition_page,
    partition_page_ordered, partition_page_ordered_with, PartitionOrder,
};
pub use planner::{PlanOutcome, PlanReport, PlannerConfig, ReplicationPolicy};
pub use pool::{effective_threads, parallel_map};
pub use select::{select_ancestors, select_ancestors_with_demand, AncestorPolicy, Selection};
pub use state::SiteWork;
pub use storage::{restore_storage, restore_storage_with, DeallocCriterion, StorageReport};
pub use streams::{OptionalCost, SiteParams, Streams};
