//! A flat, fixed-capacity bitset over dense `u32` indices.
//!
//! The restoration inner loops answer "is this object stored?" and "walk
//! every stored object" millions of times per plan. A `Vec<bool>` sized to
//! the *global* object universe answers the first in O(1) but makes every
//! site pay O(total objects) to build, clear and scan — at 100x scale
//! (1.5M objects × 1000 sites) that is gigabytes of traffic for state
//! that is ~99.9% zeros. [`DenseBits`] stores one bit per *site-local*
//! index instead: word-packed, O(n/64) iteration, and small enough that a
//! site's whole store fits in a few cache lines.

/// A word-packed bitset over `0..len` indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBits {
    words: Vec<u64>,
    len: usize,
}

impl DenseBits {
    /// An all-zeros bitset with capacity for indices `0..len`.
    pub fn zeros(len: usize) -> Self {
        DenseBits {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices this set covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i`; returns whether it was newly set.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let was = *word & mask != 0;
        *word |= mask;
        !was
    }

    /// Clears bit `i`; returns whether it was previously set.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((wi << 6) + i)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = DenseBits::zeros(200);
        assert!(b.is_empty());
        assert!(b.set(0));
        assert!(b.set(63));
        assert!(b.set(64));
        assert!(b.set(199));
        assert!(!b.set(64), "second set reports not-new");
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(199));
        assert!(!b.get(1) && !b.get(100));
        assert_eq!(b.count_ones(), 4);
        assert!(b.clear(63));
        assert!(!b.clear(63), "second clear reports absent");
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn iter_ones_is_ascending_and_complete() {
        let mut b = DenseBits::zeros(300);
        let picks = [0usize, 5, 63, 64, 65, 127, 128, 255, 299];
        for &i in picks.iter().rev() {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, picks);
    }

    #[test]
    fn zero_length_is_empty() {
        let b = DenseBits::zeros(0);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
