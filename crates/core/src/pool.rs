//! A persistent fork-join worker pool.
//!
//! Experiment sweeps and the planner both fan independent work items out
//! over threads many times per process (hundreds of sweep points, each a
//! handful of sites). Spawning OS threads per call dominates at that
//! granularity, so this module keeps one process-wide pool of workers
//! alive and hands them *claim loops*: every dispatch shares an atomic
//! index cursor, and each participant (the caller included) repeatedly
//! claims a chunk of indices and computes them. Results land in
//! index-ordered slots, so output is deterministic — bit-identical to a
//! sequential run — regardless of scheduling.
//!
//! The caller always participates in its own dispatch and blocks until
//! every worker that picked the job up has finished, which is what makes
//! it sound to lend the workers borrows from the caller's stack frame
//! (the lifetime erasure in [`Pool::scoped`]). Nested calls from inside a
//! pool worker run sequentially instead of dispatching again: a worker
//! that blocked waiting on sub-tickets could deadlock the pool if every
//! worker did so at once.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Resolves the worker count: `0` means one per available core, and never
/// more workers than items.
pub fn effective_threads(threads: usize, n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if threads == 0 { hw } else { threads };
    t.clamp(1, n.max(1))
}

/// Applies `f` to every index in `0..n` across up to `threads` workers
/// (`0` = one per available core), returning results in index order. `f`
/// must be `Sync` because all workers share it.
///
/// Work is claimed in chunks off a shared atomic cursor, so load balances
/// dynamically; each index is computed exactly once and placed by index,
/// so the output is identical to `(0..n).map(f).collect()` whatever the
/// schedule. A panic in any worker propagates to the caller after the
/// dispatch drains (matching scoped-thread semantics).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    if threads <= 1 || in_pool_worker() {
        return (0..n).map(f).collect();
    }

    // Chunked claiming: big enough to amortise the atomic, small enough
    // that a slow item doesn't strand the tail on one worker.
    let chunk = (n / (threads * 4)).max(1);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let work = || {
        let mut local: Vec<(usize, T)> = Vec::new();
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for i in start..end {
                local.push((i, f(i)));
            }
        }
        if !local.is_empty() {
            results.lock().unwrap().extend(local);
        }
    };
    pool().scoped(threads - 1, &work);

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in results.into_inner().unwrap() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

thread_local! {
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_pool_worker() -> bool {
    IN_POOL.with(|b| b.get())
}

/// One dispatched job: `pending` tickets remain to be picked up (or
/// skipped) by pool workers; the caller waits for it to reach zero.
struct Ticket {
    task: &'static (dyn Fn() + Sync),
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Ticket>>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Runs `work` on the caller plus up to `extra` pool workers, blocking
    /// until all of them return. `work` only borrows from the caller's
    /// frame, which stays valid for exactly that window — the lifetime
    /// erasure below is sound because no worker touches the ticket after
    /// decrementing `pending`, and the caller does not return before
    /// `pending` hits zero.
    fn scoped(&'static self, extra: usize, work: &(dyn Fn() + Sync)) {
        let task: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
        let ticket = Arc::new(Ticket {
            task,
            pending: Mutex::new(extra),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        self.ensure_workers(extra);
        {
            let mut q = self.queue.lock().unwrap();
            for _ in 0..extra {
                q.push_back(Arc::clone(&ticket));
            }
        }
        self.available.notify_all();

        // The caller participates; a panic here must still wait for the
        // workers (they are borrowing our frame) before resuming.
        let caller_result = catch_unwind(AssertUnwindSafe(work));

        let mut pending = ticket.pending.lock().unwrap();
        while *pending > 0 {
            pending = ticket.done.wait(pending).unwrap();
        }
        drop(pending);

        if let Some(payload) = ticket.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
    }

    /// Grows the pool to at least `want` resident workers. Workers are
    /// daemons: they park on the queue between dispatches and die with
    /// the process.
    fn ensure_workers(&'static self, want: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < want {
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("mmrepl-pool-{id}"))
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    fn worker_loop(&'static self) {
        IN_POOL.with(|b| b.set(true));
        loop {
            let ticket = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            // Late arrivals find the cursor exhausted and return at once;
            // either way the decrement below is what releases the caller.
            let result = catch_unwind(AssertUnwindSafe(|| (ticket.task)()));
            if let Err(payload) = result {
                let mut slot = ticket.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Merge whatever this worker's thread-local trace recorder
            // accumulated *before* releasing the caller, so a snapshot
            // taken right after the dispatch sees every worker's data.
            // No-op (no lock) when nothing was recorded.
            mmrepl_obs::flush_thread();
            let mut pending = ticket.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                ticket.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = parallel_map(1000, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback_matches() {
        let seq = parallel_map(50, 1, |i| i + 1);
        let par = parallel_map(50, 4, |i| i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 1), 1);
        assert_eq!(effective_threads(16, 4), 4);
        assert_eq!(effective_threads(2, 100), 2);
    }

    #[test]
    fn work_runs_on_resident_pool_threads() {
        // Everything not done by the caller must land on a named resident
        // worker — never on an ad-hoc per-dispatch thread. (The pool is
        // process-wide, so concurrent tests share the same workers.)
        let caller = std::thread::current().id();
        for _ in 0..5 {
            parallel_map(64, 4, |i| {
                let t = std::thread::current();
                if t.id() != caller {
                    let name = t.name().unwrap_or("");
                    assert!(
                        name.starts_with("mmrepl-pool-"),
                        "work ran on non-pool thread {name:?}"
                    );
                }
                (0..10_000).fold(i as u64, |a, x| a.wrapping_add(x))
            });
        }
    }

    #[test]
    fn actually_uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // A little work so the pool actually spreads.
            (0..100_000).fold(i as u64, |a, x| a.wrapping_add(x))
        });
        assert!(ids.lock().unwrap().len() >= 2);
    }

    #[test]
    fn nested_calls_fall_back_to_sequential() {
        let out = parallel_map(8, 4, |i| {
            let inner = parallel_map(4, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(100, 4, |i| {
                if i == 57 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
    }
}
