//! Per-site mutable working state for the restoration algorithms.
//!
//! All three constraint-restoration stages repeatedly flip individual
//! `X`/`X'` marks and need O(1) answers to "what is the site's load now",
//! "how many bytes are stored", "what does the objective lose if this
//! object goes". [`SiteWork`] owns one site's slice of the placement plus
//! every derived quantity, updates them incrementally on each flip, and can
//! cross-check itself against a from-scratch recomputation (used heavily in
//! property tests).
//!
//! ## Layout
//!
//! Everything is indexed in a *site-local* dense object space: the objects
//! this site's pages reference, in ascending id order. Membership lives in
//! a flat [`DenseBits`] word bitset, slot→object resolution in CSR-style
//! arenas built once at construction (forward: page slot → local index,
//! size, fetch-win; reverse: local index → `(page, slot)` references).
//! Nothing in the hot flip/dealloc/repartition loops is sized by — or even
//! looks at — the global object universe, which is what lets a thousand
//! `SiteWork`s coexist at 100x scale without blowing caches or memory.
//!
//! Invariant maintained throughout: **a mark can be local only if its
//! object is in the site's store**, and the store is exactly the set of
//! objects with at least one local mark (plus objects explicitly allocated
//! during off-loading that are about to gain one).

use crate::bits::DenseBits;
use crate::streams::{OptionalCost, SiteParams, Streams};
use mmrepl_model::{Bytes, CostParams, ObjectId, PageId, PagePartition, Placement, SiteId, System};

/// A totally ordered `f64` key for greedy heaps (orders by
/// `f64::total_cmp`; the algorithms never produce NaN, but the type stays
/// total anyway).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Which half of a page's reference list a mark lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SlotKind {
    /// A compulsory reference (`U` / `X`).
    Compulsory,
    /// An optional reference (`U'` / `X'`).
    Optional,
}

/// One site's mutable planning state.
pub struct SiteWork<'a> {
    sys: &'a System,
    site: SiteId,
    params: SiteParams,
    alpha1: f64,
    alpha2: f64,
    /// Local pages, in id order; all per-page vectors index parallel to it.
    pages: Vec<PageId>,
    freq: Vec<f64>,
    streams: Vec<Streams>,
    opt_cost: Vec<OptionalCost>,
    parts: Vec<PagePartition>,
    /// The objects this site's pages reference, ascending by id. Position
    /// in this vector is the *local index* every dense structure below
    /// shares; `local_of` resolves a global id by binary search.
    local_objects: Vec<ObjectId>,
    /// Store membership, one bit per local index.
    store: DenseBits,
    /// Stored objects *not* referenced by any local page (possible only
    /// through an explicit markless [`SiteWork::alloc`]); sorted ascending.
    /// Empty throughout the planning pipeline, so the hot paths never
    /// touch it.
    foreign: Vec<ObjectId>,
    stored_bytes: u64,
    html_bytes: u64,
    load: f64,
    /// Whether update-propagation load is accounted (read/write
    /// extension; the paper's read-only model leaves this off).
    count_updates: bool,
    /// Refresh load of the current store: `Σ_{k stored} u_k` (zero when
    /// `count_updates` is off).
    update_load: f64,
    /// Local-mark count per local object (orphan detection).
    mark_count: Vec<u32>,
    /// CSR reverse index: compulsory `(page_idx, slot)` references of local
    /// object `o` live at `comp_dat[comp_off[o] .. comp_off[o + 1]]`, in
    /// (page idx, slot) ascending order.
    comp_off: Vec<u32>,
    comp_dat: Vec<(u32, u32)>,
    /// CSR reverse index for optional references, same layout.
    opt_off: Vec<u32>,
    opt_dat: Vec<(u32, u32)>,
    /// Forward arena offsets: page `idx`'s compulsory slots occupy
    /// `comp_slot_off[idx] .. comp_slot_off[idx + 1]` in the `comp_slot_*`
    /// arenas below (slot order preserved).
    comp_slot_off: Vec<u32>,
    /// Local object index per compulsory slot.
    comp_slot_lobj: Vec<u32>,
    /// Object size per compulsory slot (no global table walk on flips).
    comp_slot_size: Vec<Bytes>,
    /// Per page, its compulsory *arena positions* ordered by
    /// (size desc, slot asc) — the repartition greedy's visit order,
    /// computed once instead of sorted on every call.
    comp_slot_ord: Vec<u32>,
    /// Forward arena offsets for optional slots, like `comp_slot_off`.
    opt_slot_off: Vec<u32>,
    /// Local object index per optional slot.
    opt_slot_lobj: Vec<u32>,
    /// Object size per optional slot.
    opt_slot_size: Vec<Bytes>,
    /// Access probability per optional slot.
    opt_slot_prob: Vec<f64>,
    /// Serving load of the optional slot when local:
    /// `freq · opt_req_factor · prob`, precomputed.
    opt_slot_load: Vec<f64>,
    /// Whether a standalone local fetch beats the repository pipe for the
    /// slot's object (repartitioning's optional rule), precomputed against
    /// this site's (possibly ancestor-constrained) `SiteParams`.
    opt_slot_wins: Vec<bool>,
    /// Local objects whose mark count touched zero since the last
    /// [`SiteWork::drop_orphans`] (plus markless allocs); entries may be
    /// stale (re-marked since) and are re-checked on drain.
    zero_marks: Vec<ObjectId>,
    /// Reusable scratch for [`SiteWork::dealloc`]'s ref walk (the flips
    /// need `&mut self` while the CSR slice borrows `&self`).
    scratch_refs: Vec<(u32, u32)>,
    /// Reusable scratch rows for [`SiteWork::repartition_page`].
    scratch_marks: Vec<bool>,
    scratch_opt: Vec<bool>,
    scratch_old_comp: Vec<bool>,
    scratch_old_opt: Vec<bool>,
}

impl<'a> SiteWork<'a> {
    /// Builds working state for `site` from an initial placement, adopting
    /// its marks. The store becomes exactly the locally-marked object set.
    /// Update-propagation load is not accounted (the paper's model).
    pub fn new(sys: &'a System, site: SiteId, placement: &Placement, cost: CostParams) -> Self {
        Self::with_update_accounting(sys, site, placement, cost, false)
    }

    /// Like [`SiteWork::new`], optionally charging each stored object's
    /// update rate against the site's processing capacity (the read/write
    /// extension).
    pub fn with_update_accounting(
        sys: &'a System,
        site: SiteId,
        placement: &Placement,
        cost: CostParams,
        count_updates: bool,
    ) -> Self {
        let params = SiteParams::of(sys.site(site));
        Self::with_params(sys, site, placement, cost, count_updates, params)
    }

    /// Like [`SiteWork::with_update_accounting`] but against explicit site
    /// estimates. The federated-tree planner passes the effective channel
    /// of the site's serving ancestor; every derived quantity (streams,
    /// optional costs, repartitioning) then prices the remote pipe over
    /// the constrained path. With `SiteParams::of(sys.site(site))` this is
    /// exactly the classic constructor.
    pub fn with_params(
        sys: &'a System,
        site: SiteId,
        placement: &Placement,
        cost: CostParams,
        count_updates: bool,
        params: SiteParams,
    ) -> Self {
        let pages: Vec<PageId> = sys.pages_of(site).to_vec();

        // Pass A — the site-local dense object index: every object some
        // local page references, ascending by id. Sort+dedup of the raw
        // reference list assigns exactly the ids a global-mask scan would,
        // without ever allocating anything sized by the global universe.
        let mut local_objects: Vec<ObjectId> = Vec::new();
        let mut n_comp_slots = 0usize;
        let mut n_opt_slots = 0usize;
        for &pid in &pages {
            let page = sys.page(pid);
            n_comp_slots += page.compulsory.len();
            n_opt_slots += page.optional.len();
            local_objects.extend_from_slice(&page.compulsory);
            local_objects.extend(page.optional.iter().map(|o| o.object));
        }
        local_objects.sort_unstable();
        local_objects.dedup();
        let n_local = local_objects.len();

        // Pass B — forward arenas (slot → local index, size, probability,
        // fetch pricing) and reverse-CSR counts.
        let mut comp_slot_off = Vec::with_capacity(pages.len() + 1);
        let mut opt_slot_off = Vec::with_capacity(pages.len() + 1);
        let mut comp_slot_lobj = Vec::with_capacity(n_comp_slots);
        let mut comp_slot_size = Vec::with_capacity(n_comp_slots);
        let mut opt_slot_lobj = Vec::with_capacity(n_opt_slots);
        let mut opt_slot_size = Vec::with_capacity(n_opt_slots);
        let mut opt_slot_prob = Vec::with_capacity(n_opt_slots);
        let mut opt_slot_load = Vec::with_capacity(n_opt_slots);
        let mut opt_slot_wins = Vec::with_capacity(n_opt_slots);
        let mut comp_off = vec![0u32; n_local + 1];
        let mut opt_off = vec![0u32; n_local + 1];
        comp_slot_off.push(0u32);
        opt_slot_off.push(0u32);
        for &pid in &pages {
            let page = sys.page(pid);
            let f = page.freq.get();
            for &k in &page.compulsory {
                let o = local_objects
                    .binary_search(&k)
                    .expect("reference missed by index build") as u32;
                comp_slot_lobj.push(o);
                comp_slot_size.push(sys.object_size(k));
                comp_off[o as usize + 1] += 1;
            }
            for r in &page.optional {
                let o = local_objects
                    .binary_search(&r.object)
                    .expect("reference missed by index build") as u32;
                let size = sys.object_size(r.object);
                opt_slot_lobj.push(o);
                opt_slot_size.push(size);
                opt_slot_prob.push(r.prob);
                opt_slot_load.push(f * page.opt_req_factor * r.prob);
                opt_slot_wins.push(params.local_fetch_wins(size));
                opt_off[o as usize + 1] += 1;
            }
            comp_slot_off.push(comp_slot_lobj.len() as u32);
            opt_slot_off.push(opt_slot_lobj.len() as u32);
        }
        for i in 1..=n_local {
            comp_off[i] += comp_off[i - 1];
            opt_off[i] += opt_off[i - 1];
        }

        // Reverse CSR fill through cursors; (page idx, slot) ascending
        // order reproduces the reference order the restoration algorithms
        // were tuned against.
        let mut comp_cur = comp_off.clone();
        let mut opt_cur = opt_off.clone();
        let mut comp_dat = vec![(0u32, 0u32); n_comp_slots];
        let mut opt_dat = vec![(0u32, 0u32); n_opt_slots];
        for idx in 0..pages.len() {
            let base = comp_slot_off[idx];
            for s in base..comp_slot_off[idx + 1] {
                let o = comp_slot_lobj[s as usize] as usize;
                comp_dat[comp_cur[o] as usize] = (idx as u32, s - base);
                comp_cur[o] += 1;
            }
            let obase = opt_slot_off[idx];
            for s in obase..opt_slot_off[idx + 1] {
                let o = opt_slot_lobj[s as usize] as usize;
                opt_dat[opt_cur[o] as usize] = (idx as u32, s - obase);
                opt_cur[o] += 1;
            }
        }

        // Per-page repartition visit order: (size desc, slot asc), the
        // exact comparator the old per-call sort used. Arena positions are
        // slot-ascending within a page, so position order is slot order.
        let mut comp_slot_ord: Vec<u32> = (0..n_comp_slots as u32).collect();
        for idx in 0..pages.len() {
            let range = comp_slot_off[idx] as usize..comp_slot_off[idx + 1] as usize;
            comp_slot_ord[range].sort_unstable_by(|&a, &b| {
                comp_slot_size[b as usize]
                    .cmp(&comp_slot_size[a as usize])
                    .then(a.cmp(&b))
            });
        }

        // Pass C — adopt the placement's marks into streams, load, store
        // bits and mark counts.
        let mut freq = Vec::with_capacity(pages.len());
        let mut streams = Vec::with_capacity(pages.len());
        let mut opt_cost = Vec::with_capacity(pages.len());
        let mut parts = Vec::with_capacity(pages.len());
        let mut store = DenseBits::zeros(n_local);
        let mut stored_bytes = 0u64;
        let mut html_bytes = 0u64;
        let mut load = 0.0;
        let mut mark_count = vec![0u32; n_local];

        for (idx, &pid) in pages.iter().enumerate() {
            let page = sys.page(pid);
            let part = placement.partition(pid).clone();
            let f = page.freq.get();
            html_bytes += page.html_size.get();
            let base = comp_slot_off[idx] as usize;
            let obase = opt_slot_off[idx] as usize;

            let mut s = Streams::all_local_base(page.html_size);
            for slot in 0..page.n_compulsory() {
                let o = comp_slot_lobj[base + slot] as usize;
                let size = comp_slot_size[base + slot];
                if part.local_compulsory[slot] {
                    s.local_bytes += size.get();
                    if store.set(o) {
                        stored_bytes += size.get();
                    }
                    mark_count[o] += 1;
                } else {
                    s.remote_bytes += size.get();
                    s.n_remote += 1;
                }
            }
            let oc = OptionalCost::build(
                page.opt_req_factor,
                &params,
                (0..page.optional.len()).map(|slot| {
                    (
                        opt_slot_prob[obase + slot],
                        opt_slot_size[obase + slot],
                        part.local_optional[slot],
                    )
                }),
            );
            for slot in 0..page.optional.len() {
                let o = opt_slot_lobj[obase + slot] as usize;
                if part.local_optional[slot] {
                    if store.set(o) {
                        stored_bytes += opt_slot_size[obase + slot].get();
                    }
                    mark_count[o] += 1;
                }
            }

            let opt_local: f64 = (0..page.optional.len())
                .filter(|&slot| part.local_optional[slot])
                .map(|slot| opt_slot_prob[obase + slot])
                .sum();
            load += f * (1.0 + part.n_local_compulsory() as f64 + page.opt_req_factor * opt_local);

            freq.push(f);
            streams.push(s);
            opt_cost.push(oc);
            parts.push(part);
        }

        let update_load = if count_updates {
            store
                .iter_ones()
                .map(|o| sys.object(local_objects[o]).update_rate)
                .sum()
        } else {
            0.0
        };

        SiteWork {
            sys,
            site,
            params,
            alpha1: cost.alpha1,
            alpha2: cost.alpha2,
            pages,
            freq,
            streams,
            opt_cost,
            parts,
            local_objects,
            store,
            foreign: Vec::new(),
            stored_bytes,
            html_bytes,
            load,
            count_updates,
            update_load,
            mark_count,
            comp_off,
            comp_dat,
            opt_off,
            opt_dat,
            comp_slot_off,
            comp_slot_lobj,
            comp_slot_size,
            comp_slot_ord,
            opt_slot_off,
            opt_slot_lobj,
            opt_slot_size,
            opt_slot_prob,
            opt_slot_load,
            opt_slot_wins,
            zero_marks: Vec::new(),
            scratch_refs: Vec::new(),
            scratch_marks: Vec::new(),
            scratch_opt: Vec::new(),
            scratch_old_comp: Vec::new(),
            scratch_old_opt: Vec::new(),
        }
    }

    /// The site-local index of `object`, if any local page references it.
    #[inline]
    fn local_of(&self, object: ObjectId) -> Option<usize> {
        self.local_objects.binary_search(&object).ok()
    }

    /// Compulsory `(page_idx, slot)` references of local object `o`.
    #[inline]
    fn comp_refs_local(&self, o: usize) -> &[(u32, u32)] {
        &self.comp_dat[self.comp_off[o] as usize..self.comp_off[o + 1] as usize]
    }

    /// Optional `(page_idx, slot)` references of local object `o`.
    #[inline]
    fn opt_refs_local(&self, o: usize) -> &[(u32, u32)] {
        &self.opt_dat[self.opt_off[o] as usize..self.opt_off[o + 1] as usize]
    }

    /// Removes `object` from the store (local bit or foreign list),
    /// returning whether it was present.
    fn store_remove(&mut self, object: ObjectId) -> bool {
        match self.local_of(object) {
            Some(o) => self.store.clear(o),
            None => match self.foreign.binary_search(&object) {
                Ok(pos) => {
                    self.foreign.remove(pos);
                    true
                }
                Err(_) => false,
            },
        }
    }

    // --- read access -----------------------------------------------------

    /// The site this state plans for.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The underlying system.
    pub fn system(&self) -> &'a System {
        self.sys
    }

    /// The per-site estimates.
    pub fn params(&self) -> &SiteParams {
        &self.params
    }

    /// Local pages in index order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of local pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// The working partition row of local page `idx`.
    pub fn partition(&self, idx: usize) -> &PagePartition {
        &self.parts[idx]
    }

    /// The stream totals of local page `idx`.
    pub fn streams(&self, idx: usize) -> &Streams {
        &self.streams[idx]
    }

    /// The `α1` weight in use.
    pub fn alpha1(&self) -> f64 {
        self.alpha1
    }

    /// The `α2` weight in use.
    pub fn alpha2(&self) -> f64 {
        self.alpha2
    }

    /// The optional-cost accumulator of local page `idx`.
    pub fn optional_cost(&self, idx: usize) -> &OptionalCost {
        &self.opt_cost[idx]
    }

    /// Eq. 10 LHS: HTML plus stored-object bytes.
    pub fn storage_used(&self) -> u64 {
        self.html_bytes + self.stored_bytes
    }

    /// `Size(S_i)` from the system.
    pub fn storage_capacity(&self) -> u64 {
        self.sys.site(self.site).storage.get()
    }

    /// Free storage, `Space(S_i)` in the status message.
    pub fn space_left(&self) -> u64 {
        self.storage_capacity().saturating_sub(self.storage_used())
    }

    /// The site's offered HTTP load: Eq. 8 LHS, plus the store's refresh
    /// load when update accounting is on.
    pub fn load(&self) -> f64 {
        self.load + self.update_load
    }

    /// The refresh load of the current store (zero unless update
    /// accounting is enabled).
    pub fn update_load(&self) -> f64 {
        self.update_load
    }

    /// `u_k` as this state accounts it: the object's update rate when
    /// accounting is on, zero otherwise.
    pub fn update_rate_of(&self, object: ObjectId) -> f64 {
        if self.count_updates {
            self.sys.object(object).update_rate
        } else {
            0.0
        }
    }

    /// `C(S_i)`.
    pub fn capacity(&self) -> f64 {
        self.sys.site(self.site).capacity.get()
    }

    /// Processing headroom, `P(S_i)` in the status message. Charged
    /// against the full Eq. 8 LHS — including the store's refresh load
    /// when update accounting is on, so off-loading never advertises
    /// headroom the update traffic already consumes.
    pub fn headroom(&self) -> f64 {
        (self.capacity() - self.load()).max(0.0)
    }

    /// The repository load this site's pages generate, `P(S_i, R)` — plus
    /// the update pushes this site's replicas demand from the repository,
    /// when update accounting is on.
    pub fn repo_load(&self) -> f64 {
        let mut total = self.update_load;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            let part = &self.parts[idx];
            let remote_comp = (page.n_compulsory() - part.n_local_compulsory()) as f64;
            let obase = self.opt_slot_off[idx] as usize;
            let opt_remote: f64 = (0..page.optional.len())
                .filter(|&slot| !part.local_optional[slot])
                .map(|slot| self.opt_slot_prob[obase + slot])
                .sum();
            total += self.freq[idx] * (remote_comp + page.opt_req_factor * opt_remote);
        }
        total
    }

    /// Whether `object` is in this site's store.
    pub fn is_stored(&self, object: ObjectId) -> bool {
        match self.local_of(object) {
            Some(o) => self.store.get(o),
            None => !self.foreign.is_empty() && self.foreign.binary_search(&object).is_ok(),
        }
    }

    /// Number of local marks currently on `object`.
    pub fn marks_on(&self, object: ObjectId) -> u32 {
        self.local_of(object).map_or(0, |o| self.mark_count[o])
    }

    /// The stored objects in ascending id order.
    pub fn stored_objects(&self) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .store
            .iter_ones()
            .map(|o| self.local_objects[o])
            .collect();
        if !self.foreign.is_empty() {
            out.extend_from_slice(&self.foreign);
            out.sort_unstable();
        }
        out
    }

    /// The objective contribution of local page `idx`:
    /// `f (α1 · response + α2 · optional)`.
    pub fn page_d(&self, idx: usize) -> f64 {
        self.freq[idx]
            * (self.alpha1 * self.streams[idx].response(&self.params)
                + self.alpha2 * self.opt_cost[idx].time())
    }

    /// Total objective contribution of this site's pages.
    pub fn total_d(&self) -> f64 {
        (0..self.pages.len()).map(|i| self.page_d(i)).sum()
    }

    /// Compulsory references to `object` at this site.
    pub fn compulsory_refs(&self, object: ObjectId) -> &[(u32, u32)] {
        match self.local_of(object) {
            Some(o) => self.comp_refs_local(o),
            None => &[],
        }
    }

    /// Optional references to `object` at this site.
    pub fn optional_refs(&self, object: ObjectId) -> &[(u32, u32)] {
        match self.local_of(object) {
            Some(o) => self.opt_refs_local(o),
            None => &[],
        }
    }

    // --- mutation ---------------------------------------------------------

    /// Flips compulsory slot `(idx, slot)` to `local`, maintaining streams,
    /// load and mark counts. No-op if already in that state.
    ///
    /// # Panics
    /// Panics if marking local while the object is not stored.
    pub fn set_compulsory(&mut self, idx: usize, slot: usize, local: bool) {
        if self.parts[idx].local_compulsory[slot] == local {
            return;
        }
        let pos = self.comp_slot_off[idx] as usize + slot;
        let o = self.comp_slot_lobj[pos] as usize;
        let size = self.comp_slot_size[pos];
        if local {
            assert!(
                self.store.get(o),
                "marking {} local while not stored at {}",
                self.local_objects[o],
                self.site
            );
            self.streams[idx].move_to_local(size);
            self.load += self.freq[idx];
            self.mark_count[o] += 1;
        } else {
            self.streams[idx].move_to_remote(size);
            self.load -= self.freq[idx];
            assert!(self.mark_count[o] > 0, "unmarking an object with no marks");
            self.mark_count[o] -= 1;
            if self.mark_count[o] == 0 {
                self.zero_marks.push(self.local_objects[o]);
            }
        }
        self.parts[idx].local_compulsory[slot] = local;
    }

    /// Flips optional slot `(idx, slot)` to `local`. Same contract as
    /// [`SiteWork::set_compulsory`].
    pub fn set_optional(&mut self, idx: usize, slot: usize, local: bool) {
        if self.parts[idx].local_optional[slot] == local {
            return;
        }
        let pos = self.opt_slot_off[idx] as usize + slot;
        let o = self.opt_slot_lobj[pos] as usize;
        let size = self.opt_slot_size[pos];
        let prob = self.opt_slot_prob[pos];
        let workload = self.opt_slot_load[pos];
        if local {
            assert!(
                self.store.get(o),
                "marking optional {} local while not stored",
                self.local_objects[o]
            );
            self.load += workload;
            self.mark_count[o] += 1;
        } else {
            self.load -= workload;
            assert!(
                self.mark_count[o] > 0,
                "unmarking an optional with no marks"
            );
            self.mark_count[o] -= 1;
            if self.mark_count[o] == 0 {
                self.zero_marks.push(self.local_objects[o]);
            }
        }
        self.opt_cost[idx].flip(prob, size, local, &self.params);
        self.parts[idx].local_optional[slot] = local;
    }

    /// Adds `object` to the store (no marks yet). Returns false if already
    /// stored. Objects no local page references are accepted (they land in
    /// a side list) but stay orphan candidates until a mark arrives.
    pub fn alloc(&mut self, object: ObjectId) -> bool {
        let inserted = match self.local_of(object) {
            Some(o) => self.store.set(o),
            None => match self.foreign.binary_search(&object) {
                Ok(_) => false,
                Err(pos) => {
                    self.foreign.insert(pos, object);
                    true
                }
            },
        };
        if inserted {
            self.stored_bytes += self.sys.object_size(object).get();
            if self.count_updates {
                self.update_load += self.sys.object(object).update_rate;
            }
            // Stored with zero marks until a caller flips one local — an
            // orphan candidate if none ever lands.
            self.zero_marks.push(object);
        }
        inserted
    }

    /// The objective increase if `object` were deallocated right now
    /// (every local mark on it flipped remote). Non-mutating; exact.
    pub fn delta_d_dealloc(&self, object: ObjectId) -> f64 {
        let Some(o) = self.local_of(object) else {
            return 0.0;
        };
        let size = self.sys.object_size(object);
        let mut delta = 0.0;
        for &(idx, slot) in self.comp_refs_local(o) {
            let (idx, slot) = (idx as usize, slot as usize);
            if self.parts[idx].local_compulsory[slot] {
                let before = self.streams[idx].response(&self.params);
                let after = self.streams[idx].response_if_remote(size, &self.params);
                delta += self.freq[idx] * self.alpha1 * (after - before);
            }
        }
        for &(idx, slot) in self.opt_refs_local(o) {
            let (idx, slot) = (idx as usize, slot as usize);
            if self.parts[idx].local_optional[slot] {
                let prob = self.opt_slot_prob[self.opt_slot_off[idx] as usize + slot];
                delta += self.freq[idx]
                    * self.alpha2
                    * self.opt_cost[idx].delta_if_flipped(prob, size, false, &self.params);
            }
        }
        delta
    }

    /// Deallocates `object`: flips all its local marks remote and removes
    /// it from the store. Returns the indices of pages whose *compulsory*
    /// partition changed (candidates for re-partitioning).
    pub fn dealloc(&mut self, object: ObjectId) -> Vec<usize> {
        let mut affected = Vec::new();
        self.dealloc_into(object, &mut affected);
        affected
    }

    /// [`SiteWork::dealloc`] into a caller-owned buffer (cleared first), so
    /// the restoration loop reuses one allocation across thousands of
    /// deallocations.
    pub fn dealloc_into(&mut self, object: ObjectId, affected: &mut Vec<usize>) {
        affected.clear();
        if let Some(o) = self.local_of(object) {
            // The flips below need `&mut self` while the CSR rows borrow
            // `&self`, so stage the rows through a reusable scratch buffer.
            let mut refs = std::mem::take(&mut self.scratch_refs);
            refs.clear();
            refs.extend_from_slice(self.comp_refs_local(o));
            for &(idx, slot) in &refs {
                let (idx, slot) = (idx as usize, slot as usize);
                if self.parts[idx].local_compulsory[slot] {
                    self.set_compulsory(idx, slot, false);
                    affected.push(idx);
                }
            }
            refs.clear();
            refs.extend_from_slice(self.opt_refs_local(o));
            for &(idx, slot) in &refs {
                let (idx, slot) = (idx as usize, slot as usize);
                if self.parts[idx].local_optional[slot] {
                    self.set_optional(idx, slot, false);
                }
            }
            self.scratch_refs = refs;
            if self.store.clear(o) {
                self.stored_bytes -= self.sys.object_size(object).get();
                if self.count_updates {
                    self.update_load -= self.sys.object(object).update_rate;
                }
            }
        } else if self.store_remove(object) {
            self.stored_bytes -= self.sys.object_size(object).get();
            if self.count_updates {
                self.update_load -= self.sys.object(object).update_rate;
            }
        }
        debug_assert_eq!(self.marks_on(object), 0);
    }

    /// Removes stored objects that no longer carry any local mark,
    /// returning the bytes freed. Zero objective cost by construction.
    pub fn drop_orphans(&mut self) -> u64 {
        // Every orphan went through a marks→0 transition (or a markless
        // `alloc`), so the worklist covers them all; entries re-marked
        // since are filtered by the re-check. Ascending-id drain keeps the
        // update-load subtraction order of the old full-store scan.
        let mut worklist = std::mem::take(&mut self.zero_marks);
        worklist.sort_unstable();
        worklist.dedup();
        let mut freed = 0;
        for k in worklist.drain(..) {
            let removed = match self.local_of(k) {
                Some(o) => self.mark_count[o] == 0 && self.store.clear(o),
                None => self.store_remove(k),
            };
            if !removed {
                continue;
            }
            let sz = self.sys.object_size(k).get();
            self.stored_bytes -= sz;
            freed += sz;
            if self.count_updates {
                self.update_load -= self.sys.object(k).update_rate;
            }
        }
        self.zero_marks = worklist;
        freed
    }

    /// Re-runs the greedy partition of local page `idx` against the current
    /// store: objects not stored are forced remote, stored objects are
    /// re-balanced in decreasing size order (the paper's post-deallocation
    /// adjustment). The new assignment is applied only if it improves the
    /// page's objective contribution. Returns whether anything changed.
    pub fn repartition_page(&mut self, idx: usize) -> bool {
        let base = self.comp_slot_off[idx] as usize;
        let cend = self.comp_slot_off[idx + 1] as usize;
        let obase = self.opt_slot_off[idx] as usize;
        let oend = self.opt_slot_off[idx + 1] as usize;

        let mut new_marks = std::mem::take(&mut self.scratch_marks);
        let mut new_opt = std::mem::take(&mut self.scratch_opt);
        new_marks.clear();
        new_marks.resize(cend - base, false);
        new_opt.clear();
        {
            let p = &self.params;

            // Fixed-remote payload: every unstored compulsory slot.
            let mut fixed_remote_bytes = 0u64;
            for s in base..cend {
                if !self.store.get(self.comp_slot_lobj[s] as usize) {
                    fixed_remote_bytes += self.comp_slot_size[s].get();
                }
            }

            // Verbatim greedy over the precomputed (size desc, slot asc)
            // order, skipping unstored slots — the same candidate sequence
            // the per-call sort used to produce — with the fixed-remote
            // payload pre-charged.
            let html = self.sys.page(self.pages[idx]).html_size;
            let mut local = p.local_ovhd + html.get() as f64 / p.local_rate;
            let mut remote = p.repo_ovhd + fixed_remote_bytes as f64 / p.repo_rate;
            for &s in &self.comp_slot_ord[base..cend] {
                let s = s as usize;
                if !self.store.get(self.comp_slot_lobj[s] as usize) {
                    continue;
                }
                let size = self.comp_slot_size[s].get() as f64;
                let local_if = local + size / p.local_rate;
                let remote_if = remote + size / p.repo_rate;
                if remote_if < local_if {
                    remote = remote_if;
                } else {
                    local = local_if;
                    new_marks[s - base] = true;
                }
            }

            // Optional slots: local iff stored and the standalone fetch
            // wins (precomputed per slot).
            new_opt.extend(
                (obase..oend).map(|s| {
                    self.store.get(self.opt_slot_lobj[s] as usize) && self.opt_slot_wins[s]
                }),
            );
        }

        // Apply tentatively through the bookkeeping and keep iff better.
        let before = self.page_d(idx);
        let mut old_comp = std::mem::take(&mut self.scratch_old_comp);
        let mut old_opt = std::mem::take(&mut self.scratch_old_opt);
        old_comp.clear();
        old_comp.extend_from_slice(&self.parts[idx].local_compulsory);
        old_opt.clear();
        old_opt.extend_from_slice(&self.parts[idx].local_optional);
        for (slot, &mark) in new_marks.iter().enumerate() {
            self.set_compulsory(idx, slot, mark);
        }
        for (slot, &mark) in new_opt.iter().enumerate() {
            self.set_optional(idx, slot, mark);
        }
        let after = self.page_d(idx);
        let changed = if after < before - 1e-12 {
            true
        } else {
            for (slot, &mark) in old_comp.iter().enumerate() {
                self.set_compulsory(idx, slot, mark);
            }
            for (slot, &mark) in old_opt.iter().enumerate() {
                self.set_optional(idx, slot, mark);
            }
            false
        };
        self.scratch_marks = new_marks;
        self.scratch_opt = new_opt;
        self.scratch_old_comp = old_comp;
        self.scratch_old_opt = old_opt;
        changed
    }

    /// Extracts the final partitions as `(page, partition)` pairs.
    pub fn into_partitions(self) -> Vec<(PageId, PagePartition)> {
        self.pages.into_iter().zip(self.parts).collect()
    }

    /// Expensive from-scratch recomputation of every derived quantity,
    /// panicking on divergence. Delegates to [`crate::audit::audit_site`],
    /// which also covers mark counts and exact storage accounting.
    pub fn validate_consistency(&self) {
        crate::audit::assert_consistent(self, crate::audit::AuditStage::Validate);
    }

    /// Test/demo hook: corrupts the tracked serving load by `delta`
    /// without touching the partitions, so the auditor has a divergence
    /// to find. Never called by the planning pipeline.
    #[doc(hidden)]
    pub fn debug_corrupt_load(&mut self, delta: f64) {
        self.load += delta;
    }

    /// Test/demo hook: corrupts the tracked stored-byte count by `delta`
    /// bytes. Never called by the planning pipeline.
    #[doc(hidden)]
    pub fn debug_corrupt_stored_bytes(&mut self, delta: u64) {
        self.stored_bytes += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_all;
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn make_work(seed: u64) -> (System, usize) {
        let sys = generate_system(&WorkloadParams::small(), seed).unwrap();
        (sys, 0)
    }

    fn work_for<'a>(sys: &'a System, site_idx: usize) -> SiteWork<'a> {
        let placement = partition_all(sys);
        SiteWork::new(
            sys,
            SiteId::new(site_idx as u32),
            &placement,
            CostParams::default(),
        )
    }

    #[test]
    fn new_state_is_consistent() {
        let (sys, i) = make_work(1);
        let w = work_for(&sys, i);
        w.validate_consistency();
        assert!(w.n_pages() > 0);
        assert!(w.load() > 0.0);
        assert!(w.storage_used() > 0);
    }

    #[test]
    fn load_matches_placement_view() {
        let (sys, _) = make_work(2);
        let placement = partition_all(&sys);
        for site in sys.sites().ids() {
            let w = SiteWork::new(&sys, site, &placement, CostParams::default());
            let model_load = placement.site_load(&sys, site).get();
            assert!(
                (w.load() - model_load).abs() < 1e-9,
                "site {site}: {} vs {}",
                w.load(),
                model_load
            );
            let model_repo = placement.repo_load_from(&sys, site).get();
            assert!((w.repo_load() - model_repo).abs() < 1e-9);
        }
    }

    #[test]
    fn storage_matches_placement_view() {
        let (sys, _) = make_work(3);
        let placement = partition_all(&sys);
        for site in sys.sites().ids() {
            let w = SiteWork::new(&sys, site, &placement, CostParams::default());
            let model = placement.storage_used(&sys, site).get();
            assert_eq!(w.storage_used(), model, "site {site}");
        }
    }

    #[test]
    fn total_d_matches_cost_model() {
        let (sys, _) = make_work(4);
        let placement = partition_all(&sys);
        let cm = mmrepl_model::CostModel::with_defaults(&sys);
        let total: f64 = sys
            .sites()
            .ids()
            .map(|s| SiteWork::new(&sys, s, &placement, CostParams::default()).total_d())
            .sum();
        assert!(
            (total - cm.objective(&placement)).abs() / total < 1e-9,
            "{total} vs {}",
            cm.objective(&placement)
        );
    }

    #[test]
    fn set_compulsory_roundtrip_restores_state() {
        let (sys, i) = make_work(5);
        let mut w = work_for(&sys, i);
        let before_load = w.load();
        let before_d = w.total_d();
        // Find a local compulsory mark and flip it away and back.
        let (idx, slot) = (0..w.n_pages())
            .flat_map(|idx| (0..w.partition(idx).local_compulsory.len()).map(move |s| (idx, s)))
            .find(|&(idx, s)| w.partition(idx).local_compulsory[s])
            .expect("no local marks");
        w.set_compulsory(idx, slot, false);
        assert!(w.load() < before_load);
        w.set_compulsory(idx, slot, true);
        assert!((w.load() - before_load).abs() < 1e-9);
        assert!((w.total_d() - before_d).abs() < 1e-9);
        w.validate_consistency();
    }

    #[test]
    fn dealloc_removes_all_marks_and_storage() {
        let (sys, i) = make_work(6);
        let mut w = work_for(&sys, i);
        let object = w
            .stored_objects()
            .into_iter()
            .max_by_key(|&k| w.marks_on(k))
            .expect("store is empty");
        let marks = w.marks_on(object);
        assert!(marks > 0);
        let used_before = w.storage_used();
        let d_before = w.total_d();
        let predicted = w.delta_d_dealloc(object);
        let affected = w.dealloc(object);
        assert!(!w.is_stored(object));
        assert_eq!(w.marks_on(object), 0);
        assert_eq!(
            w.storage_used(),
            used_before - sys.object_size(object).get()
        );
        let actual = w.total_d() - d_before;
        assert!(
            (actual - predicted).abs() < 1e-6,
            "predicted {predicted}, actual {actual}"
        );
        assert!(actual >= -1e-9, "dealloc should not improve D");
        // affected pages are exactly those that had compulsory marks
        assert!(affected.len() as u32 <= marks);
        w.validate_consistency();
    }

    #[test]
    fn repartition_never_worsens_page() {
        let (sys, i) = make_work(7);
        let mut w = work_for(&sys, i);
        // Knock out a chunk of the store to make repartitioning meaningful.
        let victims: Vec<ObjectId> = w.stored_objects().into_iter().take(20).collect();
        for v in victims {
            w.dealloc(v);
        }
        for idx in 0..w.n_pages() {
            let before = w.page_d(idx);
            w.repartition_page(idx);
            let after = w.page_d(idx);
            assert!(after <= before + 1e-9, "page {idx}: {before} -> {after}");
        }
        w.validate_consistency();
    }

    #[test]
    fn drop_orphans_frees_unmarked_objects() {
        let (sys, i) = make_work(8);
        let mut w = work_for(&sys, i);
        // Manufacture an orphan: alloc an object that is nowhere marked.
        let unmarked = sys
            .objects()
            .ids()
            .find(|&k| !w.is_stored(k))
            .expect("all objects stored?");
        w.alloc(unmarked);
        let used = w.storage_used();
        let freed = w.drop_orphans();
        assert!(freed >= sys.object_size(unmarked).get());
        assert_eq!(w.storage_used(), used - freed);
        assert!(!w.is_stored(unmarked));
        w.validate_consistency();
    }

    #[test]
    fn alloc_of_unreferenced_object_roundtrips() {
        let (sys, i) = make_work(12);
        let mut w = work_for(&sys, i);
        // An object no local page references exercises the foreign path.
        let foreign = sys
            .objects()
            .ids()
            .find(|&k| w.compulsory_refs(k).is_empty() && w.optional_refs(k).is_empty())
            .expect("every object referenced by site 0?");
        assert!(!w.is_stored(foreign));
        assert!(w.alloc(foreign));
        assert!(!w.alloc(foreign), "double alloc must report already-stored");
        assert!(w.is_stored(foreign));
        assert!(w.stored_objects().contains(&foreign));
        assert_eq!(w.marks_on(foreign), 0);
        // dealloc must take the foreign path and restore the byte count.
        let used = w.storage_used();
        w.dealloc(foreign);
        assert!(!w.is_stored(foreign));
        assert_eq!(w.storage_used(), used - sys.object_size(foreign).get());
        w.validate_consistency();
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn marking_unstored_object_local_panics() {
        let (sys, i) = make_work(9);
        let mut w = work_for(&sys, i);
        // Find a remote compulsory mark whose object is not stored.
        let target = (0..w.n_pages()).find_map(|idx| {
            let pid = w.pages()[idx];
            let page = sys.page(pid);
            (0..page.n_compulsory()).find_map(|s| {
                (!w.partition(idx).local_compulsory[s] && !w.is_stored(page.compulsory[s]))
                    .then_some((idx, s))
            })
        });
        // If every remote object happens to be stored, force the situation.
        let (idx, slot) = target.unwrap_or_else(|| {
            let idx = 0;
            let pid = w.pages()[idx];
            let k = sys.page(pid).compulsory[0];
            let mut w2_slot = 0;
            for (s, &kk) in sys.page(pid).compulsory.iter().enumerate() {
                if kk == k {
                    w2_slot = s;
                }
            }
            w.dealloc(k);
            (idx, w2_slot)
        });
        w.set_compulsory(idx, slot, true);
    }

    #[test]
    fn headroom_charges_update_load() {
        let (sys, i) = make_work(11);
        let sys = sys.map_update_rates(|_, _| 0.5);
        let placement = partition_all(&sys);
        let site = SiteId::new(i as u32);
        let w =
            SiteWork::with_update_accounting(&sys, site, &placement, CostParams::default(), true);
        assert!(w.update_load() > 0.0);
        // Headroom must be measured against the full Eq. 8 LHS (serving
        // plus refresh load), not just the serving term — otherwise
        // off-loading hands out capacity the update traffic already uses.
        let expected = (w.capacity() - w.load()).max(0.0);
        assert!(
            (w.headroom() - expected).abs() < 1e-9,
            "headroom {} vs capacity {} - load {}",
            w.headroom(),
            w.capacity(),
            w.load()
        );
    }

    #[test]
    fn total_f64_orders_properly() {
        let mut keys = [TotalF64(3.0), TotalF64(-1.0), TotalF64(0.5)];
        keys.sort();
        assert_eq!(keys, [TotalF64(-1.0), TotalF64(0.5), TotalF64(3.0)]);
        assert!(TotalF64(f64::NEG_INFINITY) < TotalF64(0.0));
    }

    #[test]
    fn headroom_and_space_saturate() {
        let (sys, i) = make_work(10);
        let w = work_for(&sys, i);
        // Storage is at 100% demand, so space_left is >= 0 by construction.
        assert!(w.space_left() <= w.storage_capacity());
        assert!(w.headroom() >= 0.0);
    }
}
