//! Per-site mutable working state for the restoration algorithms.
//!
//! All three constraint-restoration stages repeatedly flip individual
//! `X`/`X'` marks and need O(1) answers to "what is the site's load now",
//! "how many bytes are stored", "what does the objective lose if this
//! object goes". [`SiteWork`] owns one site's slice of the placement plus
//! every derived quantity, updates them incrementally on each flip, and can
//! cross-check itself against a from-scratch recomputation (used heavily in
//! property tests).
//!
//! Invariant maintained throughout: **a mark can be local only if its
//! object is in the site's store**, and the store is exactly the set of
//! objects with at least one local mark (plus objects explicitly allocated
//! during off-loading that are about to gain one).

use crate::streams::{OptionalCost, SiteParams, Streams};
use mmrepl_model::{
    CostParams, ObjectId, PageId, PagePartition, Placement, SiteId, StoredSet, System,
};

/// Sentinel in the global→local object index for "not referenced here".
const NOT_LOCAL: u32 = u32::MAX;

/// A totally ordered `f64` key for greedy heaps (orders by
/// `f64::total_cmp`; the algorithms never produce NaN, but the type stays
/// total anyway).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Which half of a page's reference list a mark lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SlotKind {
    /// A compulsory reference (`U` / `X`).
    Compulsory,
    /// An optional reference (`U'` / `X'`).
    Optional,
}

/// One site's mutable planning state.
pub struct SiteWork<'a> {
    sys: &'a System,
    site: SiteId,
    params: SiteParams,
    alpha1: f64,
    alpha2: f64,
    /// Local pages, in id order; all per-page vectors index parallel to it.
    pages: Vec<PageId>,
    freq: Vec<f64>,
    streams: Vec<Streams>,
    opt_cost: Vec<OptionalCost>,
    parts: Vec<PagePartition>,
    store: StoredSet,
    stored_bytes: u64,
    html_bytes: u64,
    load: f64,
    /// Whether update-propagation load is accounted (read/write
    /// extension; the paper's read-only model leaves this off).
    count_updates: bool,
    /// Refresh load of the current store: `Σ_{k stored} u_k` (zero when
    /// `count_updates` is off).
    update_load: f64,
    /// Global object id → local index (`NOT_LOCAL` = unreferenced here).
    /// Local indices run over the objects this site's pages reference, in
    /// ascending id order; all dense per-object arrays below share them.
    obj_local: Vec<u32>,
    /// Local-mark count per local object (orphan detection).
    mark_count: Vec<u32>,
    /// CSR reverse index: compulsory `(page_idx, slot)` references of local
    /// object `o` live at `comp_dat[comp_off[o] .. comp_off[o + 1]]`, in
    /// (page idx, slot) ascending order.
    comp_off: Vec<u32>,
    comp_dat: Vec<(u32, u32)>,
    /// CSR reverse index for optional references, same layout.
    opt_off: Vec<u32>,
    opt_dat: Vec<(u32, u32)>,
    /// Objects whose mark count touched zero since the last
    /// [`SiteWork::drop_orphans`]; entries may be stale (re-marked since)
    /// and are re-checked on drain.
    zero_marks: Vec<ObjectId>,
    /// Reusable scratch for [`SiteWork::dealloc`]'s ref walk (the flips
    /// need `&mut self` while the CSR slice borrows `&self`).
    scratch_refs: Vec<(u32, u32)>,
}

impl<'a> SiteWork<'a> {
    /// Builds working state for `site` from an initial placement, adopting
    /// its marks. The store becomes exactly the locally-marked object set.
    /// Update-propagation load is not accounted (the paper's model).
    pub fn new(sys: &'a System, site: SiteId, placement: &Placement, cost: CostParams) -> Self {
        Self::with_update_accounting(sys, site, placement, cost, false)
    }

    /// Like [`SiteWork::new`], optionally charging each stored object's
    /// update rate against the site's processing capacity (the read/write
    /// extension).
    pub fn with_update_accounting(
        sys: &'a System,
        site: SiteId,
        placement: &Placement,
        cost: CostParams,
        count_updates: bool,
    ) -> Self {
        let params = SiteParams::of(sys.site(site));
        Self::with_params(sys, site, placement, cost, count_updates, params)
    }

    /// Like [`SiteWork::with_update_accounting`] but against explicit site
    /// estimates. The federated-tree planner passes the effective channel
    /// of the site's serving ancestor; every derived quantity (streams,
    /// optional costs, repartitioning) then prices the remote pipe over
    /// the constrained path. With `SiteParams::of(sys.site(site))` this is
    /// exactly the classic constructor.
    pub fn with_params(
        sys: &'a System,
        site: SiteId,
        placement: &Placement,
        cost: CostParams,
        count_updates: bool,
        params: SiteParams,
    ) -> Self {
        let pages: Vec<PageId> = sys.pages_of(site).to_vec();

        // Build the site-local dense object index: every object some local
        // page references, in ascending id order. A bitmask scan assigns
        // the indices without sorting the (much longer) reference list.
        let mut mask = vec![0u64; sys.n_objects().div_ceil(64)];
        for &pid in &pages {
            let page = sys.page(pid);
            for &k in &page.compulsory {
                mask[k.index() >> 6] |= 1 << (k.index() & 63);
            }
            for o in &page.optional {
                let i = o.object.index();
                mask[i >> 6] |= 1 << (i & 63);
            }
        }
        let mut obj_local = vec![NOT_LOCAL; sys.n_objects()];
        let mut n_local = 0u32;
        for (word, &bits) in mask.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                obj_local[(word << 6) + bits.trailing_zeros() as usize] = n_local;
                n_local += 1;
                bits &= bits - 1;
            }
        }
        let n_local = n_local as usize;

        // CSR reverse indices: count refs per object, prefix-sum into
        // offsets, then fill through a cursor copy. Filling in page-idx,
        // slot order reproduces the reference order the restoration
        // algorithms were tuned against.
        let mut comp_off = vec![0u32; n_local + 1];
        let mut opt_off = vec![0u32; n_local + 1];
        for &pid in &pages {
            let page = sys.page(pid);
            for &k in &page.compulsory {
                comp_off[obj_local[k.index()] as usize + 1] += 1;
            }
            for o in &page.optional {
                opt_off[obj_local[o.object.index()] as usize + 1] += 1;
            }
        }
        for i in 1..comp_off.len() {
            comp_off[i] += comp_off[i - 1];
            opt_off[i] += opt_off[i - 1];
        }
        let mut comp_cur = comp_off.clone();
        let mut opt_cur = opt_off.clone();
        let mut comp_dat = vec![(0u32, 0u32); *comp_off.last().unwrap() as usize];
        let mut opt_dat = vec![(0u32, 0u32); *opt_off.last().unwrap() as usize];

        let mut freq = Vec::with_capacity(pages.len());
        let mut streams = Vec::with_capacity(pages.len());
        let mut opt_cost = Vec::with_capacity(pages.len());
        let mut parts = Vec::with_capacity(pages.len());
        let mut store = StoredSet::empty(sys.n_objects());
        let mut stored_bytes = 0u64;
        let mut html_bytes = 0u64;
        let mut load = 0.0;
        let mut mark_count = vec![0u32; n_local];

        for (idx, &pid) in pages.iter().enumerate() {
            let page = sys.page(pid);
            let part = placement.partition(pid).clone();
            let f = page.freq.get();
            html_bytes += page.html_size.get();

            let mut s = Streams::all_local_base(page.html_size);
            for (slot, &k) in page.compulsory.iter().enumerate() {
                let o = obj_local[k.index()] as usize;
                comp_dat[comp_cur[o] as usize] = (idx as u32, slot as u32);
                comp_cur[o] += 1;
                let size = sys.object_size(k);
                if part.local_compulsory[slot] {
                    s.local_bytes += size.get();
                    if store.insert(k) {
                        stored_bytes += size.get();
                    }
                    mark_count[o] += 1;
                } else {
                    s.remote_bytes += size.get();
                    s.n_remote += 1;
                }
            }
            let oc = OptionalCost::build(
                page.opt_req_factor,
                &params,
                page.optional.iter().enumerate().map(|(slot, o)| {
                    (o.prob, sys.object_size(o.object), part.local_optional[slot])
                }),
            );
            for (slot, o) in page.optional.iter().enumerate() {
                let lo = obj_local[o.object.index()] as usize;
                opt_dat[opt_cur[lo] as usize] = (idx as u32, slot as u32);
                opt_cur[lo] += 1;
                if part.local_optional[slot] {
                    let size = sys.object_size(o.object);
                    if store.insert(o.object) {
                        stored_bytes += size.get();
                    }
                    mark_count[lo] += 1;
                }
            }

            let opt_local: f64 = page
                .optional
                .iter()
                .zip(&part.local_optional)
                .filter(|(_, &l)| l)
                .map(|(o, _)| o.prob)
                .sum();
            load += f * (1.0 + part.n_local_compulsory() as f64 + page.opt_req_factor * opt_local);

            freq.push(f);
            streams.push(s);
            opt_cost.push(oc);
            parts.push(part);
        }

        let update_load = if count_updates {
            store.iter().map(|k| sys.object(k).update_rate).sum()
        } else {
            0.0
        };

        SiteWork {
            sys,
            site,
            params,
            alpha1: cost.alpha1,
            alpha2: cost.alpha2,
            pages,
            freq,
            streams,
            opt_cost,
            parts,
            store,
            stored_bytes,
            html_bytes,
            load,
            count_updates,
            update_load,
            obj_local,
            mark_count,
            comp_off,
            comp_dat,
            opt_off,
            opt_dat,
            zero_marks: Vec::new(),
            scratch_refs: Vec::new(),
        }
    }

    /// The site-local index of `object`, if any local page references it.
    #[inline]
    fn local_of(&self, object: ObjectId) -> Option<usize> {
        match self.obj_local[object.index()] {
            NOT_LOCAL => None,
            i => Some(i as usize),
        }
    }

    // --- read access -----------------------------------------------------

    /// The site this state plans for.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The underlying system.
    pub fn system(&self) -> &'a System {
        self.sys
    }

    /// The per-site estimates.
    pub fn params(&self) -> &SiteParams {
        &self.params
    }

    /// Local pages in index order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of local pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// The working partition row of local page `idx`.
    pub fn partition(&self, idx: usize) -> &PagePartition {
        &self.parts[idx]
    }

    /// The stream totals of local page `idx`.
    pub fn streams(&self, idx: usize) -> &Streams {
        &self.streams[idx]
    }

    /// The `α1` weight in use.
    pub fn alpha1(&self) -> f64 {
        self.alpha1
    }

    /// The `α2` weight in use.
    pub fn alpha2(&self) -> f64 {
        self.alpha2
    }

    /// The optional-cost accumulator of local page `idx`.
    pub fn optional_cost(&self, idx: usize) -> &OptionalCost {
        &self.opt_cost[idx]
    }

    /// Eq. 10 LHS: HTML plus stored-object bytes.
    pub fn storage_used(&self) -> u64 {
        self.html_bytes + self.stored_bytes
    }

    /// `Size(S_i)` from the system.
    pub fn storage_capacity(&self) -> u64 {
        self.sys.site(self.site).storage.get()
    }

    /// Free storage, `Space(S_i)` in the status message.
    pub fn space_left(&self) -> u64 {
        self.storage_capacity().saturating_sub(self.storage_used())
    }

    /// The site's offered HTTP load: Eq. 8 LHS, plus the store's refresh
    /// load when update accounting is on.
    pub fn load(&self) -> f64 {
        self.load + self.update_load
    }

    /// The refresh load of the current store (zero unless update
    /// accounting is enabled).
    pub fn update_load(&self) -> f64 {
        self.update_load
    }

    /// `u_k` as this state accounts it: the object's update rate when
    /// accounting is on, zero otherwise.
    pub fn update_rate_of(&self, object: ObjectId) -> f64 {
        if self.count_updates {
            self.sys.object(object).update_rate
        } else {
            0.0
        }
    }

    /// `C(S_i)`.
    pub fn capacity(&self) -> f64 {
        self.sys.site(self.site).capacity.get()
    }

    /// Processing headroom, `P(S_i)` in the status message. Charged
    /// against the full Eq. 8 LHS — including the store's refresh load
    /// when update accounting is on, so off-loading never advertises
    /// headroom the update traffic already consumes.
    pub fn headroom(&self) -> f64 {
        (self.capacity() - self.load()).max(0.0)
    }

    /// The repository load this site's pages generate, `P(S_i, R)` — plus
    /// the update pushes this site's replicas demand from the repository,
    /// when update accounting is on.
    pub fn repo_load(&self) -> f64 {
        let mut total = self.update_load;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            let part = &self.parts[idx];
            let remote_comp = (page.n_compulsory() - part.n_local_compulsory()) as f64;
            let opt_remote: f64 = page
                .optional
                .iter()
                .zip(&part.local_optional)
                .filter(|(_, &l)| !l)
                .map(|(o, _)| o.prob)
                .sum();
            total += self.freq[idx] * (remote_comp + page.opt_req_factor * opt_remote);
        }
        total
    }

    /// Whether `object` is in this site's store.
    pub fn is_stored(&self, object: ObjectId) -> bool {
        self.store.contains(object)
    }

    /// Number of local marks currently on `object`.
    pub fn marks_on(&self, object: ObjectId) -> u32 {
        self.local_of(object).map_or(0, |o| self.mark_count[o])
    }

    /// Iterates the stored objects in ascending id order.
    pub fn stored_objects(&self) -> Vec<ObjectId> {
        self.store.iter().collect()
    }

    /// The objective contribution of local page `idx`:
    /// `f (α1 · response + α2 · optional)`.
    pub fn page_d(&self, idx: usize) -> f64 {
        self.freq[idx]
            * (self.alpha1 * self.streams[idx].response(&self.params)
                + self.alpha2 * self.opt_cost[idx].time())
    }

    /// Total objective contribution of this site's pages.
    pub fn total_d(&self) -> f64 {
        (0..self.pages.len()).map(|i| self.page_d(i)).sum()
    }

    /// Compulsory references to `object` at this site.
    pub fn compulsory_refs(&self, object: ObjectId) -> &[(u32, u32)] {
        match self.local_of(object) {
            Some(o) => &self.comp_dat[self.comp_off[o] as usize..self.comp_off[o + 1] as usize],
            None => &[],
        }
    }

    /// Optional references to `object` at this site.
    pub fn optional_refs(&self, object: ObjectId) -> &[(u32, u32)] {
        match self.local_of(object) {
            Some(o) => &self.opt_dat[self.opt_off[o] as usize..self.opt_off[o + 1] as usize],
            None => &[],
        }
    }

    // --- mutation ---------------------------------------------------------

    /// Flips compulsory slot `(idx, slot)` to `local`, maintaining streams,
    /// load and mark counts. No-op if already in that state.
    ///
    /// # Panics
    /// Panics if marking local while the object is not stored.
    pub fn set_compulsory(&mut self, idx: usize, slot: usize, local: bool) {
        if self.parts[idx].local_compulsory[slot] == local {
            return;
        }
        let pid = self.pages[idx];
        let object = self.sys.page(pid).compulsory[slot];
        let size = self.sys.object_size(object);
        let o = self
            .local_of(object)
            .expect("compulsory slot references an object unknown to this site");
        if local {
            assert!(
                self.store.contains(object),
                "marking {object} local while not stored at {}",
                self.site
            );
            self.streams[idx].move_to_local(size);
            self.load += self.freq[idx];
            self.mark_count[o] += 1;
        } else {
            self.streams[idx].move_to_remote(size);
            self.load -= self.freq[idx];
            assert!(self.mark_count[o] > 0, "unmarking an object with no marks");
            self.mark_count[o] -= 1;
            if self.mark_count[o] == 0 {
                self.zero_marks.push(object);
            }
        }
        self.parts[idx].local_compulsory[slot] = local;
    }

    /// Flips optional slot `(idx, slot)` to `local`. Same contract as
    /// [`SiteWork::set_compulsory`].
    pub fn set_optional(&mut self, idx: usize, slot: usize, local: bool) {
        if self.parts[idx].local_optional[slot] == local {
            return;
        }
        let pid = self.pages[idx];
        let page = self.sys.page(pid);
        let oref = page.optional[slot];
        let size = self.sys.object_size(oref.object);
        let workload = self.freq[idx] * page.opt_req_factor * oref.prob;
        let o = self
            .local_of(oref.object)
            .expect("optional slot references an object unknown to this site");
        if local {
            assert!(
                self.store.contains(oref.object),
                "marking optional {} local while not stored",
                oref.object
            );
            self.load += workload;
            self.mark_count[o] += 1;
        } else {
            self.load -= workload;
            assert!(
                self.mark_count[o] > 0,
                "unmarking an optional with no marks"
            );
            self.mark_count[o] -= 1;
            if self.mark_count[o] == 0 {
                self.zero_marks.push(oref.object);
            }
        }
        self.opt_cost[idx].flip(oref.prob, size, local, &self.params);
        self.parts[idx].local_optional[slot] = local;
    }

    /// Adds `object` to the store (no marks yet). Returns false if already
    /// stored.
    pub fn alloc(&mut self, object: ObjectId) -> bool {
        if self.store.insert(object) {
            self.stored_bytes += self.sys.object_size(object).get();
            if self.count_updates {
                self.update_load += self.sys.object(object).update_rate;
            }
            // Stored with zero marks until a caller flips one local — an
            // orphan candidate if none ever lands.
            self.zero_marks.push(object);
            true
        } else {
            false
        }
    }

    /// The objective increase if `object` were deallocated right now
    /// (every local mark on it flipped remote). Non-mutating; exact.
    pub fn delta_d_dealloc(&self, object: ObjectId) -> f64 {
        let size = self.sys.object_size(object);
        let mut delta = 0.0;
        for &(idx, slot) in self.compulsory_refs(object) {
            let (idx, slot) = (idx as usize, slot as usize);
            if self.parts[idx].local_compulsory[slot] {
                let before = self.streams[idx].response(&self.params);
                let after = self.streams[idx].response_if_remote(size, &self.params);
                delta += self.freq[idx] * self.alpha1 * (after - before);
            }
        }
        for &(idx, slot) in self.optional_refs(object) {
            let (idx, slot) = (idx as usize, slot as usize);
            if self.parts[idx].local_optional[slot] {
                let prob = self.sys.page(self.pages[idx]).optional[slot].prob;
                delta += self.freq[idx]
                    * self.alpha2
                    * self.opt_cost[idx].delta_if_flipped(prob, size, false, &self.params);
            }
        }
        delta
    }

    /// Deallocates `object`: flips all its local marks remote and removes
    /// it from the store. Returns the indices of pages whose *compulsory*
    /// partition changed (candidates for re-partitioning).
    pub fn dealloc(&mut self, object: ObjectId) -> Vec<usize> {
        let mut affected = Vec::new();
        // The flips below need `&mut self` while the CSR rows borrow
        // `&self`, so stage the rows through a reusable scratch buffer.
        let mut refs = std::mem::take(&mut self.scratch_refs);
        refs.clear();
        refs.extend_from_slice(self.compulsory_refs(object));
        for &(idx, slot) in &refs {
            let (idx, slot) = (idx as usize, slot as usize);
            if self.parts[idx].local_compulsory[slot] {
                self.set_compulsory(idx, slot, false);
                affected.push(idx);
            }
        }
        refs.clear();
        refs.extend_from_slice(self.optional_refs(object));
        for &(idx, slot) in &refs {
            let (idx, slot) = (idx as usize, slot as usize);
            if self.parts[idx].local_optional[slot] {
                self.set_optional(idx, slot, false);
            }
        }
        self.scratch_refs = refs;
        if self.store.remove(object) {
            self.stored_bytes -= self.sys.object_size(object).get();
            if self.count_updates {
                self.update_load -= self.sys.object(object).update_rate;
            }
        }
        debug_assert_eq!(self.marks_on(object), 0);
        affected
    }

    /// Removes stored objects that no longer carry any local mark,
    /// returning the bytes freed. Zero objective cost by construction.
    pub fn drop_orphans(&mut self) -> u64 {
        // Every orphan went through a marks→0 transition (or a markless
        // `alloc`), so the worklist covers them all; entries re-marked
        // since are filtered by the re-check. Ascending-id drain keeps the
        // update-load subtraction order of the old full-store scan.
        let mut worklist = std::mem::take(&mut self.zero_marks);
        worklist.sort_unstable();
        worklist.dedup();
        let mut freed = 0;
        for k in worklist.drain(..) {
            if self.marks_on(k) != 0 || !self.store.remove(k) {
                continue;
            }
            let sz = self.sys.object_size(k).get();
            self.stored_bytes -= sz;
            freed += sz;
            if self.count_updates {
                self.update_load -= self.sys.object(k).update_rate;
            }
        }
        self.zero_marks = worklist;
        freed
    }

    /// Re-runs the greedy partition of local page `idx` against the current
    /// store: objects not stored are forced remote, stored objects are
    /// re-balanced in decreasing size order (the paper's post-deallocation
    /// adjustment). The new assignment is applied only if it improves the
    /// page's objective contribution. Returns whether anything changed.
    pub fn repartition_page(&mut self, idx: usize) -> bool {
        let pid = self.pages[idx];
        let page = self.sys.page(pid);
        let p = &self.params;

        // Candidate slots: stored objects. Fixed-remote: everything else.
        let mut candidates: Vec<usize> = Vec::new();
        let mut fixed_remote_bytes = 0u64;
        for (slot, &k) in page.compulsory.iter().enumerate() {
            if self.store.contains(k) {
                candidates.push(slot);
            } else {
                fixed_remote_bytes += self.sys.object_size(k).get();
            }
        }
        candidates.sort_by(|&a, &b| {
            let sa = self.sys.object_size(page.compulsory[a]);
            let sb = self.sys.object_size(page.compulsory[b]);
            sb.cmp(&sa).then(a.cmp(&b))
        });

        // Verbatim greedy with the fixed-remote payload pre-charged.
        let mut local = p.local_ovhd + page.html_size.get() as f64 / p.local_rate;
        let mut remote = p.repo_ovhd + fixed_remote_bytes as f64 / p.repo_rate;
        let mut new_marks = vec![false; page.n_compulsory()];
        for &slot in &candidates {
            let size = self.sys.object_size(page.compulsory[slot]).get() as f64;
            let local_if = local + size / p.local_rate;
            let remote_if = remote + size / p.repo_rate;
            if remote_if < local_if {
                remote = remote_if;
            } else {
                local = local_if;
                new_marks[slot] = true;
            }
        }

        // Optional slots: local iff stored and the standalone fetch wins.
        let new_opt: Vec<bool> = page
            .optional
            .iter()
            .map(|o| {
                self.store.contains(o.object) && p.local_fetch_wins(self.sys.object_size(o.object))
            })
            .collect();

        // Apply tentatively through the bookkeeping and keep iff better.
        let before = self.page_d(idx);
        let old_comp = self.parts[idx].local_compulsory.clone();
        let old_opt = self.parts[idx].local_optional.clone();
        for (slot, &mark) in new_marks.iter().enumerate() {
            self.set_compulsory(idx, slot, mark);
        }
        for (slot, &mark) in new_opt.iter().enumerate() {
            self.set_optional(idx, slot, mark);
        }
        let after = self.page_d(idx);
        if after < before - 1e-12 {
            true
        } else {
            for (slot, &mark) in old_comp.iter().enumerate() {
                self.set_compulsory(idx, slot, mark);
            }
            for (slot, &mark) in old_opt.iter().enumerate() {
                self.set_optional(idx, slot, mark);
            }
            false
        }
    }

    /// Extracts the final partitions as `(page, partition)` pairs.
    pub fn into_partitions(self) -> Vec<(PageId, PagePartition)> {
        self.pages.into_iter().zip(self.parts).collect()
    }

    /// Expensive from-scratch recomputation of every derived quantity,
    /// panicking on divergence. Delegates to [`crate::audit::audit_site`],
    /// which also covers mark counts and exact storage accounting.
    pub fn validate_consistency(&self) {
        crate::audit::assert_consistent(self, crate::audit::AuditStage::Validate);
    }

    /// Test/demo hook: corrupts the tracked serving load by `delta`
    /// without touching the partitions, so the auditor has a divergence
    /// to find. Never called by the planning pipeline.
    #[doc(hidden)]
    pub fn debug_corrupt_load(&mut self, delta: f64) {
        self.load += delta;
    }

    /// Test/demo hook: corrupts the tracked stored-byte count by `delta`
    /// bytes. Never called by the planning pipeline.
    #[doc(hidden)]
    pub fn debug_corrupt_stored_bytes(&mut self, delta: u64) {
        self.stored_bytes += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_all;
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn make_work(seed: u64) -> (System, usize) {
        let sys = generate_system(&WorkloadParams::small(), seed).unwrap();
        (sys, 0)
    }

    fn work_for<'a>(sys: &'a System, site_idx: usize) -> SiteWork<'a> {
        let placement = partition_all(sys);
        SiteWork::new(
            sys,
            SiteId::new(site_idx as u32),
            &placement,
            CostParams::default(),
        )
    }

    #[test]
    fn new_state_is_consistent() {
        let (sys, i) = make_work(1);
        let w = work_for(&sys, i);
        w.validate_consistency();
        assert!(w.n_pages() > 0);
        assert!(w.load() > 0.0);
        assert!(w.storage_used() > 0);
    }

    #[test]
    fn load_matches_placement_view() {
        let (sys, _) = make_work(2);
        let placement = partition_all(&sys);
        for site in sys.sites().ids() {
            let w = SiteWork::new(&sys, site, &placement, CostParams::default());
            let model_load = placement.site_load(&sys, site).get();
            assert!(
                (w.load() - model_load).abs() < 1e-9,
                "site {site}: {} vs {}",
                w.load(),
                model_load
            );
            let model_repo = placement.repo_load_from(&sys, site).get();
            assert!((w.repo_load() - model_repo).abs() < 1e-9);
        }
    }

    #[test]
    fn storage_matches_placement_view() {
        let (sys, _) = make_work(3);
        let placement = partition_all(&sys);
        for site in sys.sites().ids() {
            let w = SiteWork::new(&sys, site, &placement, CostParams::default());
            let model = placement.storage_used(&sys, site).get();
            assert_eq!(w.storage_used(), model, "site {site}");
        }
    }

    #[test]
    fn total_d_matches_cost_model() {
        let (sys, _) = make_work(4);
        let placement = partition_all(&sys);
        let cm = mmrepl_model::CostModel::with_defaults(&sys);
        let total: f64 = sys
            .sites()
            .ids()
            .map(|s| SiteWork::new(&sys, s, &placement, CostParams::default()).total_d())
            .sum();
        assert!(
            (total - cm.objective(&placement)).abs() / total < 1e-9,
            "{total} vs {}",
            cm.objective(&placement)
        );
    }

    #[test]
    fn set_compulsory_roundtrip_restores_state() {
        let (sys, i) = make_work(5);
        let mut w = work_for(&sys, i);
        let before_load = w.load();
        let before_d = w.total_d();
        // Find a local compulsory mark and flip it away and back.
        let (idx, slot) = (0..w.n_pages())
            .flat_map(|idx| (0..w.partition(idx).local_compulsory.len()).map(move |s| (idx, s)))
            .find(|&(idx, s)| w.partition(idx).local_compulsory[s])
            .expect("no local marks");
        w.set_compulsory(idx, slot, false);
        assert!(w.load() < before_load);
        w.set_compulsory(idx, slot, true);
        assert!((w.load() - before_load).abs() < 1e-9);
        assert!((w.total_d() - before_d).abs() < 1e-9);
        w.validate_consistency();
    }

    #[test]
    fn dealloc_removes_all_marks_and_storage() {
        let (sys, i) = make_work(6);
        let mut w = work_for(&sys, i);
        let object = w
            .stored_objects()
            .into_iter()
            .max_by_key(|&k| w.marks_on(k))
            .expect("store is empty");
        let marks = w.marks_on(object);
        assert!(marks > 0);
        let used_before = w.storage_used();
        let d_before = w.total_d();
        let predicted = w.delta_d_dealloc(object);
        let affected = w.dealloc(object);
        assert!(!w.is_stored(object));
        assert_eq!(w.marks_on(object), 0);
        assert_eq!(
            w.storage_used(),
            used_before - sys.object_size(object).get()
        );
        let actual = w.total_d() - d_before;
        assert!(
            (actual - predicted).abs() < 1e-6,
            "predicted {predicted}, actual {actual}"
        );
        assert!(actual >= -1e-9, "dealloc should not improve D");
        // affected pages are exactly those that had compulsory marks
        assert!(affected.len() as u32 <= marks);
        w.validate_consistency();
    }

    #[test]
    fn repartition_never_worsens_page() {
        let (sys, i) = make_work(7);
        let mut w = work_for(&sys, i);
        // Knock out a chunk of the store to make repartitioning meaningful.
        let victims: Vec<ObjectId> = w.stored_objects().into_iter().take(20).collect();
        for v in victims {
            w.dealloc(v);
        }
        for idx in 0..w.n_pages() {
            let before = w.page_d(idx);
            w.repartition_page(idx);
            let after = w.page_d(idx);
            assert!(after <= before + 1e-9, "page {idx}: {before} -> {after}");
        }
        w.validate_consistency();
    }

    #[test]
    fn drop_orphans_frees_unmarked_objects() {
        let (sys, i) = make_work(8);
        let mut w = work_for(&sys, i);
        // Manufacture an orphan: alloc an object that is nowhere marked.
        let unmarked = sys
            .objects()
            .ids()
            .find(|&k| !w.is_stored(k))
            .expect("all objects stored?");
        w.alloc(unmarked);
        let used = w.storage_used();
        let freed = w.drop_orphans();
        assert!(freed >= sys.object_size(unmarked).get());
        assert_eq!(w.storage_used(), used - freed);
        assert!(!w.is_stored(unmarked));
        w.validate_consistency();
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn marking_unstored_object_local_panics() {
        let (sys, i) = make_work(9);
        let mut w = work_for(&sys, i);
        // Find a remote compulsory mark whose object is not stored.
        let target = (0..w.n_pages()).find_map(|idx| {
            let pid = w.pages()[idx];
            let page = sys.page(pid);
            (0..page.n_compulsory()).find_map(|s| {
                (!w.partition(idx).local_compulsory[s] && !w.is_stored(page.compulsory[s]))
                    .then_some((idx, s))
            })
        });
        // If every remote object happens to be stored, force the situation.
        let (idx, slot) = target.unwrap_or_else(|| {
            let idx = 0;
            let pid = w.pages()[idx];
            let k = sys.page(pid).compulsory[0];
            let mut w2_slot = 0;
            for (s, &kk) in sys.page(pid).compulsory.iter().enumerate() {
                if kk == k {
                    w2_slot = s;
                }
            }
            w.dealloc(k);
            (idx, w2_slot)
        });
        w.set_compulsory(idx, slot, true);
    }

    #[test]
    fn headroom_charges_update_load() {
        let (sys, i) = make_work(11);
        let sys = sys.map_update_rates(|_, _| 0.5);
        let placement = partition_all(&sys);
        let site = SiteId::new(i as u32);
        let w =
            SiteWork::with_update_accounting(&sys, site, &placement, CostParams::default(), true);
        assert!(w.update_load() > 0.0);
        // Headroom must be measured against the full Eq. 8 LHS (serving
        // plus refresh load), not just the serving term — otherwise
        // off-loading hands out capacity the update traffic already uses.
        let expected = (w.capacity() - w.load()).max(0.0);
        assert!(
            (w.headroom() - expected).abs() < 1e-9,
            "headroom {} vs capacity {} - load {}",
            w.headroom(),
            w.capacity(),
            w.load()
        );
    }

    #[test]
    fn total_f64_orders_properly() {
        let mut keys = [TotalF64(3.0), TotalF64(-1.0), TotalF64(0.5)];
        keys.sort();
        assert_eq!(keys, [TotalF64(-1.0), TotalF64(0.5), TotalF64(3.0)]);
        assert!(TotalF64(f64::NEG_INFINITY) < TotalF64(0.0));
    }

    #[test]
    fn headroom_and_space_saturate() {
        let (sys, i) = make_work(10);
        let w = work_for(&sys, i);
        // Storage is at 100% demand, so space_left is >= 0 by construction.
        assert!(w.space_left() <= w.storage_capacity());
        assert!(w.headroom() >= 0.0);
    }
}
