//! The end-to-end replication policy: partition → restore storage →
//! restore local capacity → off-load the repository.

use crate::capacity::{restore_capacity, CapacityReport};
use crate::offload::{run_offload, OffloadConfig, OffloadReport};
use crate::partition::partition_all;
use crate::state::SiteWork;
use crate::storage::{restore_storage, StorageReport};
use mmrepl_model::{ConstraintReport, CostParams, IdVec, PageId, PagePartition, Placement, System};
use serde::{Deserialize, Serialize};

/// Planner configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Objective weights `(α1, α2)`.
    pub cost: CostParams,
    /// Off-loading negotiation knobs.
    pub offload: OffloadConfig,
    /// Charge each stored object's update rate against site and
    /// repository capacity (read/write extension; the paper's read-only
    /// model leaves this off).
    #[serde(default)]
    pub include_update_load: bool,
}

/// What each stage of the pipeline did, per site where applicable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// Per-site storage restoration summaries (site-id order).
    pub storage: Vec<StorageReport>,
    /// Per-site capacity restoration summaries (site-id order).
    pub capacity: Vec<CapacityReport>,
    /// The repository off-loading negotiation summary.
    pub offload: OffloadReport,
    /// Final feasibility verdict over Eq. 8-10.
    pub feasible: bool,
    /// The objective value `D` of the final placement (planner estimates).
    pub objective: f64,
}

/// A planned placement plus its report.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanOutcome {
    /// The final `X`/`X'` assignment.
    pub placement: Placement,
    /// Stage-by-stage accounting.
    pub report: PlanReport,
}

/// The paper's replication policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicationPolicy {
    config: PlannerConfig,
}

impl ReplicationPolicy {
    /// A policy with the Table 1 weights and default negotiation knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// A policy with custom configuration.
    pub fn with_config(config: PlannerConfig) -> Self {
        ReplicationPolicy { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Runs the full pipeline over `system`.
    pub fn plan(&self, system: &System) -> PlanOutcome {
        let _total = mmrepl_obs::span("plan.total");
        let initial = {
            let _s = mmrepl_obs::span("plan.partition");
            partition_all(system)
        };
        self.plan_with_threads(system, &initial, 1)
    }

    /// Like [`ReplicationPolicy::plan`], but adopting a caller-provided
    /// unconstrained partition instead of recomputing it.
    ///
    /// `PARTITION` depends only on transfer rates, connection overheads
    /// and object sizes — never on storage, processing or repository
    /// capacities — so one [`partition_all`] result can warm-start every
    /// capacity sweep point derived from the same system, bit-identically
    /// to a cold [`ReplicationPolicy::plan`].
    pub fn plan_with_partition(&self, system: &System, initial: &Placement) -> PlanOutcome {
        let _total = mmrepl_obs::span("plan.total");
        self.plan_with_threads(system, initial, 1)
    }

    /// Like [`ReplicationPolicy::plan`], but fans the per-site stages
    /// (storage + capacity restoration) out over up to `threads` worker
    /// threads (`0` = one per core). Sites are independent until the
    /// off-loading negotiation, so the result is **bit-identical** to the
    /// sequential plan — asserted by tests.
    pub fn plan_parallel(&self, system: &System, threads: usize) -> PlanOutcome {
        let _total = mmrepl_obs::span("plan.total");
        let initial = {
            let _s = mmrepl_obs::span("plan.partition");
            partition_all(system)
        };
        self.plan_with_threads(system, &initial, threads)
    }

    fn plan_with_threads(
        &self,
        system: &System,
        initial: &Placement,
        threads: usize,
    ) -> PlanOutcome {
        // Stage 1 (the `initial` partition) is per-site independent, as
        // are stages 2 & 3 (the local restorations), so the per-site state
        // build and both restorations run in one fused pass per site,
        // optionally in parallel on the shared worker pool. Results come
        // back in site-id order, so the outcome is bit-identical to the
        // sequential plan.
        let site_ids: Vec<_> = system.sites().ids().collect();

        let per_site = |s: mmrepl_model::SiteId| {
            let mut w = {
                // Adopting the partition into dense per-site state is the
                // tail of stage 1, so it counts toward `plan.partition`.
                let _s = mmrepl_obs::span("plan.partition");
                SiteWork::with_update_accounting(
                    system,
                    s,
                    initial,
                    self.config.cost,
                    self.config.include_update_load,
                )
            };
            #[cfg(feature = "audit")]
            crate::audit::assert_consistent(&w, crate::audit::AuditStage::Partition);
            let st = {
                let _s = mmrepl_obs::span("plan.storage_restore");
                restore_storage(&mut w)
            };
            #[cfg(feature = "audit")]
            crate::audit::assert_consistent(&w, crate::audit::AuditStage::StorageRestore);
            let cap = {
                let _s = mmrepl_obs::span("plan.capacity_restore");
                restore_capacity(&mut w)
            };
            #[cfg(feature = "audit")]
            crate::audit::assert_consistent(&w, crate::audit::AuditStage::CapacityRestore);
            (w, st, cap)
        };

        let results: Vec<(SiteWork<'_>, StorageReport, CapacityReport)> =
            crate::pool::parallel_map(site_ids.len(), threads, |i| per_site(site_ids[i]));
        let mut works = Vec::with_capacity(results.len());
        let mut storage = Vec::with_capacity(results.len());
        let mut capacity = Vec::with_capacity(results.len());
        for (w, st, cap) in results {
            works.push(w);
            storage.push(st);
            capacity.push(cap);
        }

        if mmrepl_obs::enabled() {
            let mut pops = 0u64;
            let (mut dealloc, mut orphaned, mut repart, mut freed) = (0u64, 0u64, 0u64, 0u64);
            for st in &storage {
                pops += st.heap_pops;
                dealloc += st.deallocated as u64;
                orphaned += st.orphaned as u64;
                repart += st.repartitioned as u64;
                freed += st.bytes_freed;
            }
            mmrepl_obs::add("storage.heap_pops", pops);
            mmrepl_obs::add("storage.deallocated", dealloc);
            mmrepl_obs::add("storage.orphaned", orphaned);
            mmrepl_obs::add("storage.repartitioned", repart);
            mmrepl_obs::add("storage.bytes_freed", freed);
            let mut pops = 0u64;
            let (mut moves, mut dealloc, mut freed) = (0u64, 0u64, 0u64);
            for cap in &capacity {
                pops += cap.heap_pops;
                moves += cap.moves as u64;
                dealloc += cap.deallocated as u64;
                freed += cap.bytes_freed;
            }
            mmrepl_obs::add("capacity.heap_pops", pops);
            mmrepl_obs::add("capacity.moves", moves);
            mmrepl_obs::add("capacity.deallocated", dealloc);
            mmrepl_obs::add("capacity.bytes_freed", freed);
        }

        // Stage 4: distributed repository off-loading.
        let repo_cap = system.repository().capacity.get();
        let offload = {
            let _s = mmrepl_obs::span("plan.offload");
            run_offload(&mut works, repo_cap, &self.config.offload)
        };

        // Assemble the final placement.
        let _assemble = mmrepl_obs::span("plan.assemble");
        let mut rows: Vec<Option<PagePartition>> = vec![None; system.n_pages()];
        for work in works {
            for (pid, part) in work.into_partitions() {
                rows[pid.index()] = Some(part);
            }
        }
        let partitions: IdVec<PageId, PagePartition> = rows
            .into_iter()
            .map(|r| r.expect("every page belongs to exactly one site"))
            .collect();
        let placement = Placement::new(system, partitions).expect("plan shapes are consistent");

        let check = ConstraintReport::check(system, &placement);
        let update_ok = !self.config.include_update_load
            || mmrepl_model::UpdateAwareReport::check(system, &placement).is_feasible();
        let cm = mmrepl_model::CostModel::new(system, self.config.cost);
        let report = PlanReport {
            feasible: check.is_feasible() && update_ok,
            objective: cm.objective(&placement),
            storage,
            capacity,
            offload: offload.report,
        };
        PlanOutcome { placement, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_model::CostModel;
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn small_system(seed: u64) -> mmrepl_model::System {
        generate_system(&WorkloadParams::small(), seed).unwrap()
    }

    #[test]
    fn unconstrained_plan_is_feasible_and_matches_partition() {
        let sys = small_system(1).unconstrained();
        let outcome = ReplicationPolicy::new().plan(&sys);
        assert!(outcome.report.feasible);
        assert_eq!(outcome.report.offload.rounds, 0);
        // With no constraints, the plan must be exactly the greedy
        // partition (no restoration may fire).
        let pure = partition_all(&sys);
        assert_eq!(outcome.placement, pure);
    }

    #[test]
    fn plan_satisfies_all_constraints_under_pressure() {
        let sys = small_system(2)
            .with_storage_fraction(0.5)
            .with_processing_fraction(0.7);
        let sys = {
            // Also constrain the repository to 90% of the all-remote load.
            let full_remote = sys.full_remote_load();
            let mut s = sys.clone();
            s = s.with_central_fraction(0.9);
            assert!(s.repository().capacity.get() < full_remote.get() + 1.0);
            s
        };
        let outcome = ReplicationPolicy::new().plan(&sys);
        let check = ConstraintReport::check(&sys, &outcome.placement);
        assert!(check.is_feasible(), "violations: {:?}", check.violations);
        assert!(outcome.report.feasible);
    }

    #[test]
    fn plan_report_objective_matches_cost_model() {
        let sys = small_system(3).with_storage_fraction(0.8);
        let outcome = ReplicationPolicy::new().plan(&sys);
        let cm = CostModel::with_defaults(&sys);
        let d = cm.objective(&outcome.placement);
        assert!((outcome.report.objective - d).abs() / d < 1e-9);
    }

    #[test]
    fn tighter_storage_never_improves_objective() {
        let base = small_system(4);
        let policy = ReplicationPolicy::new();
        let mut last = f64::NEG_INFINITY;
        for &frac in &[1.0, 0.8, 0.6, 0.4, 0.2] {
            let sys = base
                .with_storage_fraction(frac)
                .with_processing_fraction(10.0);
            let outcome = policy.plan(&sys);
            // Compare on the *same* cost model (the base system estimates).
            let cm = CostModel::with_defaults(&base);
            let d = cm.objective(&outcome.placement);
            assert!(
                d >= last - 1e-6,
                "objective improved when storage shrank: {d} < {last} at {frac}"
            );
            last = d;
        }
    }

    #[test]
    fn plan_beats_extremes_on_estimates() {
        let sys = small_system(5).unconstrained();
        let outcome = ReplicationPolicy::new().plan(&sys);
        let cm = CostModel::with_defaults(&sys);
        let ours = cm.d1(&outcome.placement);
        let local = cm.d1(&Placement::all_local(&sys));
        let remote = cm.d1(&Placement::all_remote(&sys));
        assert!(ours <= local + 1e-9, "ours {ours} vs local {local}");
        assert!(ours <= remote + 1e-9, "ours {ours} vs remote {remote}");
    }

    #[test]
    fn plan_is_deterministic() {
        let sys = small_system(6).with_storage_fraction(0.6);
        let a = ReplicationPolicy::new().plan(&sys);
        let b = ReplicationPolicy::new().plan(&sys);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn parallel_plan_is_bit_identical_to_sequential() {
        let sys = small_system(8)
            .with_storage_fraction(0.5)
            .with_processing_fraction(0.8);
        let policy = ReplicationPolicy::new();
        let seq = policy.plan(&sys);
        for threads in [0, 2, 3, 7] {
            let par = policy.plan_parallel(&sys, threads);
            assert_eq!(par.placement, seq.placement, "threads = {threads}");
            assert_eq!(par.report, seq.report, "threads = {threads}");
        }
    }

    #[test]
    fn custom_weights_shift_the_tradeoff() {
        let sys = small_system(7).with_storage_fraction(0.4);
        let d1_heavy = ReplicationPolicy::with_config(PlannerConfig {
            cost: CostParams {
                alpha1: 10.0,
                alpha2: 0.1,
            },
            ..PlannerConfig::default()
        })
        .plan(&sys);
        let d2_heavy = ReplicationPolicy::with_config(PlannerConfig {
            cost: CostParams {
                alpha1: 0.1,
                alpha2: 10.0,
            },
            ..PlannerConfig::default()
        })
        .plan(&sys);
        let cm = CostModel::with_defaults(&sys);
        // The response-time-heavy plan should win on D1, the optional-heavy
        // plan on D2 (weak inequality: small systems can tie).
        assert!(
            cm.d1(&d1_heavy.placement) <= cm.d1(&d2_heavy.placement) + 1e-9,
            "d1: {} vs {}",
            cm.d1(&d1_heavy.placement),
            cm.d1(&d2_heavy.placement)
        );
        assert!(
            cm.d2(&d2_heavy.placement) <= cm.d2(&d1_heavy.placement) + 1e-9,
            "d2: {} vs {}",
            cm.d2(&d2_heavy.placement),
            cm.d2(&d1_heavy.placement)
        );
    }
}
