//! The end-to-end replication policy: partition → restore storage →
//! restore local capacity → off-load the repository.

use crate::capacity::{restore_capacity, CapacityReport};
use crate::negotiate::{run_negotiation, NegotiateConfig, NegotiateReport};
use crate::offload::{run_offload, OffloadConfig, OffloadOutcome, OffloadReport};
use crate::partition::partition_all;
use crate::select::{select_ancestors, AncestorPolicy, Selection};
use crate::state::SiteWork;
use crate::storage::{restore_storage, StorageReport};
use mmrepl_model::{
    ConstraintReport, CostParams, IdVec, PageId, PagePartition, Placement, ServingChannel, SiteId,
    System,
};
use serde::{Deserialize, Serialize};

/// Planner configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Objective weights `(α1, α2)`.
    pub cost: CostParams,
    /// Off-loading negotiation knobs.
    pub offload: OffloadConfig,
    /// Charge each stored object's update rate against site and
    /// repository capacity (read/write extension; the paper's read-only
    /// model leaves this off).
    #[serde(default)]
    pub include_update_load: bool,
    /// How sites pick the repository node that serves their remote
    /// stream on tree systems. Ignored (no-op) on star systems.
    #[serde(default)]
    pub ancestor: AncestorPolicy,
    /// Tree systems only: after the restorations, re-run ancestor
    /// selection against each site's *measured* repository load instead
    /// of the conservative all-remote proxy, and re-restore the sites
    /// whose serving node changes. Replication absorbs demand locally,
    /// so the proxy systematically over-promotes under tight node
    /// capacities; this pass walks those sites back to cheaper channels
    /// (or promotes ones whose ancestor genuinely saturates). Off by
    /// default; a no-op on star and single-node systems.
    #[serde(default)]
    pub reselect: bool,
    /// Run stage 4 as the asynchronous proposal/counter-proposal
    /// protocol ([`crate::negotiate`]) instead of the synchronous
    /// reference rounds. With the default (reliable, greedy) knobs the
    /// placement is bit-identical to the synchronous protocol; seeded
    /// fault injection and alternative strategies live behind this knob.
    /// `None` (the default) keeps the synchronous path.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub negotiation: Option<NegotiateConfig>,
}

/// What each stage of the pipeline did, per site where applicable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// Per-site storage restoration summaries (site-id order).
    pub storage: Vec<StorageReport>,
    /// Per-site capacity restoration summaries (site-id order).
    pub capacity: Vec<CapacityReport>,
    /// The repository off-loading negotiation summary.
    pub offload: OffloadReport,
    /// Final feasibility verdict over Eq. 8-10.
    pub feasible: bool,
    /// The objective value `D` of the final placement (planner estimates).
    pub objective: f64,
    /// Tree systems only: the serving-node index chosen for each site
    /// (site-id order). Empty on star systems.
    #[serde(default)]
    pub serving: Vec<u32>,
    /// Tree systems only: one off-loading summary per serving node
    /// (ascending node order, nodes that serve at least one site).
    /// Empty on star systems, where [`PlanReport::offload`] is the
    /// single global negotiation.
    #[serde(default)]
    pub offload_by_node: Vec<OffloadReport>,
    /// Tree systems only: sites promoted off their attach node by the
    /// ancestor-selection stage.
    #[serde(default)]
    pub promotions: usize,
    /// Tree systems only: promotion attempts vetoed by a QoS bound.
    #[serde(default)]
    pub qos_blocked: usize,
    /// Tree systems with [`PlannerConfig::reselect`] on: sites whose
    /// serving node changed in the measured-demand re-selection pass.
    #[serde(default)]
    pub reselections: usize,
    /// Present when stage 4 ran as the asynchronous negotiation
    /// ([`PlannerConfig::negotiation`]): protocol-level accounting
    /// (retries, timeouts, degraded sites, bus fault counters). The
    /// [`PlanReport::offload`] summary is derived from it either way.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub negotiation: Option<NegotiateReport>,
}

/// A planned placement plus its report.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanOutcome {
    /// The final `X`/`X'` assignment.
    pub placement: Placement,
    /// Stage-by-stage accounting.
    pub report: PlanReport,
}

/// The paper's replication policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicationPolicy {
    config: PlannerConfig,
}

impl ReplicationPolicy {
    /// A policy with the Table 1 weights and default negotiation knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// A policy with custom configuration.
    pub fn with_config(config: PlannerConfig) -> Self {
        ReplicationPolicy { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Runs the full pipeline over `system`, fanning the per-site shards
    /// (partition adoption + both restorations) out over one worker per
    /// core. The shards merge in site-id order, so the outcome is
    /// **bit-identical** to [`ReplicationPolicy::plan_parallel`] at any
    /// thread count, including 1.
    pub fn plan(&self, system: &System) -> PlanOutcome {
        let _total = mmrepl_obs::span("plan.total");
        self.plan_with_threads(system, None, 0)
    }

    /// Like [`ReplicationPolicy::plan`], but adopting a caller-provided
    /// unconstrained partition instead of recomputing it.
    ///
    /// `PARTITION` depends only on transfer rates, connection overheads
    /// and object sizes — never on storage, processing or repository
    /// capacities — so one [`partition_all`] result can warm-start every
    /// capacity sweep point derived from the same system, bit-identically
    /// to a cold [`ReplicationPolicy::plan`].
    ///
    /// Tree systems repartition with the ancestor-selection channel
    /// estimates regardless, so the warm start only applies to star
    /// systems.
    pub fn plan_with_partition(&self, system: &System, initial: &Placement) -> PlanOutcome {
        let _total = mmrepl_obs::span("plan.total");
        self.plan_with_threads(system, Some(initial), 0)
    }

    /// Like [`ReplicationPolicy::plan`], but fans the per-site stages
    /// (storage + capacity restoration) out over up to `threads` worker
    /// threads (`0` = one per core). Sites are independent until the
    /// off-loading negotiation, so the result is **bit-identical** to the
    /// sequential plan — asserted by tests.
    pub fn plan_parallel(&self, system: &System, threads: usize) -> PlanOutcome {
        let _total = mmrepl_obs::span("plan.total");
        self.plan_with_threads(system, None, threads)
    }

    fn plan_with_threads(
        &self,
        system: &System,
        warm_start: Option<&Placement>,
        threads: usize,
    ) -> PlanOutcome {
        // Stage 1 (the `initial` partition) is per-site independent, as
        // are stages 2 & 3 (the local restorations), so the per-site state
        // build and both restorations run in one fused pass per site,
        // optionally in parallel on the shared worker pool. Results come
        // back in site-id order, so the outcome is bit-identical to the
        // sequential plan.
        let site_ids: Vec<_> = system.sites().ids().collect();

        // Stage 0 (tree systems only): pick the repository node serving
        // each site's remote stream, deriving per-site planner estimates
        // from the constrained ancestor path. Star systems skip this
        // entirely and follow the exact paper pipeline.
        let mut selection: Option<Selection> = system.topology().map(|_| {
            let _s = mmrepl_obs::span("plan.select");
            select_ancestors(system, self.config.ancestor)
        });

        // Stage 1: the unconstrained `PARTITION`. Tree systems always
        // repartition with the channel-derived estimates; star systems
        // adopt the warm start verbatim or recompute with the paper's
        // per-site estimates.
        let owned_initial: Option<Placement>;
        let initial: &Placement = if let Some(sel) = &selection {
            owned_initial = Some({
                let _s = mmrepl_obs::span("plan.partition");
                crate::partition::partition_all_with(system, &sel.params)
            });
            owned_initial.as_ref().expect("just assigned")
        } else if let Some(p) = warm_start {
            p
        } else {
            owned_initial = Some({
                let _s = mmrepl_obs::span("plan.partition");
                partition_all(system)
            });
            owned_initial.as_ref().expect("just assigned")
        };

        let per_site = |s: mmrepl_model::SiteId| {
            // One site = one shard. The span lands in the stage table; the
            // wall time feeds the shard-imbalance counter below.
            let shard_start = std::time::Instant::now();
            let _shard = mmrepl_obs::span("plan.restore.shard");
            let mut w = {
                // Adopting the partition into dense per-site state is the
                // tail of stage 1, so it counts toward `plan.partition`.
                let _s = mmrepl_obs::span("plan.partition");
                match &selection {
                    Some(sel) => SiteWork::with_params(
                        system,
                        s,
                        initial,
                        self.config.cost,
                        self.config.include_update_load,
                        sel.params[s],
                    ),
                    None => SiteWork::with_update_accounting(
                        system,
                        s,
                        initial,
                        self.config.cost,
                        self.config.include_update_load,
                    ),
                }
            };
            #[cfg(feature = "audit")]
            crate::audit::assert_consistent(&w, crate::audit::AuditStage::Partition);
            let st = {
                let _s = mmrepl_obs::span("plan.storage_restore");
                restore_storage(&mut w)
            };
            #[cfg(feature = "audit")]
            crate::audit::assert_consistent(&w, crate::audit::AuditStage::StorageRestore);
            let cap = {
                let _s = mmrepl_obs::span("plan.capacity_restore");
                restore_capacity(&mut w)
            };
            #[cfg(feature = "audit")]
            crate::audit::assert_consistent(&w, crate::audit::AuditStage::CapacityRestore);
            (w, st, cap, shard_start.elapsed().as_nanos() as u64)
        };

        let results: Vec<(SiteWork<'_>, StorageReport, CapacityReport, u64)> =
            crate::pool::parallel_map(site_ids.len(), threads, |i| per_site(site_ids[i]));
        let mut works = Vec::with_capacity(results.len());
        let mut storage = Vec::with_capacity(results.len());
        let mut capacity = Vec::with_capacity(results.len());
        let (mut shard_max_ns, mut shard_min_ns) = (0u64, u64::MAX);
        for (w, st, cap, ns) in results {
            shard_max_ns = shard_max_ns.max(ns);
            shard_min_ns = shard_min_ns.min(ns);
            works.push(w);
            storage.push(st);
            capacity.push(cap);
        }

        // Stage 3.5 (tree systems, opt-in): measured-demand re-selection.
        // The first selection pass budgeted nodes with the conservative
        // all-remote proxy; the restorations have since decided what is
        // actually replicated, so each site's true repository load is
        // known. Re-run the selection against it and rebuild the sites
        // whose serving node changes. One pass: repartitioning under the
        // new channel shifts demand again, but only by replicating more
        // or less locally — the assignment stays budgeted against loads
        // no smaller than what the final placement imposes.
        let mut reselections = 0usize;
        if self.config.reselect {
            if let Some(sel) = &selection {
                let demand: Vec<f64> = works.iter().map(|w| w.repo_load()).collect();
                let resel = {
                    let _s = mmrepl_obs::span("plan.select");
                    crate::select::select_ancestors_with_demand(
                        system,
                        self.config.ancestor,
                        &demand,
                    )
                };
                let changed: Vec<usize> = (0..site_ids.len())
                    .filter(|&i| resel.serving[site_ids[i]] != sel.serving[site_ids[i]])
                    .collect();
                if !changed.is_empty() {
                    let mut repart = initial.clone();
                    {
                        let _s = mmrepl_obs::span("plan.partition");
                        for &i in &changed {
                            let s = site_ids[i];
                            for &p in system.pages_of(s) {
                                *repart.partition_mut(p) =
                                    crate::partition::partition_page_ordered_with(
                                        system,
                                        p,
                                        crate::partition::PartitionOrder::DecreasingSize,
                                        &resel.params[s],
                                    );
                            }
                        }
                    }
                    for &i in &changed {
                        let s = site_ids[i];
                        let mut w = {
                            let _s = mmrepl_obs::span("plan.partition");
                            SiteWork::with_params(
                                system,
                                s,
                                &repart,
                                self.config.cost,
                                self.config.include_update_load,
                                resel.params[s],
                            )
                        };
                        #[cfg(feature = "audit")]
                        crate::audit::assert_consistent(&w, crate::audit::AuditStage::Partition);
                        let st = {
                            let _s = mmrepl_obs::span("plan.storage_restore");
                            restore_storage(&mut w)
                        };
                        #[cfg(feature = "audit")]
                        crate::audit::assert_consistent(
                            &w,
                            crate::audit::AuditStage::StorageRestore,
                        );
                        let cap = {
                            let _s = mmrepl_obs::span("plan.capacity_restore");
                            restore_capacity(&mut w)
                        };
                        #[cfg(feature = "audit")]
                        crate::audit::assert_consistent(
                            &w,
                            crate::audit::AuditStage::CapacityRestore,
                        );
                        works[i] = w;
                        storage[i] = st;
                        capacity[i] = cap;
                    }
                }
                reselections = changed.len();
                if mmrepl_obs::enabled() {
                    mmrepl_obs::add("select.reselections", reselections as u64);
                }
                selection = Some(resel);
            }
        }

        if mmrepl_obs::enabled() {
            // Shard imbalance: slowest over fastest shard wall time, ×100
            // (100 = perfectly balanced). Accumulates (sums) when several
            // plans run under one recorder; traces of a single plan read
            // it directly as a ratio.
            if shard_min_ns != u64::MAX && shard_min_ns > 0 {
                mmrepl_obs::add(
                    "plan.restore.shard.imbalance_x100",
                    shard_max_ns * 100 / shard_min_ns,
                );
            }
            let mut pops = 0u64;
            let (mut dealloc, mut orphaned, mut repart, mut freed) = (0u64, 0u64, 0u64, 0u64);
            for st in &storage {
                pops += st.heap_pops;
                dealloc += st.deallocated as u64;
                orphaned += st.orphaned as u64;
                repart += st.repartitioned as u64;
                freed += st.bytes_freed;
            }
            mmrepl_obs::add("storage.heap_pops", pops);
            mmrepl_obs::add("storage.deallocated", dealloc);
            mmrepl_obs::add("storage.orphaned", orphaned);
            mmrepl_obs::add("storage.repartitioned", repart);
            mmrepl_obs::add("storage.bytes_freed", freed);
            let mut pops = 0u64;
            let (mut moves, mut dealloc, mut freed) = (0u64, 0u64, 0u64);
            for cap in &capacity {
                pops += cap.heap_pops;
                moves += cap.moves as u64;
                dealloc += cap.deallocated as u64;
                freed += cap.bytes_freed;
            }
            mmrepl_obs::add("capacity.heap_pops", pops);
            mmrepl_obs::add("capacity.moves", moves);
            mmrepl_obs::add("capacity.deallocated", dealloc);
            mmrepl_obs::add("capacity.bytes_freed", freed);
        }

        // Stage 4: distributed repository off-loading. On star systems
        // the single repository negotiates with every site (the paper's
        // protocol, bit-identical to before the tree refactor). On tree
        // systems each serving node negotiates with its own client group
        // against the node's Eq. 9 budget.
        // Either protocol fills the same per-group slot: the synchronous
        // reference rounds, or (when configured) the asynchronous
        // proposal/counter-proposal negotiation, whose richer report is
        // carried alongside the derived offload summary.
        let negotiate_cfg = self.config.negotiation;
        let offload_cfg = self.config.offload;
        let offload_group =
            |ws: &mut [SiteWork<'_>], cap: f64| -> (OffloadOutcome, Option<NegotiateReport>) {
                match &negotiate_cfg {
                    Some(ncfg) => {
                        let out = run_negotiation(ws, cap, &offload_cfg, ncfg);
                        (
                            OffloadOutcome {
                                report: out.report.as_offload(),
                                changed: out.changed,
                            },
                            Some(out.report),
                        )
                    }
                    None => (run_offload(ws, cap, &offload_cfg), None),
                }
            };
        let stage_span = if negotiate_cfg.is_some() {
            "plan.negotiate"
        } else {
            "plan.offload"
        };
        let (offload, offload_by_node, negotiation) = match &selection {
            None => {
                let repo_cap = system.repository().capacity.get();
                let (out, neg) = {
                    let _s = mmrepl_obs::span(stage_span);
                    offload_group(&mut works, repo_cap)
                };
                (out.report, Vec::new(), neg)
            }
            Some(sel) => {
                let _s = mmrepl_obs::span(stage_span);
                let topo = system.topology().expect("selection implies topology");
                // Group the per-site states contiguously by serving node
                // (ascending node, then site id — deterministic). The
                // final assembly indexes by page id, so reordering the
                // works is placement-neutral.
                works.sort_by_key(|w| (sel.serving[w.site()].index(), w.site()));
                let mut by_node = Vec::new();
                let mut neg_by_node = Vec::new();
                let mut start = 0;
                while start < works.len() {
                    let node = sel.serving[works[start].site()];
                    let mut end = start;
                    while end < works.len() && sel.serving[works[end].site()] == node {
                        end += 1;
                    }
                    let cap = topo.node(node).capacity.get();
                    let (out, neg) = offload_group(&mut works[start..end], cap);
                    by_node.push(out.report);
                    if let Some(neg) = neg {
                        neg_by_node.push(neg);
                    }
                    start = end;
                }
                let negotiation =
                    (!neg_by_node.is_empty()).then(|| NegotiateReport::aggregate(&neg_by_node));
                (aggregate_offload(&by_node), by_node, negotiation)
            }
        };

        // Assemble the final placement.
        let _assemble = mmrepl_obs::span("plan.assemble");
        let mut rows: Vec<Option<PagePartition>> = vec![None; system.n_pages()];
        for work in works {
            for (pid, part) in work.into_partitions() {
                rows[pid.index()] = Some(part);
            }
        }
        let partitions: IdVec<PageId, PagePartition> = rows
            .into_iter()
            .map(|r| r.expect("every page belongs to exactly one site"))
            .collect();
        let placement = Placement::new(system, partitions).expect("plan shapes are consistent");

        // Feasibility and objective: tree systems check Eq. 9 per
        // serving node and price the remote stream over the selected
        // channels; star systems keep the paper's global check verbatim.
        let (check, objective) = match &selection {
            None => {
                let check = ConstraintReport::check(system, &placement);
                let cm = mmrepl_model::CostModel::new(system, self.config.cost);
                (check, cm.objective(&placement))
            }
            Some(sel) => {
                let check = ConstraintReport::check_with_serving(system, &placement, &sel.serving);
                let channels: IdVec<SiteId, ServingChannel> = system
                    .sites()
                    .ids()
                    .map(|s| {
                        system
                            .serving_channel(s, sel.serving[s])
                            .expect("serving node is an ancestor of the attach node")
                    })
                    .collect();
                let cm =
                    mmrepl_model::CostModel::with_channels(system, self.config.cost, &channels);
                (check, cm.objective(&placement))
            }
        };
        let update_ok = !self.config.include_update_load
            || mmrepl_model::UpdateAwareReport::check(system, &placement).is_feasible();
        let (promotions, qos_blocked, serving) = match &selection {
            None => (0, 0, Vec::new()),
            Some(sel) => (
                sel.promotions,
                sel.qos_blocked,
                sel.serving.iter().map(|(_, n)| n.index() as u32).collect(),
            ),
        };
        let report = PlanReport {
            feasible: check.is_feasible() && update_ok,
            objective,
            storage,
            capacity,
            offload,
            serving,
            offload_by_node,
            promotions,
            qos_blocked,
            reselections,
            negotiation,
        };
        PlanOutcome { placement, report }
    }
}

/// Rolls per-node off-loading summaries into one report. Negotiations at
/// distinct nodes run concurrently, so `rounds` and `control_time` take
/// the slowest node while message and workload counters sum.
fn aggregate_offload(by_node: &[OffloadReport]) -> OffloadReport {
    let mut agg = OffloadReport {
        rounds: 0,
        messages: 0,
        control_time: 0.0,
        initial_repo_load: 0.0,
        final_repo_load: 0.0,
        absorbed: 0.0,
        swaps: 0,
        feasible: true,
        dropped: 0,
    };
    for r in by_node {
        agg.rounds = agg.rounds.max(r.rounds);
        agg.messages += r.messages;
        agg.control_time = agg.control_time.max(r.control_time);
        agg.initial_repo_load += r.initial_repo_load;
        agg.final_repo_load += r.final_repo_load;
        agg.absorbed += r.absorbed;
        agg.swaps += r.swaps;
        agg.feasible &= r.feasible;
        agg.dropped += r.dropped;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_model::{
        Attachment, BytesPerSec, CostModel, Link, NodeId, RepoNode, ReqPerSec, Secs, Topology,
    };
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn small_system(seed: u64) -> mmrepl_model::System {
        generate_system(&WorkloadParams::small(), seed).unwrap()
    }

    /// Wraps `sys` in a three-node chain: origin `N0` ← `N1`
    /// (8 KiB/s, 0.2 s) ← `N2` (4 KiB/s, 0.1 s), every site attached to
    /// the deepest node. Node capacities default to unbounded unless
    /// `edge_cap` bounds `N2`.
    fn chain_tree(sys: &System, edge_cap: ReqPerSec) -> System {
        let nodes = IdVec::from_vec(vec![
            RepoNode::default(),
            RepoNode::default(),
            RepoNode { capacity: edge_cap },
        ]);
        let parents = IdVec::from_vec(vec![
            None,
            Some((
                NodeId::new(0),
                Link {
                    bandwidth: BytesPerSec::kib_per_sec(8.0),
                    latency: Secs(0.2),
                },
            )),
            Some((
                NodeId::new(1),
                Link {
                    bandwidth: BytesPerSec::kib_per_sec(4.0),
                    latency: Secs(0.1),
                },
            )),
        ]);
        let attachments = IdVec::from_vec(
            (0..sys.n_sites())
                .map(|_| Attachment {
                    node: NodeId::new(2),
                    qos: None,
                })
                .collect(),
        );
        let topo = Topology::new(nodes, parents, attachments).unwrap();
        sys.with_topology(topo).unwrap()
    }

    #[test]
    fn single_node_tree_plan_is_bit_identical_to_star() {
        let star = small_system(9)
            .with_storage_fraction(0.5)
            .with_processing_fraction(0.8)
            .with_central_fraction(0.9);
        let topo = Topology::single_node(star.n_sites(), star.repository().capacity);
        let tree = star.with_topology(topo).unwrap();
        let a = ReplicationPolicy::new().plan(&star);
        for policy in [AncestorPolicy::Closest, AncestorPolicy::Flat] {
            let b = ReplicationPolicy::with_config(PlannerConfig {
                ancestor: policy,
                ..PlannerConfig::default()
            })
            .plan(&tree);
            assert_eq!(a.placement, b.placement, "policy {policy}");
            assert_eq!(
                a.report.objective.to_bits(),
                b.report.objective.to_bits(),
                "policy {policy}"
            );
            assert_eq!(a.report.storage, b.report.storage);
            assert_eq!(a.report.capacity, b.report.capacity);
            assert_eq!(a.report.offload, b.report.offload);
            assert_eq!(a.report.feasible, b.report.feasible);
            assert_eq!(b.report.serving, vec![0u32; star.n_sites()]);
            assert_eq!(b.report.offload_by_node.len(), 1);
            assert_eq!(b.report.promotions, 0);
        }
    }

    #[test]
    fn reliable_negotiation_plan_is_bit_identical_to_synchronous() {
        // A squeezed repository forces a real multi-round off-loading, so
        // the comparison exercises the whole protocol, not the trivial
        // zero-round exit.
        let sys = small_system(13)
            .with_processing_fraction(1.5)
            .with_central_fraction(0.1);
        let sync = ReplicationPolicy::new().plan(&sys);
        let neg = ReplicationPolicy::with_config(PlannerConfig {
            negotiation: Some(crate::negotiate::NegotiateConfig::default()),
            ..PlannerConfig::default()
        })
        .plan(&sys);
        assert_eq!(sync.placement, neg.placement);
        assert_eq!(
            sync.report.objective.to_bits(),
            neg.report.objective.to_bits()
        );
        assert_eq!(sync.report.feasible, neg.report.feasible);
        let nrep = neg.report.negotiation.expect("negotiation report present");
        assert!(
            sync.report.offload.rounds > 0,
            "comparison must be non-trivial"
        );
        assert_eq!(nrep.rounds, sync.report.offload.rounds);
        assert_eq!(nrep.swaps, sync.report.offload.swaps);
        assert!((nrep.absorbed - sync.report.offload.absorbed).abs() < 1e-12);
        assert_eq!(nrep.retries, 0);
        assert_eq!(nrep.timeouts, 0);
        assert!(sync.report.negotiation.is_none());
    }

    #[test]
    fn negotiated_tree_plan_matches_synchronous_per_node() {
        let tree = chain_tree(&small_system(14), ReqPerSec::INFINITE);
        let sync = ReplicationPolicy::new().plan(&tree);
        let neg = ReplicationPolicy::with_config(PlannerConfig {
            negotiation: Some(crate::negotiate::NegotiateConfig::default()),
            ..PlannerConfig::default()
        })
        .plan(&tree);
        assert_eq!(sync.placement, neg.placement);
        assert_eq!(sync.report.feasible, neg.report.feasible);
        assert_eq!(
            neg.report.offload_by_node.len(),
            sync.report.offload_by_node.len()
        );
        assert!(neg.report.negotiation.is_some());
    }

    #[test]
    fn closest_beats_flat_on_a_constrained_chain() {
        let tree = chain_tree(&small_system(10), ReqPerSec::INFINITE);
        let plan_with = |policy| {
            ReplicationPolicy::with_config(PlannerConfig {
                ancestor: policy,
                ..PlannerConfig::default()
            })
            .plan(&tree)
        };
        let closest = plan_with(AncestorPolicy::Closest);
        let flat = plan_with(AncestorPolicy::Flat);
        // Closest keeps every site on its attach node; flat drags every
        // remote stream through both constrained links to the origin.
        assert!(closest.report.serving.iter().all(|&n| n == 2));
        assert!(flat.report.serving.iter().all(|&n| n == 0));
        assert_eq!(closest.report.offload_by_node.len(), 1);
        assert_eq!(flat.report.offload_by_node.len(), 1);
        assert!(closest.report.feasible);
        assert!(flat.report.feasible);
        assert!(
            closest.report.objective <= flat.report.objective + 1e-9,
            "closest {} vs flat {}",
            closest.report.objective,
            flat.report.objective
        );
    }

    #[test]
    fn tight_edge_node_promotes_sites_and_splits_offload() {
        // The deepest node can barely serve anything, so closest
        // allocation promotes sites up the chain and the off-loading
        // stage negotiates per serving node.
        let tree = chain_tree(&small_system(11), ReqPerSec(0.001));
        let outcome = ReplicationPolicy::with_config(PlannerConfig {
            ancestor: AncestorPolicy::Closest,
            ..PlannerConfig::default()
        })
        .plan(&tree);
        // Nothing fits on the starved edge: every site promotes to N1.
        assert!(outcome.report.promotions >= 1);
        assert!(outcome.report.serving.iter().all(|&n| n != 2));
        let serving: IdVec<SiteId, NodeId> = outcome
            .report
            .serving
            .iter()
            .map(|&n| NodeId::new(n))
            .collect();
        let check = ConstraintReport::check_with_serving(&tree, &outcome.placement, &serving);
        assert_eq!(check.is_feasible(), outcome.report.feasible);
    }

    #[test]
    fn sites_split_across_nodes_offload_per_node() {
        // Alternate site attachments between N1 and N2 so closest
        // allocation yields two serving groups, each with its own
        // Eq. 9 negotiation.
        let sys = small_system(13);
        let nodes = IdVec::from_vec(vec![
            RepoNode::default(),
            RepoNode::default(),
            RepoNode::default(),
        ]);
        let parents = IdVec::from_vec(vec![
            None,
            Some((
                NodeId::new(0),
                Link {
                    bandwidth: BytesPerSec::kib_per_sec(8.0),
                    latency: Secs(0.2),
                },
            )),
            Some((
                NodeId::new(1),
                Link {
                    bandwidth: BytesPerSec::kib_per_sec(4.0),
                    latency: Secs(0.1),
                },
            )),
        ]);
        let attachments = IdVec::from_vec(
            (0..sys.n_sites())
                .map(|i| Attachment {
                    node: NodeId::new(1 + (i as u32 % 2)),
                    qos: None,
                })
                .collect(),
        );
        let tree = sys
            .with_topology(Topology::new(nodes, parents, attachments).unwrap())
            .unwrap();
        let outcome = ReplicationPolicy::with_config(PlannerConfig {
            ancestor: AncestorPolicy::Closest,
            ..PlannerConfig::default()
        })
        .plan(&tree);
        assert_eq!(outcome.report.promotions, 0);
        assert_eq!(outcome.report.offload_by_node.len(), 2);
        assert!(outcome.report.serving.contains(&1));
        assert!(outcome.report.serving.contains(&2));
        assert!(outcome.report.feasible);
    }

    #[test]
    fn reselect_walks_overpromoted_sites_back_to_cheaper_ancestors() {
        // The all-remote proxy overloads the 32 req/s edge node, so the
        // first selection pass promotes every site to N1. With 90% of
        // storage available the restorations replicate most demand
        // locally, and the measured repository load fits the edge — the
        // re-selection pass walks every site back to its attach node and
        // the (channel-priced) objective can only improve.
        let tree = chain_tree(
            &small_system(11).with_storage_fraction(0.9),
            ReqPerSec(32.0),
        );
        let plan = |reselect| {
            ReplicationPolicy::with_config(PlannerConfig {
                ancestor: AncestorPolicy::Closest,
                reselect,
                ..PlannerConfig::default()
            })
            .plan(&tree)
        };
        let off = plan(false);
        let on = plan(true);
        assert!(off.report.promotions >= 3);
        assert!(
            off.report.serving.iter().all(|&n| n == 1),
            "{:?}",
            off.report.serving
        );
        assert_eq!(on.report.reselections, 3);
        assert!(
            on.report.serving.iter().all(|&n| n == 2),
            "{:?}",
            on.report.serving
        );
        assert!(on.report.feasible);
        assert!(
            on.report.objective <= off.report.objective + 1e-9,
            "reselect worsened the objective: {} vs {}",
            on.report.objective,
            off.report.objective
        );
        // The pass rides the same merge discipline as every other stage:
        // bit-identical at any thread count.
        let par = ReplicationPolicy::with_config(PlannerConfig {
            ancestor: AncestorPolicy::Closest,
            reselect: true,
            ..PlannerConfig::default()
        })
        .plan_parallel(&tree, 3);
        assert_eq!(on.placement, par.placement);
        assert_eq!(on.report, par.report);
    }

    #[test]
    fn tree_plan_is_deterministic() {
        let tree = chain_tree(&small_system(12).with_storage_fraction(0.6), ReqPerSec(2.0));
        let policy = ReplicationPolicy::with_config(PlannerConfig {
            ancestor: AncestorPolicy::Closest,
            ..PlannerConfig::default()
        });
        let a = policy.plan(&tree);
        let b = policy.plan_parallel(&tree, 3);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn unconstrained_plan_is_feasible_and_matches_partition() {
        let sys = small_system(1).unconstrained();
        let outcome = ReplicationPolicy::new().plan(&sys);
        assert!(outcome.report.feasible);
        assert_eq!(outcome.report.offload.rounds, 0);
        // With no constraints, the plan must be exactly the greedy
        // partition (no restoration may fire).
        let pure = partition_all(&sys);
        assert_eq!(outcome.placement, pure);
    }

    #[test]
    fn plan_satisfies_all_constraints_under_pressure() {
        let sys = small_system(2)
            .with_storage_fraction(0.5)
            .with_processing_fraction(0.7);
        let sys = {
            // Also constrain the repository to 90% of the all-remote load.
            let full_remote = sys.full_remote_load();
            let mut s = sys.clone();
            s = s.with_central_fraction(0.9);
            assert!(s.repository().capacity.get() < full_remote.get() + 1.0);
            s
        };
        let outcome = ReplicationPolicy::new().plan(&sys);
        let check = ConstraintReport::check(&sys, &outcome.placement);
        assert!(check.is_feasible(), "violations: {:?}", check.violations);
        assert!(outcome.report.feasible);
    }

    #[test]
    fn plan_report_objective_matches_cost_model() {
        let sys = small_system(3).with_storage_fraction(0.8);
        let outcome = ReplicationPolicy::new().plan(&sys);
        let cm = CostModel::with_defaults(&sys);
        let d = cm.objective(&outcome.placement);
        assert!((outcome.report.objective - d).abs() / d < 1e-9);
    }

    #[test]
    fn tighter_storage_never_improves_objective() {
        let base = small_system(4);
        let policy = ReplicationPolicy::new();
        let mut last = f64::NEG_INFINITY;
        for &frac in &[1.0, 0.8, 0.6, 0.4, 0.2] {
            let sys = base
                .with_storage_fraction(frac)
                .with_processing_fraction(10.0);
            let outcome = policy.plan(&sys);
            // Compare on the *same* cost model (the base system estimates).
            let cm = CostModel::with_defaults(&base);
            let d = cm.objective(&outcome.placement);
            assert!(
                d >= last - 1e-6,
                "objective improved when storage shrank: {d} < {last} at {frac}"
            );
            last = d;
        }
    }

    #[test]
    fn plan_beats_extremes_on_estimates() {
        let sys = small_system(5).unconstrained();
        let outcome = ReplicationPolicy::new().plan(&sys);
        let cm = CostModel::with_defaults(&sys);
        let ours = cm.d1(&outcome.placement);
        let local = cm.d1(&Placement::all_local(&sys));
        let remote = cm.d1(&Placement::all_remote(&sys));
        assert!(ours <= local + 1e-9, "ours {ours} vs local {local}");
        assert!(ours <= remote + 1e-9, "ours {ours} vs remote {remote}");
    }

    #[test]
    fn plan_is_deterministic() {
        let sys = small_system(6).with_storage_fraction(0.6);
        let a = ReplicationPolicy::new().plan(&sys);
        let b = ReplicationPolicy::new().plan(&sys);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn parallel_plan_is_bit_identical_to_sequential() {
        let sys = small_system(8)
            .with_storage_fraction(0.5)
            .with_processing_fraction(0.8);
        let policy = ReplicationPolicy::new();
        let seq = policy.plan_parallel(&sys, 1);
        for threads in [0, 2, 3, 7] {
            let par = policy.plan_parallel(&sys, threads);
            assert_eq!(par.placement, seq.placement, "threads = {threads}");
            assert_eq!(par.report, seq.report, "threads = {threads}");
        }
    }

    /// The same bit-identity claim at paper scale (10 sites, 15k objects)
    /// and 10× scale (100 sites, 150k objects) — the tiers the tracked
    /// perf baseline runs. Minutes-long in debug builds, so run it as
    /// `cargo test --release -p mmrepl-core -- --ignored`.
    #[test]
    #[ignore = "paper/10x scale; run with --release -- --ignored"]
    fn parallel_plan_is_bit_identical_at_paper_and_ten_x_scale() {
        for mult in [1, 10] {
            let mut params = WorkloadParams::paper();
            params.n_sites *= mult;
            params.n_objects *= mult;
            let sys = generate_system(&params, 42)
                .unwrap()
                .with_storage_fraction(0.5)
                .with_processing_fraction(0.8);
            let policy = ReplicationPolicy::new();
            let seq = policy.plan_parallel(&sys, 1);
            for threads in [0, 4] {
                let par = policy.plan_parallel(&sys, threads);
                assert_eq!(par.placement, seq.placement, "x{mult}, threads = {threads}");
                assert_eq!(par.report, seq.report, "x{mult}, threads = {threads}");
            }
        }
    }

    #[test]
    fn custom_weights_shift_the_tradeoff() {
        let sys = small_system(7).with_storage_fraction(0.4);
        let d1_heavy = ReplicationPolicy::with_config(PlannerConfig {
            cost: CostParams {
                alpha1: 10.0,
                alpha2: 0.1,
            },
            ..PlannerConfig::default()
        })
        .plan(&sys);
        let d2_heavy = ReplicationPolicy::with_config(PlannerConfig {
            cost: CostParams {
                alpha1: 0.1,
                alpha2: 10.0,
            },
            ..PlannerConfig::default()
        })
        .plan(&sys);
        let cm = CostModel::with_defaults(&sys);
        // The response-time-heavy plan should win on D1, the optional-heavy
        // plan on D2 (weak inequality: small systems can tie).
        assert!(
            cm.d1(&d1_heavy.placement) <= cm.d1(&d2_heavy.placement) + 1e-9,
            "d1: {} vs {}",
            cm.d1(&d1_heavy.placement),
            cm.d1(&d2_heavy.placement)
        );
        assert!(
            cm.d2(&d2_heavy.placement) <= cm.d2(&d1_heavy.placement) + 1e-9,
            "d2: {} vs {}",
            cm.d2(&d2_heavy.placement),
            cm.d2(&d1_heavy.placement)
        );
    }
}
