//! Asynchronous off-loading negotiation over a *faulty* control plane.
//!
//! [`crate::offload::run_offload`] drives Section 4.2's rounds over a
//! perfectly reliable bus: every message arrives, exactly once, in
//! order. This module re-runs the same negotiation as a typed
//! proposal/counter-proposal protocol that survives the bus's seeded
//! fault injection ([`mmrepl_netsim::FaultConfig`]):
//!
//! * the repository sends [`NegotiateMsg::Offer`]s (round-stamped
//!   workload proposals) and sites answer with
//!   [`NegotiateMsg::Counter`]s (what they actually took plus a fresh
//!   status) — the counter *is* the counter-proposal: a site that
//!   absorbs less than asked implicitly proposes its remainder go
//!   elsewhere;
//! * lost replies time out and are retried with bounded exponential
//!   backoff; after the retry budget the repository **degrades to its
//!   last-known view** of the silent site and demotes it to L3 for the
//!   rest of the negotiation;
//! * duplicated deliveries are deduplicated by envelope sequence
//!   number, and a *resent* offer for an already-absorbed round replays
//!   the cached counter instead of absorbing twice — per-round
//!   idempotence;
//! * [`NegotiateMsg::Accept`] / [`NegotiateMsg::Abort`] close the
//!   session either way, so the protocol always terminates.
//!
//! Safety under every fault mix: absorption happens site-side through
//! [`crate::offload::absorb_workload`], which enforces Eq. 8 (site
//! processing) and Eq. 10 (storage) locally — no lost or duplicated
//! message can overcommit a site. Stale repository state only
//! *overestimates* the repository load (a lost counter hides an
//! absorption), so degradation errs toward extra offers, never toward
//! declaring Eq. 9 restored when it is not; the final report recomputes
//! the repository load from the authoritative site states.
//!
//! Strategies are pluggable via [`Negotiator`]:
//! [`GreedyProportional`] reuses [`crate::offload::paper_round_plan`]
//! verbatim, so under a reliable bus the negotiation is **bit-identical**
//! to the synchronous `OFF_LOADING_REPOSITORY` (property-tested);
//! [`DeadlineBounded`] over-asks to converge within a round deadline;
//! [`Auction`] lets the highest-headroom bidders take whole chunks.

use crate::offload::{
    absorb_workload, classify, paper_round_plan, site_index, status_of, AssignmentRule,
    OffloadConfig, OffloadReport, RoundPlan, StatusReport, EPS,
};
use crate::state::SiteWork;
use mmrepl_model::Secs;
use mmrepl_netsim::{BusStats, Endpoint, Envelope, FaultConfig, MessageBus, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Typed protocol messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NegotiateMsg {
    /// Site → repository: current status (initial report, and the reply
    /// to a [`NegotiateMsg::Probe`]).
    Status(StatusReport),
    /// Repository → site: "your status never arrived — report again".
    Probe,
    /// Repository → site: proposal — absorb `amount` req/s this round.
    Offer {
        /// Negotiation round the offer belongs to.
        round: usize,
        /// Resend attempt (0 = original). Lets traces distinguish
        /// retransmissions; sites treat every attempt identically.
        attempt: u32,
        /// Proposed workload transfer, req/s.
        amount: f64,
        /// Whether the site may allocate new objects (L1) or only
        /// re-mark stored ones (L2).
        allow_alloc: bool,
    },
    /// Site → repository: counter-proposal — what the site actually
    /// took, with its post-absorption status. Resent verbatim (from a
    /// per-round cache) if the offer is retransmitted.
    Counter {
        /// Round being answered.
        round: usize,
        /// Workload actually absorbed, req/s.
        taken: f64,
        /// Status after absorption.
        status: StatusReport,
        /// True when the site fell short of the proposal (self-demotes
        /// to L3).
        exhausted: bool,
    },
    /// Repository → site: negotiation closed, constraint restored.
    Accept,
    /// Repository → site: negotiation closed without restoring Eq. 9.
    Abort,
}

/// Which negotiation strategy the repository runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// The paper's proportional-to-headroom rounds
    /// ([`GreedyProportional`]); bit-identical to [`run_offload`] on a
    /// reliable bus.
    ///
    /// [`run_offload`]: crate::offload::run_offload
    #[default]
    GreedyProportional,
    /// [`DeadlineBounded`]: over-ask progressively so the negotiation
    /// converges within a fixed round budget.
    DeadlineBounded,
    /// [`Auction`]: highest-headroom bidders absorb whole chunks.
    Auction,
}

impl StrategyKind {
    /// Parses a CLI name (`greedy` / `deadline` / `auction`).
    pub fn parse(name: &str) -> Option<StrategyKind> {
        match name {
            "greedy" | "greedy-proportional" | "paper" => Some(StrategyKind::GreedyProportional),
            "deadline" | "deadline-bounded" => Some(StrategyKind::DeadlineBounded),
            "auction" => Some(StrategyKind::Auction),
            _ => None,
        }
    }

    /// The CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::GreedyProportional => "greedy",
            StrategyKind::DeadlineBounded => "deadline",
            StrategyKind::Auction => "auction",
        }
    }
}

/// A pluggable round planner: given the repository's current (possibly
/// stale) view, decide the next round of offers. Implementations must be
/// pure functions of the context — the driver owns all protocol state —
/// which keeps every strategy replayable and fault-agnostic.
pub trait Negotiator {
    /// Strategy name, for reports.
    fn name(&self) -> &'static str;
    /// Plans one round of offers.
    fn plan_round(&self, ctx: &RoundCtx<'_>) -> RoundPlan;
}

/// The repository's view when planning a round.
pub struct RoundCtx<'a> {
    /// Last-known per-site statuses (site order).
    pub statuses: &'a [StatusReport],
    /// Sites demoted to L3 (exhausted, or degraded after lost replies).
    pub demoted: &'a [bool],
    /// `C(R)` — the Eq. 9 budget, req/s.
    pub repo_capacity: f64,
    /// Excess-splitting rule for proportional strategies.
    pub rule: AssignmentRule,
    /// Current round (0-based).
    pub round: usize,
    /// The driver's hard round bound.
    pub max_rounds: usize,
}

/// The paper's strategy: delegate to
/// [`crate::offload::paper_round_plan`], the exact arithmetic
/// `run_offload` executes — same classification, same splits, same
/// floating-point operation order.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyProportional;

impl Negotiator for GreedyProportional {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan_round(&self, ctx: &RoundCtx<'_>) -> RoundPlan {
        paper_round_plan(ctx.statuses, ctx.demoted, ctx.repo_capacity, ctx.rule)
    }
}

/// Over-asks so the negotiation lands within `deadline_rounds`: round
/// `r` scales the paper's proportional ask by `deadline / (deadline − r)`
/// (capped at each site's headroom), and the final pre-deadline round
/// asks for full headroom outright. Trades absorbed-workload precision
/// for fewer rounds — useful when control-plane time is the scarce
/// resource (high latency or heavy loss).
#[derive(Clone, Copy, Debug)]
pub struct DeadlineBounded {
    /// Rounds the negotiation should converge within.
    pub deadline_rounds: usize,
}

impl Negotiator for DeadlineBounded {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn plan_round(&self, ctx: &RoundCtx<'_>) -> RoundPlan {
        let base = paper_round_plan(ctx.statuses, ctx.demoted, ctx.repo_capacity, ctx.rule);
        let RoundPlan::Assign(assignments) = base else {
            return base;
        };
        let deadline = self.deadline_rounds.max(1);
        let remaining = deadline.saturating_sub(ctx.round);
        let boosted = assignments
            .into_iter()
            .map(|(i, amount, allow_alloc)| {
                let headroom = ctx.statuses[i].headroom;
                let ask = if remaining <= 1 {
                    // Last round before the deadline: ask for everything
                    // the site can take.
                    headroom.max(amount)
                } else {
                    (amount * deadline as f64 / remaining as f64).min(headroom.max(amount))
                };
                (i, ask, allow_alloc)
            })
            .collect();
        RoundPlan::Assign(boosted)
    }
}

/// Auction-style rounds: every non-demoted site with headroom "bids" its
/// headroom; the repository awards the excess to the highest bidders in
/// whole-headroom chunks (ties broken by site order, L1 before L2 at the
/// same index via classification order). Fewer, larger transfers —
/// fewer messages, lumpier placement.
#[derive(Clone, Copy, Debug, Default)]
pub struct Auction;

impl Negotiator for Auction {
    fn name(&self) -> &'static str {
        "auction"
    }

    fn plan_round(&self, ctx: &RoundCtx<'_>) -> RoundPlan {
        let p_r: f64 = ctx.statuses.iter().map(|s| s.repo_load).sum();
        if p_r <= ctx.repo_capacity + EPS {
            return RoundPlan::Met;
        }
        let (l1, l2) = classify(ctx.statuses, ctx.demoted);
        if l1.is_empty() && l2.is_empty() {
            return RoundPlan::Stuck;
        }
        let mut bidders: Vec<(usize, bool)> = l1
            .into_iter()
            .map(|i| (i, true))
            .chain(l2.into_iter().map(|i| (i, false)))
            .collect();
        bidders.sort_by(|a, b| {
            ctx.statuses[b.0]
                .headroom
                .total_cmp(&ctx.statuses[a.0].headroom)
                .then(a.0.cmp(&b.0))
        });
        let mut excess = p_r - ctx.repo_capacity;
        let mut assignments = Vec::new();
        for (i, allow_alloc) in bidders {
            if excess <= EPS {
                break;
            }
            let take = ctx.statuses[i].headroom.min(excess);
            assignments.push((i, take, allow_alloc));
            excess -= take;
        }
        RoundPlan::Assign(assignments)
    }
}

/// Asynchronous-negotiation knobs, layered on top of [`OffloadConfig`]
/// (which keeps owning latency, `max_rounds`, `max_swaps` and the split
/// rule).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NegotiateConfig {
    /// Round-planning strategy.
    pub strategy: StrategyKind,
    /// Round budget the [`DeadlineBounded`] strategy converges within
    /// (ignored by the other strategies).
    pub deadline_rounds: usize,
    /// Control-plane fault injection (drop/duplicate/reorder/jitter).
    pub faults: FaultConfig,
    /// Initial reply timeout. Must exceed one round trip or every
    /// exchange times out spuriously; the default is 5× the default
    /// one-way latency.
    pub timeout: Secs,
    /// Resend attempts per exchange before degrading to last-known
    /// state.
    pub max_retries: u32,
    /// Timeout multiplier per retry (bounded exponential backoff).
    pub backoff: f64,
}

impl Default for NegotiateConfig {
    fn default() -> Self {
        NegotiateConfig {
            strategy: StrategyKind::GreedyProportional,
            deadline_rounds: 4,
            faults: FaultConfig::reliable(),
            timeout: Secs(0.5),
            max_retries: 3,
            backoff: 2.0,
        }
    }
}

impl NegotiateConfig {
    /// Builds the configured strategy.
    pub fn negotiator(&self) -> Box<dyn Negotiator> {
        match self.strategy {
            StrategyKind::GreedyProportional => Box::new(GreedyProportional),
            StrategyKind::DeadlineBounded => Box::new(DeadlineBounded {
                deadline_rounds: self.deadline_rounds.max(1),
            }),
            StrategyKind::Auction => Box::new(Auction),
        }
    }

    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate()?;
        if !(self.timeout.is_valid() && self.timeout.get() > 0.0) {
            return Err(format!(
                "negotiation timeout {:?} must be > 0",
                self.timeout
            ));
        }
        if !(self.backoff.is_finite() && self.backoff >= 1.0) {
            return Err(format!("backoff {} must be >= 1", self.backoff));
        }
        Ok(())
    }
}

/// What the negotiation did and what it cost.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NegotiateReport {
    /// Strategy that ran.
    pub strategy: StrategyKind,
    /// Offer/counter rounds executed.
    pub rounds: usize,
    /// Messages resent after timeouts (probes + offers).
    pub retries: u64,
    /// Reply deadlines that expired.
    pub timeouts: u64,
    /// Exchanges the repository gave up on: the silent site's last-known
    /// status was kept and the site demoted to L3.
    pub degraded_sites: u64,
    /// Envelope copies discarded by sequence-number dedup.
    pub duplicates_ignored: u64,
    /// In-order-but-late messages ignored (old-round counters, repeat
    /// statuses); fresher ones still refresh the repository's view.
    pub stale_replies: u64,
    /// Cached counters replayed for retransmitted offers (per-round
    /// idempotence at the sites).
    pub replayed_counters: u64,
    /// Envelopes delivered in total.
    pub messages: u64,
    /// Simulated control-plane time, seconds.
    pub control_time: f64,
    /// `P(R)` before negotiation (believed, from collected statuses).
    pub initial_repo_load: f64,
    /// `P(R)` after — recomputed from the authoritative site states,
    /// not from the possibly stale protocol view.
    pub final_repo_load: f64,
    /// Workload the repository saw confirmed by counters, req/s (lost
    /// counters undercount; `final_repo_load` stays authoritative).
    pub absorbed: f64,
    /// Object swaps performed by storage-full sites.
    pub swaps: usize,
    /// Whether Eq. 9 holds on the authoritative final state.
    pub feasible: bool,
    /// Bus-level fault accounting.
    pub bus: BusStats,
}

impl NegotiateReport {
    /// The subset of fields shared with the synchronous protocol, for
    /// report slots that expect an [`OffloadReport`].
    pub fn as_offload(&self) -> OffloadReport {
        OffloadReport {
            rounds: self.rounds,
            messages: self.messages,
            control_time: self.control_time,
            initial_repo_load: self.initial_repo_load,
            final_repo_load: self.final_repo_load,
            absorbed: self.absorbed,
            swaps: self.swaps,
            feasible: self.feasible,
            dropped: self.bus.dropped,
        }
    }

    /// Rolls per-serving-node reports into one (tree systems).
    /// Negotiations at distinct nodes run concurrently: `rounds` and
    /// `control_time` take the slowest node, counters sum, feasibility
    /// ANDs.
    pub fn aggregate(by_node: &[NegotiateReport]) -> NegotiateReport {
        let mut agg = NegotiateReport {
            strategy: by_node.first().map(|r| r.strategy).unwrap_or_default(),
            rounds: 0,
            retries: 0,
            timeouts: 0,
            degraded_sites: 0,
            duplicates_ignored: 0,
            stale_replies: 0,
            replayed_counters: 0,
            messages: 0,
            control_time: 0.0,
            initial_repo_load: 0.0,
            final_repo_load: 0.0,
            absorbed: 0.0,
            swaps: 0,
            feasible: true,
            bus: BusStats::default(),
        };
        for r in by_node {
            agg.rounds = agg.rounds.max(r.rounds);
            agg.retries += r.retries;
            agg.timeouts += r.timeouts;
            agg.degraded_sites += r.degraded_sites;
            agg.duplicates_ignored += r.duplicates_ignored;
            agg.stale_replies += r.stale_replies;
            agg.replayed_counters += r.replayed_counters;
            agg.messages += r.messages;
            agg.control_time = agg.control_time.max(r.control_time);
            agg.initial_repo_load += r.initial_repo_load;
            agg.final_repo_load += r.final_repo_load;
            agg.absorbed += r.absorbed;
            agg.swaps += r.swaps;
            agg.feasible &= r.feasible;
            agg.bus.sent += r.bus.sent;
            agg.bus.delivered += r.bus.delivered;
            agg.bus.dropped += r.bus.dropped;
            agg.bus.duplicated_extra += r.bus.duplicated_extra;
            agg.bus.reordered += r.bus.reordered;
            agg.bus.jittered += r.bus.jittered;
        }
        agg
    }
}

/// Report plus whether any placement marks changed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NegotiateOutcome {
    /// The negotiation report.
    pub report: NegotiateReport,
    /// Whether any placement marks changed.
    pub changed: bool,
}

/// One site's protocol agent: envelope dedup plus the per-round counter
/// cache that makes offers idempotent.
struct SiteAgent {
    /// Envelope seqs already handled (duplicate copies are discarded).
    seen: HashSet<u64>,
    /// Cached counter per round: `(taken, status, exhausted)`. A resent
    /// offer replays this instead of absorbing again.
    counters: Vec<Option<(f64, StatusReport, bool)>>,
    /// Accept/Abort received.
    done: bool,
}

/// Per-site info-freshness tag: 0 = nothing, 1 = initial status, round
/// `r`'s counter = `r + 2`. Late messages only refresh strictly fresher
/// state.
type Tag = u64;

/// The repository's protocol state.
struct RepoState {
    statuses: Vec<StatusReport>,
    tags: Vec<Tag>,
    demoted: Vec<bool>,
    /// Sites with an outstanding offer this round.
    pending: Vec<bool>,
    current_round: usize,
    round_absorbed: f64,
    seen: HashSet<u64>,
}

/// Counters the driver accumulates into the report.
#[derive(Default)]
struct Tally {
    retries: u64,
    timeouts: u64,
    degraded_sites: u64,
    duplicates_ignored: u64,
    stale_replies: u64,
    replayed_counters: u64,
    swaps: usize,
    changed: bool,
}

/// Runs the configured strategy; see [`run_negotiation_with`].
pub fn run_negotiation(
    works: &mut [SiteWork<'_>],
    repo_capacity: f64,
    offload: &OffloadConfig,
    config: &NegotiateConfig,
) -> NegotiateOutcome {
    run_negotiation_with(
        works,
        repo_capacity,
        offload,
        config,
        config.negotiator().as_ref(),
    )
}

/// Drives the asynchronous negotiation over `works` against a repository
/// (or serving node) of capacity `repo_capacity` req/s, with `strategy`
/// planning each round. Always terminates: rounds are bounded by
/// `offload.max_rounds`, each exchange by `config.max_retries`, and the
/// closing drain by fuel.
pub fn run_negotiation_with(
    works: &mut [SiteWork<'_>],
    repo_capacity: f64,
    offload: &OffloadConfig,
    config: &NegotiateConfig,
    strategy: &dyn Negotiator,
) -> NegotiateOutcome {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid negotiation config: {e}"));
    let n = works.len();
    let mut bus: MessageBus<NegotiateMsg> =
        MessageBus::with_faults(offload.bus_latency, config.faults);
    let mut agents: Vec<SiteAgent> = (0..n)
        .map(|_| SiteAgent {
            seen: HashSet::new(),
            counters: Vec::new(),
            done: false,
        })
        .collect();
    let mut repo = RepoState {
        statuses: vec![
            StatusReport {
                space: 0,
                headroom: 0.0,
                repo_load: 0.0,
            };
            n
        ],
        tags: vec![0; n],
        demoted: vec![false; n],
        pending: vec![false; n],
        current_round: 0,
        round_absorbed: 0.0,
        seen: HashSet::new(),
    };
    let mut tally = Tally::default();

    // Phase A — status collection. Sites report proactively; the
    // repository probes whoever stays silent, and after the retry budget
    // falls back to its last-known model of the site: the state it
    // computed when it handed out the placement, which is exactly
    // `status_of` before any absorption has run.
    for w in works.iter() {
        bus.send(
            Endpoint::Site(w.site()),
            Endpoint::Repository,
            NegotiateMsg::Status(status_of(w)),
        );
    }
    let mut attempt = 0u32;
    loop {
        let deadline = bus.now().after(backoff_timeout(config, attempt));
        pump(
            &mut bus,
            works,
            &mut agents,
            &mut repo,
            &mut tally,
            offload,
            deadline,
            |repo| repo.tags.iter().all(|&t| t > 0),
        );
        if repo.tags.iter().all(|&t| t > 0) {
            break;
        }
        bus.advance_to(deadline);
        tally.timeouts += 1;
        if attempt >= config.max_retries {
            for (i, work) in works.iter().enumerate().take(n) {
                if repo.tags[i] == 0 {
                    repo.statuses[i] = status_of(work);
                    repo.tags[i] = 1;
                    tally.degraded_sites += 1;
                }
            }
            break;
        }
        for (i, work) in works.iter().enumerate().take(n) {
            if repo.tags[i] == 0 {
                bus.send(
                    Endpoint::Repository,
                    Endpoint::Site(work.site()),
                    NegotiateMsg::Probe,
                );
                tally.retries += 1;
            }
        }
        attempt += 1;
    }

    let initial_repo_load: f64 = repo.statuses.iter().map(|s| s.repo_load).sum();
    let mut rounds = 0usize;
    let mut absorbed_total = 0.0f64;
    let mut believed_feasible = true;

    // Phase B — offer/counter rounds.
    loop {
        let p_r: f64 = repo.statuses.iter().map(|s| s.repo_load).sum();
        if p_r <= repo_capacity + EPS {
            break;
        }
        if rounds >= offload.max_rounds {
            believed_feasible = false;
            break;
        }
        let ctx = RoundCtx {
            statuses: &repo.statuses,
            demoted: &repo.demoted,
            repo_capacity,
            rule: offload.assignment,
            round: rounds,
            max_rounds: offload.max_rounds,
        };
        let assignments = match strategy.plan_round(&ctx) {
            RoundPlan::Met => break, // unreachable: checked above
            RoundPlan::Stuck => {
                believed_feasible = false;
                break;
            }
            RoundPlan::Assign(a) => a,
        };
        let _round_span = mmrepl_obs::span("negotiate.round");

        repo.current_round = rounds;
        repo.round_absorbed = 0.0;
        repo.pending.iter_mut().for_each(|p| *p = false);
        for &(i, amount, allow_alloc) in &assignments {
            repo.pending[i] = true;
            bus.send(
                Endpoint::Repository,
                Endpoint::Site(works[i].site()),
                NegotiateMsg::Offer {
                    round: rounds,
                    attempt: 0,
                    amount,
                    allow_alloc,
                },
            );
        }
        let mut attempt = 0u32;
        loop {
            let deadline = bus.now().after(backoff_timeout(config, attempt));
            pump(
                &mut bus,
                works,
                &mut agents,
                &mut repo,
                &mut tally,
                offload,
                deadline,
                |repo| !repo.pending.iter().any(|&p| p),
            );
            if !repo.pending.iter().any(|&p| p) {
                break;
            }
            bus.advance_to(deadline);
            tally.timeouts += 1;
            if attempt >= config.max_retries {
                // Degrade: keep the silent sites' last-known statuses
                // (stale at worst overestimates their repository load —
                // a lost counter hides an absorption, never invents one)
                // and demote them to L3 for the remaining rounds.
                for i in 0..n {
                    if repo.pending[i] {
                        repo.pending[i] = false;
                        repo.demoted[i] = true;
                        tally.degraded_sites += 1;
                    }
                }
                break;
            }
            for &(i, amount, allow_alloc) in &assignments {
                if repo.pending[i] {
                    bus.send(
                        Endpoint::Repository,
                        Endpoint::Site(works[i].site()),
                        NegotiateMsg::Offer {
                            round: rounds,
                            attempt: attempt + 1,
                            amount,
                            allow_alloc,
                        },
                    );
                    tally.retries += 1;
                }
            }
            attempt += 1;
        }

        rounds += 1;
        absorbed_total += repo.round_absorbed;
        if repo.round_absorbed <= EPS {
            // Nobody moved (or every counter was lost): terminate rather
            // than spin.
            believed_feasible =
                repo.statuses.iter().map(|s| s.repo_load).sum::<f64>() <= repo_capacity + EPS;
            break;
        }
    }

    // Close the session either way, then drain the bus with fuel — a
    // still-in-flight duplicated offer can trigger one cached-counter
    // replay each, so the cascade is one level deep and the fuel bound
    // is belt-and-braces.
    let settle_span = mmrepl_obs::span("negotiate.settle");
    let closing = if believed_feasible {
        NegotiateMsg::Accept
    } else {
        NegotiateMsg::Abort
    };
    for w in works.iter() {
        bus.send(Endpoint::Repository, Endpoint::Site(w.site()), closing);
    }
    let fuel = bus.in_flight() * 4 + 16 * n + 64;
    let _left = drain_with_handler(
        &mut bus,
        works,
        &mut agents,
        &mut repo,
        &mut tally,
        offload,
        fuel,
    );
    drop(settle_span);

    // The report's final view is authoritative, not the protocol's
    // belief: recompute Eq. 9 from the actual site states.
    let final_repo_load: f64 = works.iter().map(|w| w.repo_load()).sum();
    let report = NegotiateReport {
        strategy: StrategyKind::parse(strategy.name()).unwrap_or_default(),
        rounds,
        retries: tally.retries,
        timeouts: tally.timeouts,
        degraded_sites: tally.degraded_sites,
        duplicates_ignored: tally.duplicates_ignored,
        stale_replies: tally.stale_replies,
        replayed_counters: tally.replayed_counters,
        messages: bus.stats().delivered,
        control_time: bus.now().get(),
        initial_repo_load,
        final_repo_load,
        absorbed: absorbed_total,
        swaps: tally.swaps,
        feasible: final_repo_load <= repo_capacity + EPS,
        bus: bus.stats(),
    };
    if mmrepl_obs::enabled() {
        mmrepl_obs::add("negotiate.rounds", report.rounds as u64);
        mmrepl_obs::add("negotiate.retries", report.retries);
        mmrepl_obs::add("negotiate.timeouts", report.timeouts);
        mmrepl_obs::add("negotiate.degraded_sites", report.degraded_sites);
        mmrepl_obs::add("negotiate.duplicates_ignored", report.duplicates_ignored);
        mmrepl_obs::add("negotiate.messages", report.messages);
        mmrepl_obs::record_value("negotiate.absorbed_reqps", report.absorbed);
        // Live mirrors of the same tallies for the telemetry plane.
        mmrepl_obs::counter_add("negotiate.rounds", report.rounds as u64);
        mmrepl_obs::counter_add("negotiate.retries", report.retries);
        mmrepl_obs::counter_add("negotiate.timeouts", report.timeouts);
        mmrepl_obs::counter_add("negotiate.degraded_sites", report.degraded_sites);
        mmrepl_obs::counter_add("negotiate.duplicates_ignored", report.duplicates_ignored);
        mmrepl_obs::counter_add("negotiate.messages", report.messages);
    }
    NegotiateOutcome {
        report,
        changed: tally.changed,
    }
}

/// The retry deadline grows exponentially but stays bounded (the
/// exponent caps at 16 doublings — far beyond any real retry budget —
/// so a misconfigured backoff cannot overflow to infinity).
fn backoff_timeout(config: &NegotiateConfig, attempt: u32) -> f64 {
    config.timeout.get() * config.backoff.powi(attempt.min(16) as i32)
}

/// Delivers every message due at or before `deadline`, stopping early
/// when `done` says the repository got what it was waiting for.
#[allow(clippy::too_many_arguments)]
fn pump(
    bus: &mut MessageBus<NegotiateMsg>,
    works: &mut [SiteWork<'_>],
    agents: &mut [SiteAgent],
    repo: &mut RepoState,
    tally: &mut Tally,
    offload: &OffloadConfig,
    deadline: SimTime,
    done: impl Fn(&RepoState) -> bool,
) {
    while !done(repo) {
        match bus.peek_time() {
            Some(t) if t <= deadline => {
                let env = bus.deliver_next().expect("peeked");
                handle(env, bus, works, agents, repo, tally, offload);
            }
            _ => break,
        }
    }
}

/// Fuel-bounded closing drain; returns messages left in flight.
fn drain_with_handler(
    bus: &mut MessageBus<NegotiateMsg>,
    works: &mut [SiteWork<'_>],
    agents: &mut [SiteAgent],
    repo: &mut RepoState,
    tally: &mut Tally,
    offload: &OffloadConfig,
    fuel: usize,
) -> usize {
    for _ in 0..fuel {
        let Some(env) = bus.deliver_next() else {
            return 0;
        };
        handle(env, bus, works, agents, repo, tally, offload);
    }
    bus.in_flight()
}

/// Dispatches one delivered envelope to its party's state machine.
fn handle(
    env: Envelope<NegotiateMsg>,
    bus: &mut MessageBus<NegotiateMsg>,
    works: &mut [SiteWork<'_>],
    agents: &mut [SiteAgent],
    repo: &mut RepoState,
    tally: &mut Tally,
    offload: &OffloadConfig,
) {
    match env.to {
        Endpoint::Site(site) => {
            let i = site_index(works, site);
            if !agents[i].seen.insert(env.seq) {
                tally.duplicates_ignored += 1;
                return;
            }
            match env.payload {
                NegotiateMsg::Probe => {
                    // Idempotent read: always answer with fresh status.
                    bus.send(
                        Endpoint::Site(site),
                        Endpoint::Repository,
                        NegotiateMsg::Status(status_of(&works[i])),
                    );
                }
                NegotiateMsg::Offer {
                    round,
                    amount,
                    allow_alloc,
                    ..
                } => {
                    if agents[i].counters.len() <= round {
                        agents[i].counters.resize(round + 1, None);
                    }
                    let (taken, status, exhausted) = match agents[i].counters[round] {
                        // A retransmitted offer for a round this site
                        // already absorbed: replay the cached counter
                        // verbatim — absorbing twice would double-take.
                        Some(cached) => {
                            tally.replayed_counters += 1;
                            cached
                        }
                        None => {
                            let cfg_swaps = if allow_alloc { 0 } else { offload.max_swaps };
                            let result =
                                absorb_workload(&mut works[i], amount, allow_alloc, cfg_swaps);
                            #[cfg(feature = "audit")]
                            crate::audit::assert_consistent(
                                &works[i],
                                crate::audit::AuditStage::OffloadRound,
                            );
                            tally.swaps += result.swaps;
                            if result.absorbed > EPS {
                                tally.changed = true;
                            }
                            let reply = (result.absorbed, status_of(&works[i]), result.exhausted);
                            agents[i].counters[round] = Some(reply);
                            reply
                        }
                    };
                    bus.send(
                        Endpoint::Site(site),
                        Endpoint::Repository,
                        NegotiateMsg::Counter {
                            round,
                            taken,
                            status,
                            exhausted,
                        },
                    );
                }
                NegotiateMsg::Accept | NegotiateMsg::Abort => agents[i].done = true,
                // Site-bound Status/Counter never happens; ignore.
                NegotiateMsg::Status(_) | NegotiateMsg::Counter { .. } => {
                    tally.stale_replies += 1;
                }
            }
        }
        Endpoint::Repository => {
            let Endpoint::Site(site) = env.from else {
                tally.stale_replies += 1;
                return;
            };
            let i = site_index(works, site);
            if !repo.seen.insert(env.seq) {
                tally.duplicates_ignored += 1;
                return;
            }
            match env.payload {
                NegotiateMsg::Status(st) => {
                    if repo.tags[i] == 0 {
                        repo.statuses[i] = st;
                        repo.tags[i] = 1;
                    } else {
                        tally.stale_replies += 1;
                    }
                }
                NegotiateMsg::Counter {
                    round,
                    taken,
                    status,
                    exhausted,
                } => {
                    let tag: Tag = round as Tag + 2;
                    if round == repo.current_round && repo.pending[i] {
                        repo.pending[i] = false;
                        repo.statuses[i] = status;
                        repo.tags[i] = tag;
                        if exhausted {
                            repo.demoted[i] = true;
                        }
                        repo.round_absorbed += taken;
                    } else {
                        // Late counter (the exchange already timed out or
                        // this is a replay): it still carries the site's
                        // freshest state — refresh the view if it is
                        // strictly newer, but never un-demote.
                        tally.stale_replies += 1;
                        if tag > repo.tags[i] {
                            repo.statuses[i] = status;
                            repo.tags[i] = tag;
                            if exhausted {
                                repo.demoted[i] = true;
                            }
                        }
                    }
                }
                // Repository-bound Probe/Offer/Accept/Abort never
                // happens; ignore.
                _ => tally.stale_replies += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::restore_capacity;
    use crate::offload::run_offload;
    use crate::partition::partition_all;
    use crate::storage::restore_storage;
    use mmrepl_model::{CostParams, System};
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn restored_works(sys: &System) -> Vec<SiteWork<'_>> {
        let placement = partition_all(sys);
        sys.sites()
            .ids()
            .map(|s| {
                let mut w = SiteWork::new(sys, s, &placement, CostParams::default());
                restore_storage(&mut w);
                restore_capacity(&mut w);
                w
            })
            .collect()
    }

    fn site_fingerprints(works: &[SiteWork<'_>]) -> Vec<(u64, u64, u64, u64)> {
        works
            .iter()
            .map(|w| {
                (
                    w.load().to_bits(),
                    w.repo_load().to_bits(),
                    w.space_left(),
                    w.total_d().to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn reliable_bus_matches_synchronous_offload_bit_for_bit() {
        let sys = generate_system(&WorkloadParams::small(), 2)
            .unwrap()
            .with_processing_fraction(1.2);
        let mut sync_works = restored_works(&sys);
        let initial: f64 = sync_works.iter().map(|w| w.repo_load()).sum();
        let cap = initial * 0.7;
        let sync = run_offload(&mut sync_works, cap, &OffloadConfig::default());

        let mut async_works = restored_works(&sys);
        let neg = run_negotiation(
            &mut async_works,
            cap,
            &OffloadConfig::default(),
            &NegotiateConfig::default(),
        );

        assert_eq!(
            site_fingerprints(&sync_works),
            site_fingerprints(&async_works)
        );
        assert_eq!(neg.report.rounds, sync.report.rounds);
        assert!((neg.report.absorbed - sync.report.absorbed).abs() < 1e-12);
        assert_eq!(neg.report.swaps, sync.report.swaps);
        assert_eq!(neg.report.feasible, sync.report.feasible);
        assert_eq!(neg.changed, sync.changed);
        assert_eq!(neg.report.timeouts, 0);
        assert_eq!(neg.report.retries, 0);
        assert_eq!(neg.report.degraded_sites, 0);
        assert_eq!(neg.report.bus.dropped, 0);
        for w in &async_works {
            w.validate_consistency();
        }
    }

    #[test]
    fn lossy_bus_terminates_and_preserves_feasibility_invariants() {
        for seed in 0..8u64 {
            let sys = generate_system(&WorkloadParams::small(), 2)
                .unwrap()
                .with_processing_fraction(1.2);
            let mut works = restored_works(&sys);
            let initial: f64 = works.iter().map(|w| w.repo_load()).sum();
            let cap = initial * 0.7;
            let config = NegotiateConfig {
                faults: FaultConfig::lossy(seed),
                ..NegotiateConfig::default()
            };
            let neg = run_negotiation(&mut works, cap, &OffloadConfig::default(), &config);
            // Eq. 8 + 10 are site-local and must hold under every fault
            // mix; Eq. 9 feasibility must be reported from the
            // authoritative state.
            for w in &works {
                assert!(
                    w.load() <= w.capacity() + 1e-6,
                    "Eq. 8 broken (seed {seed})"
                );
                assert!(
                    w.storage_used() <= w.storage_capacity(),
                    "Eq. 10 broken (seed {seed})"
                );
                w.validate_consistency();
            }
            let actual: f64 = works.iter().map(|w| w.repo_load()).sum();
            assert!(
                (neg.report.final_repo_load - actual).abs() < 1e-9,
                "final_repo_load not authoritative (seed {seed})"
            );
            assert_eq!(neg.report.feasible, actual <= cap + EPS, "seed {seed}");
            // The accounting ledger closes.
            let st = neg.report.bus;
            assert_eq!(st.sent + st.duplicated_extra, st.delivered + st.dropped);
        }
    }

    #[test]
    fn chaos_bus_terminates_for_every_strategy() {
        for strategy in [
            StrategyKind::GreedyProportional,
            StrategyKind::DeadlineBounded,
            StrategyKind::Auction,
        ] {
            for seed in [3u64, 17, 99] {
                let sys = generate_system(&WorkloadParams::small(), 4)
                    .unwrap()
                    .with_processing_fraction(1.3);
                let mut works = restored_works(&sys);
                let initial: f64 = works.iter().map(|w| w.repo_load()).sum();
                let config = NegotiateConfig {
                    strategy,
                    faults: FaultConfig::chaos(seed),
                    ..NegotiateConfig::default()
                };
                let neg = run_negotiation(
                    &mut works,
                    initial * 0.8,
                    &OffloadConfig::default(),
                    &config,
                );
                assert!(neg.report.rounds <= OffloadConfig::default().max_rounds);
                for w in &works {
                    assert!(w.load() <= w.capacity() + 1e-6);
                    assert!(w.storage_used() <= w.storage_capacity());
                    w.validate_consistency();
                }
            }
        }
    }

    #[test]
    fn total_silence_degrades_to_last_known_state() {
        // Every message drops (except: drop < 1.0 required, so use 0.99
        // with a seed that kills the whole exchange — instead force it
        // with retries = 0 and a fully dropping-ish config). With nothing
        // delivered, the repository falls back to its own model of every
        // site and the negotiation still terminates with a sane report.
        let sys = generate_system(&WorkloadParams::small(), 5)
            .unwrap()
            .with_processing_fraction(1.2);
        let mut works = restored_works(&sys);
        let initial: f64 = works.iter().map(|w| w.repo_load()).sum();
        let cap = initial * 0.7;
        let config = NegotiateConfig {
            faults: FaultConfig {
                drop: 0.99,
                duplicate: 0.0,
                reorder: 0.0,
                jitter: Secs(0.0),
                seed: 11,
            },
            max_retries: 1,
            ..NegotiateConfig::default()
        };
        let neg = run_negotiation(&mut works, cap, &OffloadConfig::default(), &config);
        assert!(neg.report.timeouts > 0 || neg.report.bus.dropped == 0);
        let actual: f64 = works.iter().map(|w| w.repo_load()).sum();
        assert!((neg.report.final_repo_load - actual).abs() < 1e-9);
        for w in &works {
            w.validate_consistency();
        }
    }

    #[test]
    fn duplicated_offers_absorb_exactly_once() {
        // Heavy duplication, zero loss: every offer may arrive twice, but
        // the per-round counter cache means each round absorbs once — so
        // the outcome must be bit-identical to the reliable run.
        let sys = generate_system(&WorkloadParams::small(), 2)
            .unwrap()
            .with_processing_fraction(1.2);
        let mut reliable_works = restored_works(&sys);
        let initial: f64 = reliable_works.iter().map(|w| w.repo_load()).sum();
        let cap = initial * 0.7;
        let reliable = run_negotiation(
            &mut reliable_works,
            cap,
            &OffloadConfig::default(),
            &NegotiateConfig::default(),
        );

        let mut dup_works = restored_works(&sys);
        let config = NegotiateConfig {
            faults: FaultConfig {
                drop: 0.0,
                duplicate: 0.9,
                reorder: 0.0,
                jitter: Secs(0.0),
                seed: 21,
            },
            ..NegotiateConfig::default()
        };
        let dup = run_negotiation(&mut dup_works, cap, &OffloadConfig::default(), &config);
        assert!(dup.report.duplicates_ignored > 0, "{:?}", dup.report);
        assert_eq!(
            site_fingerprints(&reliable_works),
            site_fingerprints(&dup_works)
        );
        assert_eq!(dup.report.rounds, reliable.report.rounds);
        assert!((dup.report.absorbed - reliable.report.absorbed).abs() < 1e-12);
    }

    #[test]
    fn negotiation_is_deterministic_per_seed() {
        let sys = generate_system(&WorkloadParams::small(), 8)
            .unwrap()
            .with_processing_fraction(1.3);
        let run = |seed: u64| {
            let mut works = restored_works(&sys);
            let initial: f64 = works.iter().map(|w| w.repo_load()).sum();
            let config = NegotiateConfig {
                faults: FaultConfig::lossy(seed),
                ..NegotiateConfig::default()
            };
            let o = run_negotiation(
                &mut works,
                initial * 0.75,
                &OffloadConfig::default(),
                &config,
            );
            (o.report, site_fingerprints(&works))
        };
        let (ra, fa) = run(7);
        let (rb, fb) = run(7);
        assert_eq!(ra, rb);
        assert_eq!(fa, fb);
    }

    #[test]
    fn deadline_strategy_converges_in_fewer_or_equal_rounds() {
        let sys = generate_system(&WorkloadParams::small(), 9)
            .unwrap()
            .with_processing_fraction(1.4);
        let run = |strategy: StrategyKind| {
            let mut works = restored_works(&sys);
            let initial: f64 = works.iter().map(|w| w.repo_load()).sum();
            let config = NegotiateConfig {
                strategy,
                deadline_rounds: 2,
                ..NegotiateConfig::default()
            };
            run_negotiation(
                &mut works,
                initial * 0.6,
                &OffloadConfig::default(),
                &config,
            )
            .report
        };
        let greedy = run(StrategyKind::GreedyProportional);
        let deadline = run(StrategyKind::DeadlineBounded);
        assert!(greedy.feasible);
        assert!(deadline.feasible);
        assert!(
            deadline.rounds <= greedy.rounds,
            "deadline {} rounds vs greedy {}",
            deadline.rounds,
            greedy.rounds
        );
    }

    #[test]
    fn auction_restores_the_constraint() {
        let sys = generate_system(&WorkloadParams::small(), 10)
            .unwrap()
            .with_processing_fraction(1.4);
        let mut works = restored_works(&sys);
        let initial: f64 = works.iter().map(|w| w.repo_load()).sum();
        let cap = initial * 0.7;
        let config = NegotiateConfig {
            strategy: StrategyKind::Auction,
            ..NegotiateConfig::default()
        };
        let neg = run_negotiation(&mut works, cap, &OffloadConfig::default(), &config);
        assert!(neg.report.feasible, "{:?}", neg.report);
        let actual: f64 = works.iter().map(|w| w.repo_load()).sum();
        assert!(actual <= cap + 1e-6);
        for w in &works {
            w.validate_consistency();
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for k in [
            StrategyKind::GreedyProportional,
            StrategyKind::DeadlineBounded,
            StrategyKind::Auction,
        ] {
            assert_eq!(StrategyKind::parse(k.name()), Some(k));
        }
        assert_eq!(StrategyKind::parse("nope"), None);
    }

    #[test]
    #[should_panic(expected = "invalid negotiation config")]
    fn rejects_sub_one_backoff() {
        let sys = generate_system(&WorkloadParams::small(), 1).unwrap();
        let mut works = restored_works(&sys);
        let config = NegotiateConfig {
            backoff: 0.5,
            ..NegotiateConfig::default()
        };
        let _ = run_negotiation(&mut works, 1.0, &OffloadConfig::default(), &config);
    }
}
