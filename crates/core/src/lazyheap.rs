//! A lazily-revalidated min-heap for greedy restoration loops.
//!
//! Both restoration stages (Eq. 10 storage, Eq. 8 capacity) rank
//! candidates by a float key that goes stale as the loop mutates shared
//! state: deallocating an object changes the deltas of everything sharing
//! a page with it. Rebuilding the heap per step would be quadratic, so
//! instead each pop re-computes the popped candidate's *current* key and
//! only accepts it if the key did not grow — otherwise the candidate is
//! re-inserted with the fresh key and the next one is tried. A candidate
//! whose key grew but still beats the next-best entry is accepted anyway:
//! re-inserting it would pop it right back.

use crate::state::TotalF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tolerance for "did the key grow since it was pushed": float noise
/// below this is not worth a re-insert.
const REVALIDATE_EPS: f64 = 1e-12;

/// A min-heap of `(f64 key, item)` entries with pop-time revalidation.
///
/// Ties on the key break on the item's `Ord`, keeping pops deterministic.
#[derive(Clone, Debug, Default)]
pub struct LazyMinHeap<I> {
    heap: BinaryHeap<Reverse<(TotalF64, I)>>,
    pops: u64,
}

impl<I: Ord + Copy> LazyMinHeap<I> {
    /// An empty heap.
    pub fn new() -> Self {
        LazyMinHeap {
            heap: BinaryHeap::new(),
            pops: 0,
        }
    }

    /// Heapifies `(key, item)` entries in one O(n) pass.
    pub fn from_entries(entries: impl IntoIterator<Item = (f64, I)>) -> Self {
        LazyMinHeap {
            heap: entries
                .into_iter()
                .map(|(key, item)| Reverse((TotalF64(key), item)))
                .collect(),
            pops: 0,
        }
    }

    /// Raw heap pops so far, *including* dead and stale entries cycled
    /// through by [`LazyMinHeap::pop_current`] — the number the lazy
    /// revalidation's near-linearity claim is about, surfaced in the
    /// restoration reports and traces.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Inserts `item` with `key`.
    pub fn push(&mut self, key: f64, item: I) {
        self.heap.push(Reverse((TotalF64(key), item)));
    }

    /// Pops the item with the smallest *current* key.
    ///
    /// `valid` filters out dead entries (popped-and-consumed earlier, or
    /// invalidated by the caller's mutations); `key_of` re-computes an
    /// entry's current key. Returns `None` when no valid entry remains.
    pub fn pop_current(
        &mut self,
        mut valid: impl FnMut(I) -> bool,
        mut key_of: impl FnMut(I) -> f64,
    ) -> Option<I> {
        loop {
            let Reverse((key, item)) = self.heap.pop()?;
            self.pops += 1;
            if !valid(item) {
                continue;
            }
            let current = key_of(item);
            if current > key.0 + REVALIDATE_EPS {
                // Stale: the key grew since the entry was pushed. Re-insert
                // with the fresh key unless it still beats the next-best.
                let still_best = self
                    .heap
                    .peek()
                    .map(|Reverse((next, _))| current <= next.0 + REVALIDATE_EPS)
                    .unwrap_or(true);
                if !still_best {
                    self.push(current, item);
                    continue;
                }
            }
            return Some(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order_when_keys_are_fresh() {
        let mut h = LazyMinHeap::from_entries([(3.0, 'c'), (1.0, 'a'), (2.0, 'b')]);
        let mut out = Vec::new();
        while let Some(item) = h.pop_current(|_| true, |i| (i as u8 - b'a' + 1) as f64) {
            out.push(item);
        }
        assert_eq!(out, vec!['a', 'b', 'c']);
    }

    #[test]
    fn skips_invalid_entries() {
        let mut h = LazyMinHeap::from_entries([(1.0, 1u32), (2.0, 2), (3.0, 3)]);
        let got = h.pop_current(|i| i != 1, |i| i as f64);
        assert_eq!(got, Some(2));
    }

    #[test]
    fn reinserts_grown_keys() {
        // 'a' was pushed cheap but now costs 10: 'b' must pop first.
        let mut h = LazyMinHeap::from_entries([(0.5, 'a'), (2.0, 'b')]);
        let key_of = |i: char| if i == 'a' { 10.0 } else { 2.0 };
        assert_eq!(h.pop_current(|_| true, key_of), Some('b'));
        assert_eq!(h.pop_current(|_| true, key_of), Some('a'));
        assert_eq!(h.pop_current(|_| true, key_of), None);
    }

    #[test]
    fn grown_key_still_best_is_accepted_without_reinsert() {
        // 'a' grew from 0.5 to 1.0 but the next-best is 2.0: accept it
        // directly instead of cycling it through the heap.
        let mut h = LazyMinHeap::from_entries([(0.5, 'a'), (2.0, 'b')]);
        let got = h.pop_current(|_| true, |i| if i == 'a' { 1.0 } else { 2.0 });
        assert_eq!(got, Some('a'));
    }

    #[test]
    fn empty_heap_pops_none() {
        let mut h: LazyMinHeap<u32> = LazyMinHeap::new();
        assert_eq!(h.pop_current(|_| true, |_| 0.0), None);
    }

    #[test]
    fn ties_break_on_item_order() {
        let mut h = LazyMinHeap::from_entries([(1.0, 9u32), (1.0, 3), (1.0, 7)]);
        let mut out = Vec::new();
        while let Some(i) = h.pop_current(|_| true, |_| 1.0) {
            out.push(i);
        }
        assert_eq!(out, vec![3, 7, 9]);
    }
}
