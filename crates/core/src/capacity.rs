//! Local processing-capacity restoration (Eq. 8), Section 4.2.
//!
//! While a site's offered HTTP load exceeds `C(S_i)`, move the
//! `(page, local MO)` download whose transfer back to the repository
//! degrades the objective least **per request/second freed** ("amortized
//! over the difference between the new workload and the required one" —
//! per unit of workload, to be judicious over frequently-accessed pages).
//! An object that loses its last local mark is deallocated, "further
//! reducing the storage space required".
//!
//! Candidates live in the same lazily-revalidated min-heap
//! ([`crate::lazyheap`]) as storage restoration; flipping a slot only
//! staleness-es the other slots of the same page, which the pop-time
//! recheck fixes.

use crate::lazyheap::LazyMinHeap;
use crate::state::{SiteWork, SlotKind};
use serde::{Deserialize, Serialize};

/// What capacity restoration did to one site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// `(page, object)` downloads moved back to the repository.
    pub moves: usize,
    /// Objects deallocated after losing their last local mark.
    pub deallocated: usize,
    /// Bytes freed by those deallocations.
    pub bytes_freed: u64,
    /// Raw candidate-heap pops, including dead/stale entries the lazy
    /// revalidation cycled through (see [`crate::lazyheap`]).
    #[serde(default)]
    pub heap_pops: u64,
    /// Whether the constraint was met. `false` means even serving HTML
    /// alone exceeds the capacity (the deep end of the Figure 2 sweep).
    pub feasible: bool,
}

/// One candidate mark, identified by page index, slot and kind.
type Candidate = (u32, u32, SlotKind);

/// Restores Eq. 8 for one site.
pub fn restore_capacity(work: &mut SiteWork<'_>) -> CapacityReport {
    let mut report = CapacityReport {
        feasible: true,
        ..CapacityReport::default()
    };
    let capacity = work.capacity();
    const EPS: f64 = 1e-9;
    if work.load() <= capacity + EPS {
        return report;
    }

    // Seed the heap with every local mark. Marks already flipped are dead
    // entries (shouldn't happen — each is pushed once — but cheap to
    // guard); deltas stale-d by earlier flips on the same page are
    // re-keyed on pop.
    let mut heap: LazyMinHeap<Candidate> = LazyMinHeap::new();
    for idx in 0..work.n_pages() {
        let part = work.partition(idx);
        for (slot, &local) in part.local_compulsory.iter().enumerate() {
            if local {
                let cand = (idx as u32, slot as u32, SlotKind::Compulsory);
                heap.push(ratio(work, cand), cand);
            }
        }
        for (slot, &local) in part.local_optional.iter().enumerate() {
            if local {
                let cand = (idx as u32, slot as u32, SlotKind::Optional);
                heap.push(ratio(work, cand), cand);
            }
        }
    }

    let still_local = |work: &SiteWork<'_>, (idx, slot, kind): Candidate| match kind {
        SlotKind::Compulsory => work.partition(idx as usize).local_compulsory[slot as usize],
        SlotKind::Optional => work.partition(idx as usize).local_optional[slot as usize],
    };

    while work.load() > capacity + EPS {
        let Some(cand) = heap.pop_current(|c| still_local(work, c), |c| ratio(work, c)) else {
            report.feasible = false;
            break;
        };
        let (idx, slot, kind) = cand;
        let (idx, slot) = (idx as usize, slot as usize);

        let object = match kind {
            SlotKind::Compulsory => {
                let pid = work.pages()[idx];
                let k = work.system().page(pid).compulsory[slot];
                work.set_compulsory(idx, slot, false);
                k
            }
            SlotKind::Optional => {
                let pid = work.pages()[idx];
                let k = work.system().page(pid).optional[slot].object;
                work.set_optional(idx, slot, false);
                k
            }
        };
        report.moves += 1;

        // "If through this process an object is marked in all the pages as
        // not to be downloaded locally, we deallocate it."
        if work.marks_on(object) == 0 && work.is_stored(object) {
            let freed = work.system().object_size(object).get();
            work.dealloc(object);
            report.deallocated += 1;
            report.bytes_freed += freed;
        }
    }

    if work.load() > capacity + EPS {
        report.feasible = false;
    }
    report.heap_pops = heap.pops();
    report
}

/// The greedy key: objective damage per request/second of load freed.
fn ratio(work: &SiteWork<'_>, (idx, slot, kind): Candidate) -> f64 {
    let (idx, slot) = (idx as usize, slot as usize);
    let pid = work.pages()[idx];
    let page = work.system().page(pid);
    let freq = page.freq.get();
    // Moving the object's *last* local mark lets the dealloc that follows
    // also shed its refresh load (zero unless update accounting is on).
    let orphan_bonus = |object| {
        if work.marks_on(object) == 1 {
            work.update_rate_of(object)
        } else {
            0.0
        }
    };
    match kind {
        SlotKind::Compulsory => {
            let object = page.compulsory[slot];
            let size = work.system().object_size(object);
            let before = work.streams(idx).response(work.params());
            let after = work.streams(idx).response_if_remote(size, work.params());
            let delta_d = freq * work.alpha1() * (after - before);
            let delta_load = freq + orphan_bonus(object);
            delta_d / delta_load.max(f64::MIN_POSITIVE)
        }
        SlotKind::Optional => {
            let oref = page.optional[slot];
            let size = work.system().object_size(oref.object);
            let delta_d = freq
                * work.alpha2()
                * work
                    .optional_cost(idx)
                    .delta_if_flipped(oref.prob, size, false, work.params());
            let delta_load = freq * page.opt_req_factor * oref.prob + orphan_bonus(oref.object);
            delta_d / delta_load.max(f64::MIN_POSITIVE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_all;
    use crate::storage::restore_storage;
    use mmrepl_model::{CostParams, SiteId, System};
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn system_at(frac: f64, seed: u64) -> System {
        generate_system(&WorkloadParams::small(), seed)
            .unwrap()
            .with_processing_fraction(frac)
    }

    fn restored(sys: &System, site: u32) -> (SiteWork<'_>, CapacityReport) {
        let placement = partition_all(sys);
        let mut w = SiteWork::new(sys, SiteId::new(site), &placement, CostParams::default());
        restore_storage(&mut w);
        let report = restore_capacity(&mut w);
        (w, report)
    }

    #[test]
    fn full_capacity_is_a_noop() {
        // 100% capacity = the all-local load, and the greedy partition
        // marks at most everything local, so the constraint already holds.
        let sys = system_at(1.0, 1);
        let (w, report) = restored(&sys, 0);
        assert!(report.feasible);
        assert_eq!(report.moves, 0);
        assert!(w.load() <= w.capacity() + 1e-9);
    }

    #[test]
    fn restores_constraint_across_the_sweep() {
        for &frac in &[0.9, 0.7, 0.5, 0.3] {
            let sys = system_at(frac, 2);
            for site in 0..sys.n_sites() as u32 {
                let (w, report) = restored(&sys, site);
                assert!(report.feasible, "frac {frac} site {site}: {report:?}");
                assert!(
                    w.load() <= w.capacity() + 1e-6,
                    "frac {frac} site {site}: load {} cap {}",
                    w.load(),
                    w.capacity()
                );
                w.validate_consistency();
            }
        }
    }

    #[test]
    fn moves_scale_with_pressure() {
        let (_, mild) = restored(&system_at(0.9, 3), 0);
        let (_, hard) = restored(&system_at(0.4, 3), 0);
        assert!(hard.moves > mild.moves, "mild {mild:?} hard {hard:?}");
    }

    #[test]
    fn infeasible_below_html_floor() {
        // Capacity below the irreducible 1-request-per-page-view floor.
        let sys = generate_system(&WorkloadParams::small(), 4).unwrap();
        // full_local_load >> Σf; take 1% of it, below Σf.
        let sys = sys.with_processing_fraction(0.01);
        let (w, report) = restored(&sys, 0);
        assert!(!report.feasible);
        // Every movable mark was moved.
        let marks: usize = (0..w.n_pages())
            .map(|i| w.partition(i).n_local_compulsory() + w.partition(i).n_local_optional())
            .sum();
        assert_eq!(marks, 0, "marks remain despite infeasibility");
    }

    #[test]
    fn deallocates_fully_unmarked_objects() {
        let sys = system_at(0.3, 5);
        let (w, report) = restored(&sys, 0);
        assert!(report.feasible);
        assert!(report.deallocated > 0, "{report:?}");
        assert!(report.bytes_freed > 0);
        // No stored object may be completely unmarked afterwards.
        for k in w.stored_objects() {
            assert!(w.marks_on(k) > 0, "orphan {k} survived");
        }
    }

    #[test]
    fn capacity_restoration_prefers_cheap_moves() {
        // D should degrade sublinearly: cutting capacity to 70% costs far
        // less than 30% of the objective (the paper's Figure 2 plateau).
        let free_sys = system_at(10.0, 6);
        let placement = partition_all(&free_sys);
        let d_free =
            SiteWork::new(&free_sys, SiteId::new(0), &placement, CostParams::default()).total_d();

        let tight_sys = system_at(0.7, 6);
        let (w, report) = restored(&tight_sys, 0);
        assert!(report.feasible);
        assert!(
            w.total_d() < d_free * 1.25,
            "30% capacity loss cost {}% of D",
            (w.total_d() / d_free - 1.0) * 100.0
        );
    }

    #[test]
    fn deterministic() {
        let sys = system_at(0.5, 7);
        let (a, ra) = restored(&sys, 1);
        let (b, rb) = restored(&sys, 1);
        assert_eq!(ra, rb);
        assert!((a.load() - b.load()).abs() < 1e-12);
        assert!((a.total_d() - b.total_d()).abs() < 1e-12);
    }
}
