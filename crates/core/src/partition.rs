//! `PARTITION(W_j)` — Section 4.2's greedy per-page object partitioning,
//! implemented verbatim from the pseudocode.
//!
//! For each page, compulsory objects are visited in decreasing size order.
//! Both running stream totals are tentatively charged with the object; if
//! the repository stream would then be the shorter one, the object goes
//! remote (`X_jk = 0`) and the local charge is rolled back, otherwise it
//! stays local (`X_jk = 1`) and the remote charge is rolled back.
//!
//! Two faithful details worth noting:
//!
//! * the pseudocode initializes `RemoteDownload` with `Ovhd(R, S_i)` even
//!   before any object is remote — we keep that, so the comparison is
//!   exactly the paper's (it makes the greedy slightly reluctant to start
//!   a repository stream, which is correct: the first remote object pays
//!   the connection overhead);
//! * optional objects are all marked for local download ("Store all
//!   optional objects") *when the local fetch is faster by the estimates*;
//!   with the Table 1 estimate ranges the local pipe always wins, so this
//!   matches the paper, while degenerate configurations (repository faster
//!   than the site) sensibly leave them remote.

use crate::streams::SiteParams;
use mmrepl_model::{IdVec, PageId, PagePartition, Placement, SiteId, System};
use serde::{Deserialize, Serialize};

/// The order in which `PARTITION` visits a page's compulsory objects.
///
/// The paper sorts by decreasing size; the other orders exist for the A1
/// ablation, which quantifies how much that choice matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionOrder {
    /// Largest object first — the paper's choice.
    #[default]
    DecreasingSize,
    /// Smallest object first.
    IncreasingSize,
    /// Document order (no sorting).
    DocumentOrder,
}

/// Largest byte count `f64` can hold exactly: every integer up to `2^53`
/// is representable.
const MAX_EXACT_F64_BYTES: u64 = 1 << 53;

/// Exact `u64 → f64` byte conversion. The greedy's stream comparisons
/// assume sizes convert without rounding; a size beyond `2^53` would
/// silently lose precision and corrupt the placement, so it is rejected
/// loudly instead (9 PiB — far beyond any modelled object or page).
///
/// # Panics
/// Panics if `bytes > 2^53`.
pub(crate) fn exact_size_f64(bytes: u64) -> f64 {
    assert!(
        bytes <= MAX_EXACT_F64_BYTES,
        "size {bytes} B exceeds 2^53 and cannot be represented exactly as f64"
    );
    bytes as f64
}

/// Runs `PARTITION` for one page, returning its row of the `X`/`X'`
/// matrices.
pub fn partition_page(system: &System, page: PageId) -> PagePartition {
    partition_page_ordered(system, page, PartitionOrder::DecreasingSize)
}

/// `PARTITION` with an explicit visit order (A1 ablation).
pub fn partition_page_ordered(
    system: &System,
    page: PageId,
    visit: PartitionOrder,
) -> PagePartition {
    let params = SiteParams::of(system.site(system.page(page).site));
    partition_page_ordered_with(system, page, visit, &params)
}

/// `PARTITION` against explicit site estimates. The federated-tree planner
/// passes the *effective channel* of the site's serving ancestor (rate
/// capped by the path bottleneck, overhead plus path latency) instead of
/// the raw repository estimates; [`partition_page_ordered`] is exactly this
/// with [`SiteParams::of`], so the star path is unchanged bit for bit.
pub fn partition_page_ordered_with(
    system: &System,
    page: PageId,
    visit: PartitionOrder,
    params: &SiteParams,
) -> PagePartition {
    let p = system.page(page);

    // Order `(size, slot)` pairs so the sort compares plain integers
    // instead of chasing object ids; ties break by slot order for
    // determinism (the keys are distinct, so the unstable sort is exact).
    let mut order: Vec<(u64, u32)> = p
        .compulsory
        .iter()
        .enumerate()
        .map(|(slot, &k)| {
            let slot = u32::try_from(slot).expect("more than u32::MAX compulsory slots");
            (system.object_size(k).get(), slot)
        })
        .collect();
    match visit {
        PartitionOrder::DecreasingSize => {
            order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)))
        }
        PartitionOrder::IncreasingSize => order.sort_unstable(),
        PartitionOrder::DocumentOrder => {}
    }

    let mut local = params.local_ovhd + exact_size_f64(p.html_size.get()) / params.local_rate;
    let mut remote = params.repo_ovhd;
    let mut local_compulsory = vec![false; p.n_compulsory()];

    for &(size, slot) in &order {
        let size = exact_size_f64(size);
        let slot = slot as usize;
        let local_cost = size / params.local_rate;
        let remote_cost = size / params.repo_rate;
        // Tentatively charge both streams (paper pseudocode).
        let local_if = local + local_cost;
        let remote_if = remote + remote_cost;
        let go_remote = remote_if < local_if;
        if mmrepl_obs::enabled() {
            // Provenance: both hypothetical stream finish times at the
            // moment of the choice, so a trace can answer "why remote?".
            mmrepl_obs::decision(mmrepl_obs::Decision {
                site: p.site.raw(),
                page: page.raw(),
                object: p.compulsory[slot].raw(),
                local: !go_remote,
                local_s: local_if,
                remote_s: remote_if,
            });
        }
        if go_remote {
            // Repository download is more beneficial; roll back local.
            remote = remote_if;
        } else {
            local = local_if;
            local_compulsory[slot] = true;
        }
    }
    if mmrepl_obs::enabled() {
        let n_local = local_compulsory.iter().filter(|&&m| m).count() as u64;
        mmrepl_obs::add("partition.objects_local", n_local);
        mmrepl_obs::add("partition.objects_remote", order.len() as u64 - n_local);
    }

    // "Store all optional objects" — marked local whenever the estimated
    // standalone local fetch beats the repository fetch.
    let local_optional = p
        .optional
        .iter()
        .map(|o| params.local_fetch_wins(system.object_size(o.object)))
        .collect();

    PagePartition {
        local_compulsory,
        local_optional,
    }
}

/// Exhaustively optimal single-page partition, by enumerating all `2^n`
/// assignments of the compulsory objects (optional marks use the same
/// standalone-fetch rule as the greedy).
///
/// The paper's decision problem is NP-complete (knapsack reduction), so
/// this exists to *measure* the greedy's optimality gap, not to replace
/// it: Table 1 pages carry 5-45 compulsory objects and 2^45 is out of
/// reach, but the small test workload (≤ ~16) brute-forces in
/// microseconds.
///
/// # Panics
/// Panics if the page has more than `24` compulsory objects.
pub fn optimal_partition(system: &System, page: PageId) -> PagePartition {
    let p = system.page(page);
    let n = p.n_compulsory();
    assert!(
        n <= 24,
        "brute force limited to 24 compulsory objects, page has {n}"
    );
    let params = SiteParams::of(system.site(p.site));
    let sizes: Vec<f64> = p
        .compulsory
        .iter()
        .map(|&k| exact_size_f64(system.object_size(k).get()))
        .collect();
    let html_time = params.local_ovhd + exact_size_f64(p.html_size.get()) / params.local_rate;

    let mut best_mask = 0u32;
    let mut best_time = f64::INFINITY;
    for mask in 0..(1u32 << n) {
        let mut local = html_time;
        let mut remote_bytes = 0.0;
        let mut any_remote = false;
        for (slot, &size) in sizes.iter().enumerate() {
            if mask & (1 << slot) != 0 {
                local += size / params.local_rate;
            } else {
                remote_bytes += size;
                any_remote = true;
            }
        }
        let remote = if any_remote {
            params.repo_ovhd + remote_bytes / params.repo_rate
        } else {
            0.0
        };
        let response = local.max(remote);
        if response < best_time {
            best_time = response;
            best_mask = mask;
        }
    }

    PagePartition {
        local_compulsory: (0..n).map(|slot| best_mask & (1 << slot) != 0).collect(),
        local_optional: p
            .optional
            .iter()
            .map(|o| params.local_fetch_wins(system.object_size(o.object)))
            .collect(),
    }
}

/// Runs `PARTITION` for every page — the unconstrained placement the
/// restorations start from (and the paper's normalization baseline when no
/// constraint is imposed).
pub fn partition_all(system: &System) -> Placement {
    partition_all_ordered(system, PartitionOrder::DecreasingSize)
}

/// [`partition_all`] with an explicit visit order (A1 ablation).
pub fn partition_all_ordered(system: &System, visit: PartitionOrder) -> Placement {
    let partitions = system
        .pages()
        .ids()
        .map(|pid| partition_page_ordered(system, pid, visit))
        .collect();
    Placement::new(system, partitions).expect("partition shapes match by construction")
}

/// [`partition_all`] against per-site explicit estimates (one
/// [`SiteParams`] per site, e.g. the effective serving channels of an
/// ancestor-selection pass).
pub fn partition_all_with(system: &System, params: &IdVec<SiteId, SiteParams>) -> Placement {
    assert_eq!(params.len(), system.n_sites(), "one SiteParams per site");
    let partitions = system
        .pages()
        .ids()
        .map(|pid| {
            partition_page_ordered_with(
                system,
                pid,
                PartitionOrder::DecreasingSize,
                &params[system.page(pid).site],
            )
        })
        .collect();
    Placement::new(system, partitions).expect("partition shapes match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_model::{
        Bytes, BytesPerSec, CostModel, MediaObject, OptionalRef, ReqPerSec, Secs, Site,
        SystemBuilder, WebPage,
    };

    fn site(local_kibs: f64, repo_kibs: f64) -> Site {
        Site {
            storage: Bytes::gib(10),
            capacity: ReqPerSec::INFINITE,
            local_rate: BytesPerSec::kib_per_sec(local_kibs),
            repo_rate: BytesPerSec::kib_per_sec(repo_kibs),
            local_ovhd: Secs(1.0),
            repo_ovhd: Secs(2.0),
        }
    }

    fn one_page_system(site: Site, sizes_kib: &[u64], optionals_kib: &[u64]) -> System {
        let mut b = SystemBuilder::new();
        let s = b.add_site(site);
        let compulsory: Vec<_> = sizes_kib
            .iter()
            .map(|&k| b.add_object(MediaObject::of_size(Bytes::kib(k))))
            .collect();
        let optional: Vec<_> = optionals_kib
            .iter()
            .map(|&k| OptionalRef {
                object: b.add_object(MediaObject::of_size(Bytes::kib(k))),
                prob: 0.03,
            })
            .collect();
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(1.0),
            compulsory,
            optional,
            opt_req_factor: 1.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn fast_local_pipe_keeps_everything_local() {
        // Local pipe 10x the repository: remote always loses.
        let sys = one_page_system(site(10.0, 1.0), &[100, 50, 25], &[]);
        let part = partition_page(&sys, PageId::new(0));
        assert_eq!(part.local_compulsory, vec![true, true, true]);
    }

    #[test]
    fn symmetric_pipes_split_the_load() {
        let sys = one_page_system(site(5.0, 5.0), &[100, 100, 100, 100], &[]);
        let part = partition_page(&sys, PageId::new(0));
        let n_local = part.n_local_compulsory();
        // With equal rates the greedy must offload some but not all.
        assert!((1..4).contains(&n_local), "n_local = {n_local}");
        // And the resulting response beats both extremes.
        let cm = CostModel::with_defaults(&sys);
        let page = PageId::new(0);
        let split = cm.page_response(page, &part).get();
        let all_local = cm
            .page_response(page, &PagePartition::all_local(sys.page(page)))
            .get();
        let all_remote = cm
            .page_response(page, &PagePartition::all_remote(sys.page(page)))
            .get();
        assert!(split <= all_local + 1e-9, "{split} vs local {all_local}");
        assert!(split <= all_remote + 1e-9, "{split} vs remote {all_remote}");
    }

    #[test]
    fn fast_repository_pushes_objects_remote() {
        // Repository pipe 10x the local pipe: large objects go remote.
        let sys = one_page_system(site(1.0, 10.0), &[200, 150, 100], &[]);
        let part = partition_page(&sys, PageId::new(0));
        assert!(
            part.n_local_compulsory() < 3,
            "nothing offloaded despite a 10x faster repository"
        );
    }

    #[test]
    fn visits_objects_in_decreasing_size_order() {
        // The largest object must be placed first: with symmetric pipes and
        // sizes [10, 1000], the 1000 KiB object determines stream choice
        // before the small one is considered. Verify via the invariant that
        // the greedy never leaves the big object on the crowded stream.
        let sys = one_page_system(site(5.0, 5.0), &[10, 1000], &[]);
        let part = partition_page(&sys, PageId::new(0));
        // Local stream starts with HTML handicap, so the 1000 KiB object
        // (slot 1) is placed while streams are nearly empty and stays
        // local only if local <= remote at that point: local has 1 + 2 =
        // 3 s head start vs repo 2 s... verify against a brute-force best.
        let cm = CostModel::with_defaults(&sys);
        let page = PageId::new(0);
        let greedy = cm.page_response(page, &part).get();
        // Brute force all 4 assignments.
        let mut best = f64::INFINITY;
        for a in [false, true] {
            for bflag in [false, true] {
                let p = PagePartition {
                    local_compulsory: vec![a, bflag],
                    local_optional: vec![],
                };
                best = best.min(cm.page_response(page, &p).get());
            }
        }
        // Greedy is not optimal in general, but on two objects with this
        // geometry it should land within 20% of brute force.
        assert!(
            greedy <= best * 1.2 + 1e-9,
            "greedy {greedy} vs best {best}"
        );
    }

    #[test]
    fn greedy_matches_paper_walkthrough() {
        // Hand-traced example. Site: local 10 KiB/s, repo 1 KiB/s,
        // ovhd 1 s / 2 s, HTML 10 KiB.
        //   local = 1 + 1 = 2.0, remote = 2.0
        // Objects (KiB): 100, 60, 30 (already decreasing).
        //   obj 100: local_if = 2 + 10 = 12, remote_if = 2 + 100 = 102
        //     -> local wins: local = 12, X = 1
        //   obj 60:  local_if = 12 + 6 = 18, remote_if = 2 + 60 = 62
        //     -> local: local = 18
        //   obj 30:  local_if = 18 + 3 = 21, remote_if = 2 + 30 = 32
        //     -> local: local = 21
        let sys = one_page_system(site(10.0, 1.0), &[100, 60, 30], &[]);
        let part = partition_page(&sys, PageId::new(0));
        assert_eq!(part.local_compulsory, vec![true, true, true]);
        let cm = CostModel::with_defaults(&sys);
        assert!((cm.page_response(PageId::new(0), &part).get() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn remote_branch_taken_when_remote_strictly_smaller() {
        // Geometry where the remote stream genuinely wins for one object:
        // local 1 KiB/s, repo 8 KiB/s.
        //   local = 1 + 10 = 11, remote = 2
        //   obj 40: local_if = 11 + 40 = 51, remote_if = 2 + 5 = 7 -> remote
        let sys = one_page_system(site(1.0, 8.0), &[40], &[]);
        let part = partition_page(&sys, PageId::new(0));
        assert_eq!(part.local_compulsory, vec![false]);
    }

    #[test]
    fn optional_objects_marked_local_when_local_fetch_wins() {
        let sys = one_page_system(site(10.0, 1.0), &[50], &[100, 200]);
        let part = partition_page(&sys, PageId::new(0));
        assert_eq!(part.local_optional, vec![true, true]);

        // With a dominant repository pipe, optional marks flip remote.
        let sys = one_page_system(site(0.5, 10.0), &[50], &[100, 200]);
        let part = partition_page(&sys, PageId::new(0));
        assert_eq!(part.local_optional, vec![false, false]);
    }

    #[test]
    fn partition_all_covers_every_page() {
        let mut b = SystemBuilder::new();
        let s0 = b.add_site(site(10.0, 1.0));
        let s1 = b.add_site(site(2.0, 2.0));
        let m: Vec<_> = (0..6)
            .map(|i| b.add_object(MediaObject::of_size(Bytes::kib(50 + i * 37))))
            .collect();
        for (i, &site_id) in [s0, s1, s0].iter().enumerate() {
            b.add_page(WebPage {
                site: site_id,
                html_size: Bytes::kib(5),
                freq: ReqPerSec(1.0 + i as f64),
                compulsory: vec![m[i], m[i + 1]],
                optional: vec![OptionalRef {
                    object: m[i + 3],
                    prob: 0.03,
                }],
                opt_req_factor: 1.0,
            });
        }
        let sys = b.build().unwrap();
        let placement = partition_all(&sys);
        assert_eq!(placement.len(), 3);
        for (pid, part) in placement.iter() {
            assert!(part.matches(sys.page(pid)));
        }
    }

    #[test]
    fn optimal_partition_never_loses_to_greedy() {
        // On a batch of random pages with symmetric pipes (the hard case
        // for the greedy), the brute force must weakly dominate.
        for seed in 0..20u64 {
            let sizes: Vec<u64> = (0..10).map(|i| 40 + (seed * 997 + i * 131) % 760).collect();
            let sys = one_page_system(site(4.0, 4.0), &sizes, &[]);
            let cm = CostModel::with_defaults(&sys);
            let page = PageId::new(0);
            let greedy = cm.page_response(page, &partition_page(&sys, page)).get();
            let optimal = cm.page_response(page, &optimal_partition(&sys, page)).get();
            assert!(
                optimal <= greedy + 1e-9,
                "seed {seed}: optimal {optimal} > greedy {greedy}"
            );
            // And the greedy stays within a modest factor (LPT-style
            // heuristics on two machines are 7/6-competitive; the extra
            // overhead terms loosen that slightly).
            assert!(
                greedy <= optimal * 1.25 + 1e-9,
                "seed {seed}: greedy {greedy} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn optimal_matches_greedy_on_dominant_local_pipe() {
        // With a 10x faster local pipe keeping everything local is
        // optimal, and the greedy finds exactly that.
        let sys = one_page_system(site(10.0, 1.0), &[100, 60, 30], &[]);
        let page = PageId::new(0);
        assert_eq!(optimal_partition(&sys, page), partition_page(&sys, page));
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn optimal_partition_rejects_large_pages() {
        let sizes: Vec<u64> = vec![50; 25];
        let sys = one_page_system(site(5.0, 5.0), &sizes, &[]);
        let _ = optimal_partition(&sys, PageId::new(0));
    }

    #[test]
    fn partition_is_deterministic() {
        let sys = one_page_system(site(5.0, 5.0), &[100, 100, 50, 50], &[30]);
        let a = partition_page(&sys, PageId::new(0));
        let b = partition_page(&sys, PageId::new(0));
        assert_eq!(a, b);
    }

    #[test]
    fn visit_orders_differ_and_decreasing_wins_on_average() {
        // With symmetric pipes the greedy is order-sensitive; decreasing
        // size is the classic LPT-style heuristic and should not lose to
        // document order over a batch of random-ish pages.
        let mut dec_total = 0.0;
        let mut doc_total = 0.0;
        for seed in 0..10u64 {
            let sizes: Vec<u64> = (0..8).map(|i| 37 + (seed * 131 + i * 97) % 400).collect();
            let sys = one_page_system(site(5.0, 5.0), &sizes, &[]);
            let cm = CostModel::with_defaults(&sys);
            let page = PageId::new(0);
            let dec = partition_page_ordered(&sys, page, PartitionOrder::DecreasingSize);
            let doc = partition_page_ordered(&sys, page, PartitionOrder::DocumentOrder);
            dec_total += cm.page_response(page, &dec).get();
            doc_total += cm.page_response(page, &doc).get();
        }
        assert!(
            dec_total <= doc_total + 1e-9,
            "decreasing {dec_total} vs document {doc_total}"
        );
    }

    #[test]
    fn default_order_is_decreasing_size() {
        let sys = one_page_system(site(5.0, 5.0), &[10, 500, 90], &[20]);
        let a = partition_page(&sys, PageId::new(0));
        let b = partition_page_ordered(&sys, PageId::new(0), PartitionOrder::DecreasingSize);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_compulsory_list_is_fine() {
        let sys = one_page_system(site(5.0, 5.0), &[], &[20]);
        let part = partition_page(&sys, PageId::new(0));
        assert!(part.local_compulsory.is_empty());
        assert_eq!(part.local_optional.len(), 1);
    }

    #[test]
    fn exact_size_f64_is_exact_up_to_the_boundary() {
        // Every integer up to 2^53 round-trips through f64 unchanged.
        for bytes in [0, 1, (1u64 << 53) - 1, 1u64 << 53] {
            let as_float = exact_size_f64(bytes);
            assert_eq!(as_float as u64, bytes, "{bytes} did not round-trip");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 2^53")]
    fn exact_size_f64_rejects_unrepresentable_sizes() {
        // 2^53 + 1 is the first integer f64 cannot represent.
        let _ = exact_size_f64((1u64 << 53) + 1);
    }
}
