//! The invariant auditor: from-scratch recomputation of every derived
//! quantity that [`SiteWork`] maintains incrementally, with pinpointed
//! divergence reports.
//!
//! The planner's hot paths (dense CSR state, storage/capacity
//! restoration, off-loading, delta replanning) all mutate one shared set
//! of incrementally-maintained aggregates — stream totals, optional
//! cost, HTTP load, update load, stored bytes, mark counts. A single
//! missed update in any flip path silently corrupts every later greedy
//! decision. [`audit_site`] re-derives all of them from nothing but the
//! partition rows and the store, compares against the tracked values,
//! and reports the **first** divergence with enough context (site, page,
//! object, stage) to localize the broken mutation.
//!
//! With the `audit` cargo feature enabled, the planner, the off-loading
//! negotiation and the online delta-replanner call
//! [`assert_consistent`] after every mutation stage; without it the
//! hooks compile away and release benchmarks are unaffected. The
//! functions themselves are always compiled (tests and the `mmrepl
//! audit` CLI use them regardless of the feature).
//!
//! Separately, [`check_site_constraints`] and [`check_repo_constraint`]
//! verify the paper's feasibility constraints — Eq. 8 (site processing),
//! Eq. 9 (repository processing) and Eq. 10 (storage). They are *not*
//! part of [`audit_site`] because they legitimately do not hold in the
//! middle of the pipeline (after partitioning, before the restorations);
//! property tests apply them at stage boundaries where the stage reports
//! claim feasibility.

use crate::state::SiteWork;
use crate::streams::{OptionalCost, Streams};
use mmrepl_model::{ObjectId, SiteId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Absolute tolerance for floating-point bookkeeping comparisons. The
/// incremental updates and the from-scratch recomputation sum the same
/// terms in different orders, so they agree only up to rounding.
const FP_EPS: f64 = 1e-6;

/// Tolerance for the Eq. 8/9 constraint checks — matches the `EPS`
/// slack the restoration and off-loading stopping rules allow, with
/// headroom for summation-order rounding.
const CONSTRAINT_EPS: f64 = 1e-6;

static AUDITS: AtomicU64 = AtomicU64::new(0);

/// Number of [`audit_site`] passes performed by this process (all
/// threads, monotone). Lets tests assert the `audit` feature's hooks
/// actually fired.
pub fn audits_performed() -> u64 {
    AUDITS.load(Ordering::Relaxed)
}

/// Which planner mutation an audit ran after. Carried in the
/// [`Divergence`] report to localize the broken stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditStage {
    /// After the initial greedy partition ([`SiteWork`] construction).
    Partition,
    /// After storage restoration (Eq. 10 repair).
    StorageRestore,
    /// After capacity restoration (Eq. 8 repair).
    CapacityRestore,
    /// After one site absorbed workload during an off-loading round.
    OffloadRound,
    /// After an incremental delta-replan of a dirty site.
    DeltaReplan,
    /// An explicit validation call outside the pipeline (tests).
    Validate,
}

impl fmt::Display for AuditStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditStage::Partition => "initial partition",
            AuditStage::StorageRestore => "storage restoration",
            AuditStage::CapacityRestore => "capacity restoration",
            AuditStage::OffloadRound => "offload round",
            AuditStage::DeltaReplan => "delta replan",
            AuditStage::Validate => "explicit validation",
        })
    }
}

/// One detected divergence between the incrementally tracked bookkeeping
/// and the from-scratch recomputation: the first inconsistency found,
/// with enough context to pinpoint the broken mutation path.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The site whose state diverged (`None` for the repository-level
    /// Eq. 9 check).
    pub site: Option<SiteId>,
    /// The pipeline stage the audit ran after.
    pub stage: AuditStage,
    /// Which derived quantity diverged (e.g. `"stream totals"`,
    /// `"site load"`, `"storage bytes"`).
    pub quantity: String,
    /// The incrementally maintained value.
    pub tracked: String,
    /// The value re-derived from scratch.
    pub recomputed: String,
    /// Where exactly: page, object, slot — whatever narrows it down.
    pub context: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let place = match self.site {
            Some(s) => format!("site {s}"),
            None => "repository".to_string(),
        };
        writeln!(
            f,
            "invariant divergence after {} at {place}: {}",
            self.stage, self.quantity
        )?;
        writeln!(f, "  tracked:    {}", self.tracked)?;
        writeln!(f, "  recomputed: {}", self.recomputed)?;
        write!(f, "  context:    {}", self.context)
    }
}

impl std::error::Error for Divergence {}

fn diverged(
    site: Option<SiteId>,
    stage: AuditStage,
    quantity: &str,
    tracked: impl fmt::Display,
    recomputed: impl fmt::Display,
    context: impl Into<String>,
) -> Box<Divergence> {
    let d = Box::new(Divergence {
        site,
        stage,
        quantity: quantity.to_string(),
        tracked: tracked.to_string(),
        recomputed: recomputed.to_string(),
        context: context.into(),
    });
    // Every divergence — whether from a planner hook or an injected-fault
    // audit run — also lands in the trace, pinned to its site and stage.
    if mmrepl_obs::enabled() {
        mmrepl_obs::event(
            "audit_divergence",
            d.site.map(SiteId::raw),
            &d.stage.to_string(),
            format!(
                "{}: tracked {} vs recomputed {} ({})",
                d.quantity, d.tracked, d.recomputed, d.context
            ),
        );
    }
    d
}

/// Re-derives every incrementally maintained quantity of `work` from its
/// partition rows and store, returning the first divergence found.
///
/// Checks, in order:
/// 1. per-page stream totals (exact `u64` equality — Eq. 3/4 inputs);
/// 2. local marks only on stored objects (the store invariant);
/// 3. per-page optional-cost accumulators (Eq. 6, within `1e-6`);
/// 4. per-object mark counts (orphan detection);
/// 5. the serving load (Eq. 8 LHS minus update accounting, `1e-6`);
/// 6. the update/refresh load against the store (`1e-6`);
/// 7. stored bytes: `Σ HTML + Σ stored object sizes` — **exact**;
/// 8. demand conservation: serving load + repository request load must
///    equal the partition-independent total demand (`Σ f·(1 + |U_j| +
///    f(W_j,M)·Σ U'_jk)`).
///
/// The Eq. 8/9/10 *feasibility* constraints are deliberately not checked
/// here — see [`check_site_constraints`].
pub fn audit_site(work: &SiteWork<'_>, stage: AuditStage) -> Result<(), Box<Divergence>> {
    AUDITS.fetch_add(1, Ordering::Relaxed);
    let sys = work.system();
    let site = Some(work.site());
    let params = work.params();

    let mut raw_load = 0.0;
    let mut total_demand = 0.0;
    let mut marks: HashMap<ObjectId, u32> = HashMap::new();

    for (idx, &pid) in work.pages().iter().enumerate() {
        let page = sys.page(pid);
        let part = work.partition(idx);
        let f = page.freq.get();

        let mut s = Streams::all_local_base(page.html_size);
        for (slot, &k) in page.compulsory.iter().enumerate() {
            let size = sys.object_size(k);
            if part.local_compulsory[slot] {
                if !work.is_stored(k) {
                    return Err(diverged(
                        site,
                        stage,
                        "store invariant",
                        "object not in store",
                        "compulsory slot marked local",
                        format!("page {pid} (index {idx}), slot {slot}, object {k}"),
                    ));
                }
                s.local_bytes += size.get();
                *marks.entry(k).or_insert(0) += 1;
            } else {
                s.remote_bytes += size.get();
                s.n_remote += 1;
            }
        }
        if s != *work.streams(idx) {
            return Err(diverged(
                site,
                stage,
                "stream totals",
                format!("{:?}", work.streams(idx)),
                format!("{s:?}"),
                format!("page {pid} (index {idx})"),
            ));
        }

        let mut opt_local = 0.0;
        for (slot, o) in page.optional.iter().enumerate() {
            if part.local_optional[slot] {
                if !work.is_stored(o.object) {
                    return Err(diverged(
                        site,
                        stage,
                        "store invariant",
                        "object not in store",
                        "optional slot marked local",
                        format!("page {pid} (index {idx}), slot {slot}, object {}", o.object),
                    ));
                }
                *marks.entry(o.object).or_insert(0) += 1;
                opt_local += o.prob;
            }
        }

        let oc = OptionalCost::build(
            page.opt_req_factor,
            params,
            page.optional
                .iter()
                .enumerate()
                .map(|(slot, o)| (o.prob, sys.object_size(o.object), part.local_optional[slot])),
        );
        let tracked_oc = work.optional_cost(idx);
        if (oc.time() - tracked_oc.time()).abs() > FP_EPS {
            return Err(diverged(
                site,
                stage,
                "optional download cost (Eq. 6 accumulator)",
                tracked_oc.time(),
                oc.time(),
                format!("page {pid} (index {idx})"),
            ));
        }

        raw_load += f * (1.0 + part.n_local_compulsory() as f64 + page.opt_req_factor * opt_local);
        total_demand += f * (1.0 + page.n_compulsory() as f64 + page.expected_optional_requests());
    }

    // Per-object mark counts. Every marked object is stored (checked
    // above), so the stored set covers all objects with marks; stored
    // objects without marks (allocated mid-offload) must read zero.
    let stored = work.stored_objects();
    for &k in &stored {
        let recomputed = marks.get(&k).copied().unwrap_or(0);
        let tracked = work.marks_on(k);
        if tracked != recomputed {
            return Err(diverged(
                site,
                stage,
                "local mark count",
                tracked,
                recomputed,
                format!("object {k}"),
            ));
        }
    }

    // Serving load: the tracked Eq. 8 LHS minus the update-accounting
    // term, which is audited separately against the store below.
    let tracked_raw = work.load() - work.update_load();
    if (raw_load - tracked_raw).abs() > FP_EPS {
        return Err(diverged(
            site,
            stage,
            "site serving load (Eq. 8 LHS)",
            tracked_raw,
            raw_load,
            "HTTP requests/s from local page serving, excluding update accounting",
        ));
    }

    let upd: f64 = stored.iter().map(|&k| work.update_rate_of(k)).sum();
    if (upd - work.update_load()).abs() > FP_EPS {
        return Err(diverged(
            site,
            stage,
            "update/refresh load",
            work.update_load(),
            upd,
            "sum of stored objects' update rates (read/write extension)",
        ));
    }

    // Storage is integer bookkeeping, so the check is exact: HTML of
    // every local page plus the size of every stored object.
    let html: u64 = work
        .pages()
        .iter()
        .map(|&p| sys.page(p).html_size.get())
        .sum();
    let bytes = html
        + stored
            .iter()
            .map(|&k| sys.object_size(k).get())
            .sum::<u64>();
    if bytes != work.storage_used() {
        return Err(diverged(
            site,
            stage,
            "storage bytes (Eq. 10 LHS)",
            work.storage_used(),
            bytes,
            format!("HTML {html} B + {} stored objects", stored.len()),
        ));
    }

    // Demand conservation: every reference is served either locally or
    // by the repository, so serving load + repository request load must
    // equal the partition-independent total demand.
    let repo_requests = work.repo_load() - work.update_load();
    let conserved = raw_load + repo_requests;
    if (conserved - total_demand).abs() > FP_EPS * (1.0 + total_demand.abs()) {
        return Err(diverged(
            site,
            stage,
            "demand conservation (site + repository split)",
            conserved,
            total_demand,
            "serving load + repository request load vs total reference demand",
        ));
    }

    Ok(())
}

/// [`audit_site`] that panics with the full divergence report. This is
/// what the `#[cfg(feature = "audit")]` pipeline hooks call.
pub fn assert_consistent(work: &SiteWork<'_>, stage: AuditStage) {
    if let Err(d) = audit_site(work, stage) {
        panic!("{d}");
    }
}

/// Checks the per-site feasibility constraints against the *recomputable*
/// state: Eq. 8 (`load ≤ C(S_i)`, within [`CONSTRAINT_EPS`]) and Eq. 10
/// (`storage used ≤ Size(S_i)`, exact). Call at stage boundaries where
/// the stage report claims feasibility.
pub fn check_site_constraints(
    work: &SiteWork<'_>,
    stage: AuditStage,
) -> Result<(), Box<Divergence>> {
    let cap = work.capacity();
    if work.load() > cap + CONSTRAINT_EPS {
        return Err(diverged(
            Some(work.site()),
            stage,
            "Eq. 8 violated: site load exceeds C(S_i)",
            format!("capacity {cap}"),
            format!("load {}", work.load()),
            "restoration claimed feasibility with an overloaded site",
        ));
    }
    if work.storage_used() > work.storage_capacity() {
        return Err(diverged(
            Some(work.site()),
            stage,
            "Eq. 10 violated: storage use exceeds Size(S_i)",
            format!("capacity {} B", work.storage_capacity()),
            format!("used {} B", work.storage_used()),
            "restoration claimed feasibility with an overfull store",
        ));
    }
    Ok(())
}

/// Checks Eq. 9: the aggregate repository request load of all sites must
/// not exceed `C(R)` (within [`CONSTRAINT_EPS`]).
pub fn check_repo_constraint(
    works: &[SiteWork<'_>],
    repo_capacity: f64,
    stage: AuditStage,
) -> Result<(), Box<Divergence>> {
    let total: f64 = works.iter().map(|w| w.repo_load()).sum();
    if total > repo_capacity + CONSTRAINT_EPS {
        return Err(diverged(
            None,
            stage,
            "Eq. 9 violated: repository load exceeds C(R)",
            format!("capacity {repo_capacity}"),
            format!("load {total}"),
            format!("summed over {} sites", works.len()),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::restore_capacity;
    use crate::partition::partition_all;
    use crate::storage::restore_storage;
    use mmrepl_model::CostParams;
    use mmrepl_workload::{generate_system, WorkloadParams};

    fn audited_sys(seed: u64) -> mmrepl_model::System {
        generate_system(&WorkloadParams::small(), seed)
            .unwrap()
            .with_storage_fraction(0.6)
            .with_processing_fraction(0.9)
    }

    #[test]
    fn fresh_and_restored_state_audits_clean() {
        let sys = audited_sys(11);
        let placement = partition_all(&sys);
        for s in sys.sites().ids() {
            let mut w = SiteWork::new(&sys, s, &placement, CostParams::default());
            audit_site(&w, AuditStage::Partition).unwrap();
            let st = restore_storage(&mut w);
            audit_site(&w, AuditStage::StorageRestore).unwrap();
            let cp = restore_capacity(&mut w);
            audit_site(&w, AuditStage::CapacityRestore).unwrap();
            if st.feasible {
                assert!(w.storage_used() <= w.storage_capacity());
            }
            if cp.feasible {
                check_site_constraints(&w, AuditStage::CapacityRestore).unwrap();
            }
        }
        assert!(audits_performed() > 0);
    }

    #[test]
    fn corrupted_load_is_pinpointed() {
        let sys = audited_sys(12);
        let placement = partition_all(&sys);
        let site = sys.sites().ids().next().unwrap();
        let mut w = SiteWork::new(&sys, site, &placement, CostParams::default());
        w.debug_corrupt_load(0.25);
        let d = audit_site(&w, AuditStage::OffloadRound).unwrap_err();
        assert_eq!(d.site, Some(site));
        assert_eq!(d.stage, AuditStage::OffloadRound);
        assert!(d.quantity.contains("serving load"), "{d}");
        let report = d.to_string();
        assert!(report.contains("offload round"), "{report}");
        assert!(report.contains("tracked"), "{report}");
    }

    #[test]
    fn corrupted_storage_is_pinpointed() {
        let sys = audited_sys(13);
        let placement = partition_all(&sys);
        let site = sys.sites().ids().next().unwrap();
        let mut w = SiteWork::new(&sys, site, &placement, CostParams::default());
        w.debug_corrupt_stored_bytes(1);
        let d = audit_site(&w, AuditStage::Validate).unwrap_err();
        assert!(d.quantity.contains("storage"), "{d}");
    }

    #[test]
    fn overload_trips_the_constraint_check() {
        let sys = audited_sys(14).with_processing_fraction(0.05);
        let placement = partition_all(&sys);
        let overloaded = sys.sites().ids().find(|&s| {
            let w = SiteWork::new(&sys, s, &placement, CostParams::default());
            w.load() > w.capacity()
        });
        let s = overloaded.expect("5% processing capacity should overload some site");
        let w = SiteWork::new(&sys, s, &placement, CostParams::default());
        let d = check_site_constraints(&w, AuditStage::Partition).unwrap_err();
        assert!(d.quantity.contains("Eq. 8"), "{d}");
    }
}
