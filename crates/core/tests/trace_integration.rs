//! End-to-end tracing through the planner pipeline: every stage shows up
//! in the trace, stage wall times account for the total, and parallel
//! runs aggregate worker recorders identically to sequential ones.

use mmrepl_core::{audit_site, partition_all, AuditStage, ReplicationPolicy, SiteWork};
use mmrepl_model::CostParams;
use mmrepl_workload::{generate_system, WorkloadParams};
use std::sync::Mutex;

// The obs enabled flag and sink are process-wide; every test here
// serialises on this lock.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn constrained_system(seed: u64) -> mmrepl_model::System {
    generate_system(&WorkloadParams::small(), seed)
        .unwrap()
        .with_storage_fraction(0.5)
        .with_processing_fraction(0.8)
}

/// Runs `f` with tracing enabled and returns the drained trace.
fn traced(f: impl FnOnce()) -> mmrepl_obs::Recorder {
    mmrepl_obs::reset();
    mmrepl_obs::set_enabled(true);
    f();
    mmrepl_obs::set_enabled(false);
    mmrepl_obs::take()
}

const STAGES: [&str; 4] = [
    "plan.partition",
    "plan.storage_restore",
    "plan.capacity_restore",
    "plan.offload",
];

#[test]
fn every_planner_stage_lands_in_the_trace() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sys = constrained_system(11);
    let trace = traced(|| {
        ReplicationPolicy::new().plan(&sys);
    });
    for stage in STAGES {
        let s = trace
            .span(stage)
            .unwrap_or_else(|| panic!("missing span {stage}"));
        assert!(s.count > 0, "{stage} never closed");
    }
    assert!(trace.span("plan.total").is_some());
    assert!(trace.span("plan.assemble").is_some());
    // Stage counters: the squeeze forces real restoration work.
    assert!(trace.counter("storage.heap_pops") > 0);
    assert!(trace.counter("storage.deallocated") > 0);
    // Capacity restoration may be a no-op at this squeeze, but its
    // counters are always stamped.
    assert!(trace.counters().contains_key("capacity.moves"));
    assert!(trace.counters().contains_key("capacity.heap_pops"));
    assert!(trace.counter("partition.objects_local") > 0);
    // Decision provenance covers the compulsory objects (ring permitting).
    assert!(trace.decisions_len() > 0);
    let d = trace.decisions().next().unwrap();
    assert!(d.local_s > 0.0 && d.remote_s > 0.0);
}

#[test]
#[cfg_attr(
    feature = "audit",
    ignore = "audit hooks run between the stage spans (inside plan.total), so the \
              stage-sum accounting only holds for the production planner"
)]
fn stage_times_sum_to_within_ten_percent_of_total() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sys = constrained_system(12);
    // Warm up (pool, allocator, page cache) so the measured run is steady.
    // Pin to one thread: stage spans sum *thread* time, so the
    // stages-partition-the-total claim only holds sequentially.
    ReplicationPolicy::new().plan_parallel(&sys, 1);
    let trace = traced(|| {
        ReplicationPolicy::new().plan_parallel(&sys, 1);
    });
    let total = trace.span("plan.total").expect("total span").total_s();
    let sum: f64 = STAGES
        .iter()
        .chain(["plan.assemble"].iter())
        .map(|s| trace.span(s).map(|v| v.total_s()).unwrap_or(0.0))
        .sum();
    assert!(total > 0.0);
    // Single-threaded plan: the stages partition the total wall time up
    // to loop glue, so their sum must land within 10% of the total.
    assert!(
        sum <= total * 1.001,
        "stages sum {sum} exceeds total {total}"
    );
    assert!(
        sum >= total * 0.9,
        "stages sum {sum} covers less than 90% of total {total}"
    );
}

#[test]
fn parallel_plan_trace_matches_sequential_counters() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sys = constrained_system(13);
    let policy = ReplicationPolicy::new();
    let seq = traced(|| {
        policy.plan_parallel(&sys, 1);
    });
    let par = traced(|| {
        policy.plan_parallel(&sys, 4);
    });
    // Worker recorders flush through the pool, so the aggregate counters
    // are identical to the sequential run's — except the shard-imbalance
    // diagnostic, which measures wall time and legitimately varies.
    let algorithmic = |r: &mmrepl_obs::Recorder| {
        let mut c = r.counters().clone();
        c.remove("plan.restore.shard.imbalance_x100");
        c
    };
    assert_eq!(algorithmic(&seq), algorithmic(&par));
    assert_eq!(seq.decisions_len(), par.decisions_len());
    // Same spans close the same number of times, whatever the threading.
    let counts = |r: &mmrepl_obs::Recorder| -> Vec<(String, u64)> {
        r.spans()
            .iter()
            .map(|(k, v)| (k.clone(), v.count))
            .collect()
    };
    assert_eq!(counts(&seq), counts(&par));
}

#[test]
fn audit_divergence_is_routed_into_the_trace() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sys = generate_system(&WorkloadParams::small(), 14).unwrap();
    let placement = partition_all(&sys);
    let site = sys.sites().ids().next().unwrap();
    let trace = traced(|| {
        let mut work = SiteWork::new(&sys, site, &placement, CostParams::default());
        work.debug_corrupt_load(0.25);
        let err = audit_site(&work, AuditStage::Validate);
        assert!(err.is_err(), "corrupted load must diverge");
    });
    let ev = trace
        .events()
        .iter()
        .find(|e| e.kind == "audit_divergence")
        .expect("divergence event in trace");
    assert_eq!(ev.site, Some(site.raw()));
    assert_eq!(ev.stage, AuditStage::Validate.to_string());
    assert!(ev.detail.contains("tracked"), "detail: {}", ev.detail);
}
