//! Property tests for the policy's working state: arbitrary mark-flip
//! sequences must keep the incremental bookkeeping exactly consistent
//! with a from-scratch recomputation, and the restoration stages must
//! deliver what they claim for arbitrary constraint tightness.

use mmrepl_core::{
    audit_site, check_repo_constraint, check_site_constraints, partition_all, restore_capacity,
    restore_storage, run_negotiation, run_offload, AncestorPolicy, AuditStage, NegotiateConfig,
    OffloadConfig, PlannerConfig, ReplicationPolicy, SiteWork, StrategyKind,
};
use mmrepl_model::{ConstraintReport, CostParams, IdVec, NodeId, Secs, SiteId, Topology};
use mmrepl_netsim::FaultConfig;
use mmrepl_workload::{generate_system, TopologyParams, WorkloadParams};
use proptest::prelude::*;

fn small_sys(seed: u64) -> mmrepl_model::System {
    generate_system(&WorkloadParams::small(), seed).expect("valid params")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random flip sequences keep every derived quantity consistent.
    #[test]
    fn random_flips_stay_consistent(
        seed in 0u64..1000,
        flips in prop::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..60),
    ) {
        let sys = small_sys(seed);
        let placement = partition_all(&sys);
        let mut w = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        for (pi, si, to_local) in flips {
            let idx = (pi as usize) % w.n_pages();
            let page = sys.page(w.pages()[idx]);
            if page.n_compulsory() == 0 {
                continue;
            }
            let slot = (si as usize) % page.n_compulsory();
            let object = page.compulsory[slot];
            if to_local {
                // Only legal if the object is stored.
                if w.is_stored(object) {
                    w.set_compulsory(idx, slot, true);
                }
            } else {
                w.set_compulsory(idx, slot, false);
            }
        }
        w.validate_consistency();
    }

    /// delta_d_dealloc is an exact prediction for arbitrary victims.
    #[test]
    fn dealloc_prediction_exact(seed in 0u64..1000, pick in any::<u64>()) {
        let sys = small_sys(seed);
        let placement = partition_all(&sys);
        let mut w = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let stored = w.stored_objects();
        prop_assume!(!stored.is_empty());
        let victim = stored[(pick as usize) % stored.len()];
        let predicted = w.delta_d_dealloc(victim);
        let before = w.total_d();
        w.dealloc(victim);
        let actual = w.total_d() - before;
        prop_assert!((actual - predicted).abs() < 1e-6,
            "predicted {} actual {}", predicted, actual);
        prop_assert!(actual >= -1e-9, "dealloc improved D by {}", -actual);
        w.validate_consistency();
    }

    /// Storage restoration always ends within capacity (or with an empty
    /// store), for arbitrary tightness.
    #[test]
    fn storage_restore_postcondition(seed in 0u64..500, frac in 0.01f64..1.2) {
        let sys = small_sys(seed)
            .with_storage_fraction(frac)
            .with_processing_fraction(f64::INFINITY);
        let placement = partition_all(&sys);
        let mut w = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        let report = restore_storage(&mut w);
        if report.feasible {
            prop_assert!(w.storage_used() <= w.storage_capacity());
        } else {
            prop_assert!(w.stored_objects().is_empty());
        }
        w.validate_consistency();
    }

    /// Capacity restoration always ends within capacity (or with zero
    /// movable marks), for arbitrary tightness.
    #[test]
    fn capacity_restore_postcondition(seed in 0u64..500, frac in 0.01f64..1.2) {
        let sys = small_sys(seed).with_processing_fraction(frac);
        let placement = partition_all(&sys);
        let mut w = SiteWork::new(&sys, SiteId::new(0), &placement, CostParams::default());
        restore_storage(&mut w);
        let report = restore_capacity(&mut w);
        if report.feasible {
            prop_assert!(w.load() <= w.capacity() + 1e-6);
        } else {
            let marks: usize = (0..w.n_pages())
                .map(|i| w.partition(i).n_local_compulsory() + w.partition(i).n_local_optional())
                .sum();
            prop_assert_eq!(marks, 0);
        }
        w.validate_consistency();
    }

    /// Off-loading protocol invariants for arbitrary repository caps:
    /// workload is conserved (repository reduction == site absorption),
    /// no site constraint is ever broken to satisfy the repository, and
    /// the repository load never increases.
    #[test]
    fn offload_conserves_workload_and_respects_sites(
        seed in 0u64..300,
        cap_frac in 0.0f64..1.2,
        headroom in 1.0f64..1.6,
    ) {
        let sys = small_sys(seed).with_processing_fraction(headroom);
        let placement = partition_all(&sys);
        let mut works: Vec<SiteWork<'_>> = sys
            .sites()
            .ids()
            .map(|s| {
                let mut w = SiteWork::new(&sys, s, &placement, CostParams::default());
                restore_storage(&mut w);
                restore_capacity(&mut w);
                w
            })
            .collect();
        let before: f64 = works.iter().map(|w| w.repo_load()).sum();
        let cap = before * cap_frac;
        let outcome = run_offload(&mut works, cap, &OffloadConfig::default());
        let after: f64 = works.iter().map(|w| w.repo_load()).sum();

        // Repository load never grows; the report accounts it exactly.
        prop_assert!(after <= before + 1e-6);
        prop_assert!((before - after - outcome.report.absorbed).abs() < 1e-6,
            "conservation: moved {} vs absorbed {}", before - after, outcome.report.absorbed);
        // Feasibility claims are honest and sites stay within Eq. 8/10.
        if outcome.report.feasible {
            prop_assert!(after <= cap + 1e-6);
        }
        for w in &works {
            prop_assert!(w.load() <= w.capacity() + 1e-6, "Eq. 8 broken at {}", w.site());
            prop_assert!(w.storage_used() <= w.storage_capacity(),
                "Eq. 10 broken at {}", w.site());
            w.validate_consistency();
        }
    }

    /// Acceptance property 1: under a reliable bus the asynchronous
    /// proposal/counter-proposal negotiation (paper strategy) converges
    /// to **exactly** the synchronous `OFF_LOADING_REPOSITORY` placement
    /// — same per-site load/storage bit patterns, same rounds, same
    /// absorbed workload, same feasibility verdict.
    #[test]
    fn reliable_negotiation_is_bit_identical_to_synchronous_offload(
        seed in 0u64..300,
        cap_frac in 0.0f64..1.2,
        headroom in 1.0f64..1.6,
    ) {
        let sys = small_sys(seed).with_processing_fraction(headroom);
        let placement = partition_all(&sys);
        let build = || -> Vec<SiteWork<'_>> {
            sys.sites()
                .ids()
                .map(|s| {
                    let mut w = SiteWork::new(&sys, s, &placement, CostParams::default());
                    restore_storage(&mut w);
                    restore_capacity(&mut w);
                    w
                })
                .collect()
        };
        let mut sync_works = build();
        let before: f64 = sync_works.iter().map(|w| w.repo_load()).sum();
        let cap = before * cap_frac;
        let sync = run_offload(&mut sync_works, cap, &OffloadConfig::default());

        let mut neg_works = build();
        let neg = run_negotiation(
            &mut neg_works,
            cap,
            &OffloadConfig::default(),
            &NegotiateConfig::default(),
        );

        for (a, b) in sync_works.iter().zip(&neg_works) {
            prop_assert_eq!(a.site(), b.site());
            prop_assert_eq!(a.load().to_bits(), b.load().to_bits(), "site {}", a.site());
            prop_assert_eq!(a.repo_load().to_bits(), b.repo_load().to_bits(),
                "site {}", a.site());
            prop_assert_eq!(a.space_left(), b.space_left(), "site {}", a.site());
            prop_assert_eq!(a.total_d().to_bits(), b.total_d().to_bits(),
                "site {}", a.site());
        }
        prop_assert_eq!(neg.report.rounds, sync.report.rounds);
        prop_assert!((neg.report.absorbed - sync.report.absorbed).abs() < 1e-12);
        prop_assert_eq!(neg.report.swaps, sync.report.swaps);
        prop_assert_eq!(neg.report.feasible, sync.report.feasible);
        prop_assert_eq!(neg.changed, sync.changed);
        prop_assert_eq!(neg.report.retries, 0);
        prop_assert_eq!(neg.report.timeouts, 0);
        prop_assert_eq!(neg.report.degraded_sites, 0);
    }

    /// Acceptance property 2: under seeded loss / reorder / duplication /
    /// jitter, any strategy's negotiation always terminates and its final
    /// placement satisfies Eq. 8 and Eq. 10 at every site, with Eq. 9
    /// feasibility reported from the authoritative final state (not the
    /// protocol's possibly stale belief). `validate_consistency` audits
    /// the full derived-state bookkeeping site by site.
    #[test]
    fn faulty_negotiation_terminates_with_feasible_placement(
        seed in 0u64..200,
        fault_seed in any::<u64>(),
        drop in 0.0f64..0.9,
        duplicate in 0.0f64..0.9,
        reorder in 0.0f64..0.9,
        jitter in 0.0f64..0.5,
        strategy_pick in 0u8..3,
        cap_frac in 0.0f64..1.2,
        headroom in 1.0f64..1.6,
    ) {
        let sys = small_sys(seed).with_processing_fraction(headroom);
        let placement = partition_all(&sys);
        let mut works: Vec<SiteWork<'_>> = sys
            .sites()
            .ids()
            .map(|s| {
                let mut w = SiteWork::new(&sys, s, &placement, CostParams::default());
                restore_storage(&mut w);
                restore_capacity(&mut w);
                w
            })
            .collect();
        let before: f64 = works.iter().map(|w| w.repo_load()).sum();
        let cap = before * cap_frac;
        let strategy = match strategy_pick {
            0 => StrategyKind::GreedyProportional,
            1 => StrategyKind::DeadlineBounded,
            _ => StrategyKind::Auction,
        };
        let config = NegotiateConfig {
            strategy,
            faults: FaultConfig { drop, duplicate, reorder, jitter: Secs(jitter), seed: fault_seed },
            ..NegotiateConfig::default()
        };
        let neg = run_negotiation(&mut works, cap, &OffloadConfig::default(), &config);

        prop_assert!(neg.report.rounds <= OffloadConfig::default().max_rounds);
        let after: f64 = works.iter().map(|w| w.repo_load()).sum();
        prop_assert!(after <= before + 1e-6, "repository load grew");
        prop_assert!((neg.report.final_repo_load - after).abs() < 1e-9,
            "final_repo_load not authoritative");
        prop_assert_eq!(neg.report.feasible, after <= cap + 1e-9);
        for w in &works {
            prop_assert!(w.load() <= w.capacity() + 1e-6, "Eq. 8 broken at {}", w.site());
            prop_assert!(w.storage_used() <= w.storage_capacity(),
                "Eq. 10 broken at {}", w.site());
            w.validate_consistency();
        }
        // The bus fault ledger closes after the protocol's closing drain.
        let st = neg.report.bus;
        prop_assert_eq!(st.sent + st.duplicated_extra, st.delivered + st.dropped);
    }

    /// The dense (CSR) per-site state yields the same plan every time and
    /// on every thread count: placement and report must be byte-identical
    /// across repeated cold plans and pool-parallel plans.
    #[test]
    fn plan_is_bit_identical_across_runs_and_threads(
        seed in 0u64..200,
        sf in 0.05f64..1.2,
        pf in 0.05f64..1.2,
        threads in 1usize..5,
    ) {
        let sys = small_sys(seed)
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let policy = ReplicationPolicy::new();
        let a = policy.plan(&sys);
        let b = policy.plan(&sys);
        prop_assert_eq!(&a.placement, &b.placement);
        prop_assert_eq!(&a.report, &b.report);
        let par = policy.plan_parallel(&sys, threads);
        prop_assert_eq!(&a.placement, &par.placement, "threads {}", threads);
        prop_assert_eq!(&a.report, &par.report, "threads {}", threads);
    }

    /// Sharded restoration is invisible end to end: `plan_parallel` at 1,
    /// 2 and N threads yields byte-identical `PlanOutcome`s, and the
    /// per-site reports aggregate to the same work counters — the shards
    /// did the *same* work, not merely equivalent work.
    #[test]
    fn sharded_plans_agree_on_outcome_and_work_counters(
        seed in 0u64..200,
        sf in 0.05f64..1.2,
        pf in 0.05f64..1.2,
        n in 3usize..9,
    ) {
        let sys = small_sys(seed)
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let policy = ReplicationPolicy::new();
        let aggregate = |o: &mmrepl_core::PlanOutcome| {
            let heap_pops: u64 = o.report.storage.iter().map(|s| s.heap_pops).sum();
            let bytes_freed: u64 = o.report.storage.iter().map(|s| s.bytes_freed).sum();
            let orphaned: usize = o.report.storage.iter().map(|s| s.orphaned).sum();
            (heap_pops, bytes_freed, orphaned)
        };
        let one = policy.plan_parallel(&sys, 1);
        for threads in [2, n] {
            let par = policy.plan_parallel(&sys, threads);
            prop_assert_eq!(&one.placement, &par.placement, "threads {}", threads);
            prop_assert_eq!(&one.report, &par.report, "threads {}", threads);
            prop_assert_eq!(aggregate(&one), aggregate(&par), "threads {}", threads);
        }
    }

    /// Warm-starting from a partition computed on the *unconstrained*
    /// base system matches a cold plan exactly: `PARTITION` reads only
    /// rates, overheads and sizes, so capacity scaling cannot change it.
    #[test]
    fn warm_started_plan_matches_cold_plan(
        seed in 0u64..200,
        sf in 0.05f64..1.2,
        pf in 0.05f64..1.2,
    ) {
        let base = small_sys(seed);
        let initial = partition_all(&base);
        let sys = base
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let policy = ReplicationPolicy::new();
        let warm = policy.plan_with_partition(&sys, &initial);
        let cold = policy.plan(&sys);
        prop_assert_eq!(&warm.placement, &cold.placement);
        prop_assert_eq!(&warm.report, &cold.report);
    }

    /// The full planner never *reports* feasible while violating a
    /// constraint, under joint random tightness.
    #[test]
    fn planner_feasibility_is_honest(
        seed in 0u64..200,
        sf in 0.05f64..1.2,
        pf in 0.05f64..1.2,
        cf in 0.3f64..1.2,
    ) {
        let sys = small_sys(seed)
            .with_storage_fraction(sf)
            .with_processing_fraction(pf)
            .with_central_fraction(cf);
        let outcome = ReplicationPolicy::new().plan(&sys);
        let check = ConstraintReport::check(&sys, &outcome.placement);
        prop_assert_eq!(outcome.report.feasible, check.is_feasible(),
            "report {} vs check {:?}", outcome.report.feasible, check.violations);
    }

    /// Capacity restoration never leaves Eq. 8 (or, summed over sites,
    /// Eq. 9's per-site contributions) violated when it claims success,
    /// and never corrupts the bookkeeping either way — checked through
    /// the invariant auditor rather than ad-hoc assertions.
    #[test]
    fn capacity_restore_never_leaves_eq8_violated(
        seed in 0u64..400,
        sf in 0.05f64..1.2,
        pf in 0.01f64..1.2,
    ) {
        let sys = small_sys(seed)
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let placement = partition_all(&sys);
        let mut works: Vec<SiteWork<'_>> = sys
            .sites()
            .ids()
            .map(|s| SiteWork::new(&sys, s, &placement, CostParams::default()))
            .collect();
        for w in &mut works {
            restore_storage(w);
            let report = restore_capacity(w);
            if let Err(d) = audit_site(w, AuditStage::CapacityRestore) {
                prop_assert!(false, "bookkeeping diverged: {}", d);
            }
            if report.feasible {
                if let Err(d) = check_site_constraints(w, AuditStage::CapacityRestore) {
                    prop_assert!(false, "Eq. 8/10 violated: {}", d);
                }
            }
        }
        // Eq. 9 with the repository capacity set to exactly the residual
        // load must hold trivially — the checker itself must agree.
        let residual: f64 = works.iter().map(|w| w.repo_load()).sum();
        prop_assert!(check_repo_constraint(&works, residual, AuditStage::CapacityRestore).is_ok());
    }

    /// Star-degeneracy oracle: wrapping a star system in the degenerate
    /// single-node tree must not change one bit of the plan, under either
    /// ancestor policy and arbitrary constraint tightness. The tree code
    /// path (selection, channel-parameterised partition, per-node
    /// off-loading, serving-aware pricing) must collapse exactly onto the
    /// paper's planner when the hierarchy is trivial.
    #[test]
    fn single_node_tree_plans_bit_identical_to_star(
        seed in 0u64..200,
        sf in 0.05f64..1.2,
        pf in 0.05f64..1.2,
        flat in any::<bool>(),
    ) {
        let star = small_sys(seed)
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let topo = Topology::single_node(star.n_sites(), star.repository().capacity);
        let tree = star.with_topology(topo).expect("degenerate tree is valid");
        let policy = ReplicationPolicy::with_config(PlannerConfig {
            ancestor: if flat { AncestorPolicy::Flat } else { AncestorPolicy::Closest },
            ..PlannerConfig::default()
        });
        let a = policy.plan(&star);
        let b = policy.plan(&tree);
        prop_assert_eq!(&a.placement, &b.placement);
        prop_assert_eq!(a.report.objective.to_bits(), b.report.objective.to_bits(),
            "objective {} vs {}", a.report.objective, b.report.objective);
        prop_assert_eq!(&a.report.storage, &b.report.storage);
        prop_assert_eq!(&a.report.capacity, &b.report.capacity);
        prop_assert_eq!(&a.report.offload, &b.report.offload);
        prop_assert_eq!(a.report.feasible, b.report.feasible);
        prop_assert!(b.report.serving.iter().all(|&n| n == 0));
        prop_assert_eq!(b.report.promotions, 0);
        prop_assert_eq!(b.report.qos_blocked, 0);
    }

    /// On genuine trees the planner's feasibility claim must agree with
    /// the serving-aware constraint checker, for arbitrary tightness and
    /// both ancestor policies. (With the `audit` feature on, every plan
    /// in here also runs the per-stage invariant auditor over the tree
    /// path's channel-parameterised bookkeeping.)
    #[test]
    fn tree_planner_feasibility_is_honest(
        seed in 0u64..100,
        sf in 0.05f64..1.2,
        pf in 0.05f64..1.2,
        flat in any::<bool>(),
    ) {
        let mut params = WorkloadParams::small();
        params.topology = TopologyParams::edge();
        let sys = generate_system(&params, seed)
            .expect("valid params")
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let policy = ReplicationPolicy::with_config(PlannerConfig {
            ancestor: if flat { AncestorPolicy::Flat } else { AncestorPolicy::Closest },
            ..PlannerConfig::default()
        });
        let outcome = policy.plan(&sys);
        let serving: IdVec<SiteId, NodeId> = outcome
            .report
            .serving
            .iter()
            .map(|&n| NodeId::new(n))
            .collect();
        let check = ConstraintReport::check_with_serving(&sys, &outcome.placement, &serving);
        prop_assert_eq!(outcome.report.feasible, check.is_feasible(),
            "report {} vs check {:?}", outcome.report.feasible, check.violations);
    }

    /// The measured-demand re-selection knob is a strict no-op wherever
    /// there is nothing to re-select: star systems (no topology) and
    /// single-node trees plan bit-identically with it on or off.
    #[test]
    fn reselect_is_bit_identical_on_star_systems(
        seed in 0u64..300,
        sf in 0.3f64..1.1,
        pf in 0.3f64..1.1,
        wrap in any::<bool>(),
    ) {
        let star = small_sys(seed)
            .with_storage_fraction(sf)
            .with_processing_fraction(pf);
        let sys = if wrap {
            let topo = Topology::single_node(star.n_sites(), star.repository().capacity);
            star.with_topology(topo).unwrap()
        } else {
            star
        };
        let plan = |reselect| {
            ReplicationPolicy::with_config(PlannerConfig {
                reselect,
                ..PlannerConfig::default()
            })
            .plan(&sys)
        };
        let off = plan(false);
        let on = plan(true);
        prop_assert_eq!(off.placement, on.placement);
        prop_assert_eq!(off.report, on.report);
    }

    /// Storage restoration never leaves Eq. 10 violated when it claims
    /// success, and the dense bookkeeping survives the dealloc /
    /// repartition / orphan-drop churn — checked through the auditor.
    #[test]
    fn storage_restore_never_leaves_eq10_violated(
        seed in 0u64..400,
        frac in 0.01f64..1.2,
    ) {
        let sys = small_sys(seed)
            .with_storage_fraction(frac)
            .with_processing_fraction(f64::INFINITY);
        let placement = partition_all(&sys);
        for site in sys.sites().ids() {
            let mut w = SiteWork::new(&sys, site, &placement, CostParams::default());
            let report = restore_storage(&mut w);
            if let Err(d) = audit_site(&w, AuditStage::StorageRestore) {
                prop_assert!(false, "bookkeeping diverged: {}", d);
            }
            if report.feasible {
                prop_assert!(w.storage_used() <= w.storage_capacity());
                // The auditor's constraint check must concur (its Eq. 8
                // arm is vacuous here — processing is unconstrained).
                if let Err(d) = check_site_constraints(&w, AuditStage::StorageRestore) {
                    prop_assert!(false, "Eq. 10 violated: {}", d);
                }
            }
        }
    }
}
