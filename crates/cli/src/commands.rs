//! Command implementations for the `mmrepl` binary.

use crate::args::{Command, PolicyName, Scale, StudyName};
use mmrepl_baselines::{GdsRouter, LfuRouter, LruRouter, StaticRouter};
use mmrepl_core::{
    audit_site, partition_all, AncestorPolicy, AuditStage, PlannerConfig, ReplicationPolicy,
    SiteWork,
};
use mmrepl_model::{Bytes, ConstraintReport, CostParams, NodeId, Placement, System};
use mmrepl_serve::{route_traces, PlacementSnapshot, RouteStats};
use mmrepl_sim::replay_all;
use mmrepl_workload::{
    generate_system, generate_trace, TopologyParams, TraceConfig, WorkloadParams,
};
use std::fmt::Write as _;
use std::io::IsTerminal as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A CLI-level error: message plus context, printed to stderr.
pub type CliError = String;

/// Dispatches a parsed command.
pub fn run(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Generate {
            seed,
            scale,
            topology,
            out,
        } => generate(seed, scale, topology, &out),
        Command::Inspect { system } => inspect(&system),
        Command::Plan {
            system,
            storage,
            processing,
            central,
            alpha,
            ancestor,
            threads,
            out,
            trace_out,
        } => plan(
            &system,
            storage,
            processing,
            central,
            alpha,
            ancestor,
            threads,
            &out,
            trace_out.as_deref(),
        ),
        Command::Evaluate {
            system,
            placement,
            policy,
            seed,
            storage,
            processing,
        } => evaluate(
            &system,
            placement.as_deref(),
            policy,
            seed,
            storage,
            processing,
        ),
        Command::Compare {
            system,
            seed,
            storage,
            processing,
        } => compare(&system, seed, storage, processing),
        Command::Sweep {
            figure,
            runs,
            seed,
            paper,
            out,
            trace_out,
        } => sweep(figure, runs, seed, paper, &out, trace_out.as_deref()),
        Command::Online {
            epochs,
            rotation,
            windows,
            budget,
            runs,
            seed,
            paper,
            out,
            trace_out,
            expose,
            scrape_interval,
        } => online(
            epochs,
            rotation,
            windows,
            budget,
            runs,
            seed,
            paper,
            &out,
            trace_out.as_deref(),
            expose.as_deref(),
            scrape_interval,
        ),
        Command::Federate {
            preset,
            runs,
            seed,
            paper,
            out,
            trace_out,
        } => federate(preset, runs, seed, paper, &out, trace_out.as_deref()),
        Command::Negotiate {
            central,
            runs,
            seed,
            paper,
            out,
            trace_out,
            expose,
            scrape_interval,
        } => negotiate(
            central,
            runs,
            seed,
            paper,
            &out,
            trace_out.as_deref(),
            expose.as_deref(),
            scrape_interval,
        ),
        Command::Audit {
            seeds,
            start,
            inject,
            trace_out,
        } => audit(seeds, start, inject, trace_out.as_deref()),
        Command::Trace {
            system,
            seed,
            storage,
            processing,
            out,
        } => trace(system.as_deref(), seed, storage, processing, &out),
        Command::Route {
            system,
            placement,
            seed,
            storage,
            processing,
            threads,
            out,
            expose,
            scrape_interval,
        } => route(
            &system,
            placement.as_deref(),
            seed,
            storage,
            processing,
            threads,
            out.as_deref(),
            expose.as_deref(),
            scrape_interval,
        ),
        Command::Top {
            study,
            refresh_ms,
            frames,
            dump,
            seed,
        } => top(study, refresh_ms, frames, dump.as_deref(), seed),
    }
}

/// The observability envelope around one command: structured tracing to
/// `trace_out` and/or the live telemetry exporter on `expose` (a
/// `host:port` HTTP endpoint or a scrape-file path, flushed every
/// `scrape_interval` seconds). With both `None` the closure runs
/// untouched — the disabled-path cost is a single relaxed atomic load
/// per call site.
fn with_obs<T>(
    trace_out: Option<&Path>,
    expose: Option<&str>,
    scrape_interval: f64,
    f: impl FnOnce() -> T,
) -> Result<T, CliError> {
    if trace_out.is_none() && expose.is_none() {
        return Ok(f());
    }
    // Parse the exporter target before touching global state so a bad
    // --expose spec fails cleanly.
    let target = expose
        .map(str::parse::<mmrepl_obs::ScrapeTarget>)
        .transpose()
        .map_err(|e| format!("--expose: {e}"))?;
    mmrepl_obs::reset();
    mmrepl_obs::set_enabled(true);
    let exporter = target
        .map(|t| {
            mmrepl_obs::register_core_metrics();
            let exp = mmrepl_obs::Exporter::start(t, Duration::from_secs_f64(scrape_interval))
                .map_err(|e| format!("starting telemetry exporter: {e}"))?;
            println!("telemetry exposition at {}", exp.endpoint());
            Ok::<_, CliError>(exp)
        })
        .transpose()?;
    let value = f();
    if let Some(exp) = exporter {
        exp.stop();
    }
    mmrepl_obs::set_enabled(false);
    if let Some(path) = trace_out {
        let rec = mmrepl_obs::take();
        mmrepl_obs::write_jsonl(&rec, path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        print!("{}", mmrepl_obs::stage_table(&rec));
        println!("wrote trace {}", path.display());
    }
    Ok(value)
}

/// Runs `f` with the structured tracer enabled, writes the drained trace
/// as JSON Lines to `out`, and prints the per-stage breakdown table.
fn with_trace<T>(out: Option<&Path>, f: impl FnOnce() -> T) -> Result<T, CliError> {
    with_obs(out, None, 1.0, f)
}

/// `mmrepl top`: drive a quick study on a background thread and render
/// the live telemetry registry until it finishes.
///
/// The render loop owns the exposition clock (`slo_tick` +
/// `advance_windows` once per frame); no [`mmrepl_obs::Exporter`] runs
/// concurrently, so the windowed rates and SLO burn windows advance
/// exactly once per refresh period.
fn top(
    study: StudyName,
    refresh_ms: u64,
    frames: usize,
    dump: Option<&Path>,
    seed: Option<u64>,
) -> Result<(), CliError> {
    if let Some(dir) = dump {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    mmrepl_obs::reset();
    mmrepl_obs::set_enabled(true);
    mmrepl_obs::register_core_metrics();
    let done = Arc::new(AtomicBool::new(false));
    let runner = {
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name("mmrepl-top-study".into())
            .spawn(move || {
                run_top_study(study, seed);
                done.store(true, Ordering::SeqCst);
            })
            .map_err(|e| format!("spawning the study thread: {e}"))?
    };

    let refresh = Duration::from_millis(refresh_ms);
    let dt = refresh.as_secs_f64();
    let ansi = std::io::stdout().is_terminal();
    let mut prev: Option<mmrepl_obs::TelemetrySnapshot> = None;
    let mut frame = 0usize;
    loop {
        std::thread::sleep(refresh);
        mmrepl_obs::slo_tick();
        mmrepl_obs::advance_windows(dt);
        let cur = mmrepl_obs::gather();
        let screen = crate::dash::render_dashboard(prev.as_ref(), &cur, dt);
        if ansi {
            // Clear and home between frames; plain appended frames when
            // piped so the output stays greppable.
            print!("\x1b[2J\x1b[H{screen}");
            let _ = std::io::Write::flush(&mut std::io::stdout());
        } else {
            println!("--- frame {frame} ---");
            print!("{screen}");
        }
        if let Some(dir) = dump {
            let path = dir.join(format!("scrape-{frame}.prom"));
            mmrepl_obs::write_atomic(&path, mmrepl_obs::to_prometheus(&cur).as_bytes())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        prev = Some(cur);
        frame += 1;
        if done.load(Ordering::SeqCst) && frame >= frames.max(1) {
            break;
        }
    }
    runner
        .join()
        .map_err(|_| "the study thread panicked".to_string())?;
    mmrepl_obs::set_enabled(false);
    println!("{study} study finished after {frame} frame(s)");
    mmrepl_obs::reset();
    Ok(())
}

/// The background workload one `mmrepl top` invocation watches: a
/// single quick-scale run of the named study, publishing into the live
/// registry as it goes.
fn run_top_study(study: StudyName, seed: Option<u64>) {
    let quick = |seed: Option<u64>| {
        let mut cfg = mmrepl_sim::ExperimentConfig::quick();
        cfg.runs = 1;
        if let Some(s) = seed {
            cfg.base_seed = s;
        }
        cfg
    };
    match study {
        StudyName::Online => {
            mmrepl_sim::online_study(
                &quick(seed),
                2,
                0.5,
                2,
                0.25,
                &mmrepl_sim::study_online_config(),
            );
        }
        StudyName::Negotiate => {
            mmrepl_sim::negotiate_study(&quick(seed), 0.3);
        }
        StudyName::Route => {
            let seed = seed.unwrap_or(0);
            let Ok(system) = generate_system(&WorkloadParams::small(), seed) else {
                return;
            };
            let outcome = ReplicationPolicy::new().plan(&system);
            let snap = std::sync::Arc::new(PlacementSnapshot::from_plan(&system, &outcome, 0));
            mmrepl_serve::register_latency_slo(&snap);
            let traces = generate_trace(
                &system,
                &TraceConfig::from_params(&WorkloadParams::small()),
                seed,
            );
            for _ in 0..40 {
                route_traces(&snap, &traces, 1);
            }
        }
    }
}

/// `mmrepl trace`: plan + DES replay of one system under the tracer.
fn trace(
    system: Option<&Path>,
    seed: u64,
    storage: Option<f64>,
    processing: Option<f64>,
    out: &Path,
) -> Result<(), CliError> {
    let sys = match system {
        Some(p) => load_system(p)?,
        None => generate_system(&WorkloadParams::small(), seed)?,
    };
    let sys = apply_fractions(sys, storage, processing, None);
    let params = if sys.n_sites() >= 10 {
        WorkloadParams::paper()
    } else {
        WorkloadParams::small()
    };
    let traces = generate_trace(&sys, &TraceConfig::from_params(&params), seed);
    let des = with_trace(Some(out), || {
        let planned = ReplicationPolicy::new().plan(&sys).placement;
        let mut router = StaticRouter::new(&planned, "ours");
        mmrepl_sim::des_replay(&sys, &traces, &mut router)
    })?;
    println!(
        "plan + DES replay: {} requests, mean response {:.2} s, makespan {:.1} s",
        des.pages.count(),
        des.mean_response(),
        des.makespan
    );
    Ok(())
}

fn audit(seeds: u64, start: u64, inject: bool, trace_out: Option<&Path>) -> Result<(), CliError> {
    if inject {
        // Divergences construct through one choke point that also emits
        // an obs event, so --trace-out captures the auditor's report.
        return with_trace(trace_out, audit_inject)?;
    }
    let report = with_trace(trace_out, || mmrepl_sim::fuzz(start, seeds))?;
    println!(
        "audit: {}/{} oracle cases passed over seeds {start}..{}",
        report.passed,
        report.cases,
        start.saturating_add(seeds)
    );
    if report.is_clean() {
        return Ok(());
    }
    for f in &report.failures {
        println!("FAIL [{}] seed {}: {}", f.oracle, f.seed, f.detail);
        if let Some(min) = &f.minimized {
            println!("  {min}");
        }
    }
    Err(format!("{} oracle case(s) diverged", report.failures.len()))
}

/// Demonstrates the invariant auditor: corrupts one site's incremental
/// load accumulator on purpose and prints the divergence report the
/// auditor produces. Fails if the corruption goes undetected.
fn audit_inject() -> Result<(), CliError> {
    let system = generate_system(&WorkloadParams::small(), 0).map_err(|e| e.to_string())?;
    let initial = partition_all(&system);
    let site = system
        .sites()
        .ids()
        .next()
        .expect("generated systems have at least one site");
    let mut work = SiteWork::new(&system, site, &initial, CostParams::default());
    audit_site(&work, AuditStage::Validate)
        .map_err(|d| format!("pristine state failed its own audit:\n{d}"))?;
    println!("pristine {site}: audit clean; injecting +0.25 req/s into the load accumulator");
    work.debug_corrupt_load(0.25);
    match audit_site(&work, AuditStage::Validate) {
        Err(divergence) => {
            println!("caught:\n{divergence}");
            Ok(())
        }
        Ok(()) => Err("injected corruption was NOT detected by the auditor".into()),
    }
}

fn params_for(scale: Scale) -> WorkloadParams {
    match scale {
        Scale::Small => WorkloadParams::small(),
        Scale::Paper => WorkloadParams::paper(),
    }
}

fn load_system(path: &Path) -> Result<System, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn apply_fractions(
    system: System,
    storage: Option<f64>,
    processing: Option<f64>,
    central: Option<f64>,
) -> System {
    let mut sys = system;
    if let Some(f) = storage {
        sys = sys.with_storage_fraction(f);
    }
    if let Some(f) = processing {
        sys = sys.with_processing_fraction(f);
    }
    if let Some(f) = central {
        sys = sys.with_central_fraction(f);
    }
    sys
}

fn generate(seed: u64, scale: Scale, topology: TopologyParams, out: &Path) -> Result<(), CliError> {
    let mut params = params_for(scale);
    params.topology = topology;
    let system = generate_system(&params, seed)?;
    let json = serde_json::to_string(&system).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {}: {e}", out.display()))?;
    let tree = match system.topology() {
        Some(t) => format!(", {} repository nodes", t.n_nodes()),
        None => String::new(),
    };
    println!(
        "wrote {} ({} sites, {} pages, {} objects{tree}, seed {})",
        out.display(),
        system.n_sites(),
        system.n_pages(),
        system.n_objects(),
        seed
    );
    Ok(())
}

fn inspect(path: &Path) -> Result<(), CliError> {
    let system = load_system(path)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "system: {} sites, {} pages, {} objects",
        system.n_sites(),
        system.n_pages(),
        system.n_objects()
    );
    let _ = writeln!(out, "repository capacity: {}", system.repository().capacity);
    let _ = writeln!(
        out,
        "all-remote repository load: {}",
        system.full_remote_load()
    );
    let _ = writeln!(
        out,
        "\n{:>5} {:>7} {:>14} {:>14} {:>14} {:>12}",
        "site", "pages", "storage", "full demand", "capacity", "full load"
    );
    for site in system.sites().ids() {
        let s = system.site(site);
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>14} {:>14} {:>14} {:>12}",
            site.to_string(),
            system.pages_of(site).len(),
            s.storage.to_string(),
            system.full_storage_demand(site).to_string(),
            s.capacity.to_string(),
            system.full_local_load(site).to_string(),
        );
    }
    print!("{out}");
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn plan(
    path: &Path,
    storage: Option<f64>,
    processing: Option<f64>,
    central: Option<f64>,
    alpha: (f64, f64),
    ancestor: AncestorPolicy,
    threads: usize,
    out: &Path,
    trace_out: Option<&Path>,
) -> Result<(), CliError> {
    let system = apply_fractions(load_system(path)?, storage, processing, central);
    let policy = ReplicationPolicy::with_config(PlannerConfig {
        cost: CostParams {
            alpha1: alpha.0,
            alpha2: alpha.1,
        },
        ancestor,
        ..PlannerConfig::default()
    });
    let outcome = with_trace(trace_out, || policy.plan_parallel(&system, threads))?;
    let r = &outcome.report;
    println!(
        "plan: feasible={} objective D={:.2}",
        r.feasible, r.objective
    );
    let dealloc: usize = r.storage.iter().map(|s| s.deallocated).sum();
    let freed: u64 = r.storage.iter().map(|s| s.bytes_freed).sum();
    let moves: usize = r.capacity.iter().map(|c| c.moves).sum();
    if !r.serving.is_empty() {
        let promoted = r.promotions;
        let nodes = {
            let mut n: Vec<u32> = r.serving.clone();
            n.sort_unstable();
            n.dedup();
            n.len()
        };
        println!(
            "  ancestor selection  : {ancestor} policy, {} sites over {nodes} node(s), \
             {promoted} promoted, {} QoS-blocked",
            r.serving.len(),
            r.qos_blocked
        );
    }
    println!(
        "  storage restoration : {dealloc} deallocations, {} freed",
        Bytes(freed)
    );
    println!("  capacity restoration: {moves} downloads moved to repository");
    println!(
        "  off-loading         : {} rounds, {} messages, {:.2} req/s pushed back",
        r.offload.rounds, r.offload.messages, r.offload.absorbed
    );
    // Tree plans are feasibility-checked against the serving nodes the
    // planner actually picked; star plans against the repository.
    let check = if r.serving.is_empty() {
        ConstraintReport::check(&system, &outcome.placement)
    } else {
        let serving = r.serving.iter().map(|&n| NodeId::new(n)).collect();
        ConstraintReport::check_with_serving(&system, &outcome.placement, &serving)
    };
    for v in &check.violations {
        println!("  VIOLATION: {v}");
    }
    let json = serde_json::to_string(&outcome.placement).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

/// The JSON document `mmrepl route --out` writes: the merged totals plus
/// one [`RouteStats`] per requester site, in site-id order.
#[derive(serde::Serialize, serde::Deserialize)]
struct RouteDoc {
    total: RouteStats,
    sites: Vec<RouteStats>,
}

#[allow(clippy::too_many_arguments)]
fn route(
    path: &Path,
    placement_path: Option<&Path>,
    seed: u64,
    storage: Option<f64>,
    processing: Option<f64>,
    threads: usize,
    out: Option<&Path>,
    expose: Option<&str>,
    scrape_interval: f64,
) -> Result<(), CliError> {
    let system = apply_fractions(load_system(path)?, storage, processing, None);
    let snap = match placement_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let placement: Placement = serde_json::from_str(&text).map_err(|e| e.to_string())?;
            placement
                .validate(&system)
                .map_err(|e| format!("placement does not fit this system: {e}"))?;
            PlacementSnapshot::build(&system, &placement, &[], 0)
        }
        None => {
            let outcome = ReplicationPolicy::new().plan(&system);
            PlacementSnapshot::from_plan(&system, &outcome, 0)
        }
    };
    let snap = std::sync::Arc::new(snap);
    let params = if system.n_sites() >= 10 {
        WorkloadParams::paper()
    } else {
        WorkloadParams::small()
    };
    let traces = generate_trace(&system, &TraceConfig::from_params(&params), seed);
    let (per_site, total) = with_obs(None, expose, scrape_interval, || {
        if mmrepl_obs::enabled() {
            mmrepl_serve::register_latency_slo(&snap);
        }
        route_traces(&snap, &traces, threads)
    })?;

    let pct = |n: u64| 100.0 * n as f64 / total.objects.max(1) as f64;
    println!("route: seed {seed}, {} sites", per_site.len());
    println!("  requests          : {}", total.requests);
    println!(
        "  objects           : {} ({:.1}% local / {:.1}% peer / {:.1}% serving node)",
        total.objects,
        pct(total.local),
        pct(total.peer),
        pct(total.repo),
    );
    println!("  overlay deflected : {}", total.overlay_deflected);
    println!(
        "  est mean latency  : {:.3} s",
        total.est_latency_s / total.requests.max(1) as f64
    );
    println!(
        "  misroutes         : {}{}",
        total.misroutes,
        if cfg!(feature = "audit") {
            " (audit-verified)"
        } else {
            " (build with --features audit to cross-check)"
        }
    );
    println!("  checksum          : {:016x}", total.checksum);
    if let Some(out) = out {
        let doc = RouteDoc {
            total,
            sites: per_site,
        };
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!("wrote {}", out.display());
    }
    Ok(())
}

fn evaluate(
    path: &Path,
    placement_path: Option<&Path>,
    policy: Option<PolicyName>,
    seed: u64,
    storage: Option<f64>,
    processing: Option<f64>,
) -> Result<(), CliError> {
    let system = apply_fractions(load_system(path)?, storage, processing, None);
    // The trace scale mirrors the system's own page-rate structure; the
    // small/paper request counts only differ via the params, so pick by
    // system size.
    let params = if system.n_sites() >= 10 {
        WorkloadParams::paper()
    } else {
        WorkloadParams::small()
    };
    let traces = generate_trace(&system, &TraceConfig::from_params(&params), seed);

    let (label, outcome) = match (placement_path, policy) {
        (Some(p), None) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let placement: Placement = serde_json::from_str(&text).map_err(|e| e.to_string())?;
            placement
                .validate(&system)
                .map_err(|e| format!("placement does not fit this system: {e}"))?;
            (
                "placement".to_string(),
                replay_all(&system, &traces, &mut StaticRouter::new(&placement, "file")),
            )
        }
        (None, Some(PolicyName::Ours)) => {
            let planned = ReplicationPolicy::new().plan(&system).placement;
            (
                "ours".to_string(),
                replay_all(&system, &traces, &mut StaticRouter::new(&planned, "ours")),
            )
        }
        (None, Some(PolicyName::Remote)) => {
            let p = Placement::all_remote(&system);
            (
                "remote".to_string(),
                replay_all(&system, &traces, &mut StaticRouter::new(&p, "remote")),
            )
        }
        (None, Some(PolicyName::Local)) => {
            let p = Placement::all_local(&system);
            (
                "local".to_string(),
                replay_all(&system, &traces, &mut StaticRouter::new(&p, "local")),
            )
        }
        (None, Some(PolicyName::Lru)) => (
            "lru".to_string(),
            replay_all(&system, &traces, &mut LruRouter::new(&system)),
        ),
        _ => unreachable!("arg parser enforces exactly one source"),
    };

    println!("policy: {label} (seed {seed})");
    println!("  requests        : {}", outcome.pages.count());
    println!("  mean response   : {:.2} s", outcome.mean_response());
    println!(
        "  p50 / p95 / p99 : {:.1} / {:.1} / {:.1} s",
        outcome.pages.quantile(0.50).map(|s| s.get()).unwrap_or(0.0),
        outcome.pages.quantile(0.95).map(|s| s.get()).unwrap_or(0.0),
        outcome.pages.quantile(0.99).map(|s| s.get()).unwrap_or(0.0),
    );
    println!(
        "  min / max       : {:.1} / {:.1} s",
        outcome.pages.min().map(|s| s.get()).unwrap_or(0.0),
        outcome.pages.max().map(|s| s.get()).unwrap_or(0.0),
    );
    println!(
        "  served locally  : {:.1}%",
        outcome.local_fraction() * 100.0
    );
    if outcome.optional.count() > 0 {
        println!(
            "  optional fetches: {} requests, mean {:.2} s",
            outcome.optional.count(),
            outcome.optional.mean().map(|s| s.get()).unwrap_or(0.0)
        );
    }
    Ok(())
}

fn compare(
    path: &Path,
    seed: u64,
    storage: Option<f64>,
    processing: Option<f64>,
) -> Result<(), CliError> {
    let system = apply_fractions(load_system(path)?, storage, processing, None);
    let params = if system.n_sites() >= 10 {
        WorkloadParams::paper()
    } else {
        WorkloadParams::small()
    };
    let traces = generate_trace(&system, &TraceConfig::from_params(&params), seed);

    let planned = ReplicationPolicy::new().plan(&system).placement;
    let local = Placement::all_local(&system);
    let remote = Placement::all_remote(&system);

    let mut rows: Vec<(&str, mmrepl_sim::ReplayOutcome)> = vec![
        (
            "ours",
            replay_all(&system, &traces, &mut StaticRouter::new(&planned, "ours")),
        ),
        (
            "lru",
            replay_all(&system, &traces, &mut LruRouter::new(&system)),
        ),
        (
            "gds",
            replay_all(&system, &traces, &mut GdsRouter::new(&system)),
        ),
        (
            "lfu",
            replay_all(&system, &traces, &mut LfuRouter::new(&system)),
        ),
        (
            "local",
            replay_all(&system, &traces, &mut StaticRouter::new(&local, "local")),
        ),
        (
            "remote",
            replay_all(&system, &traces, &mut StaticRouter::new(&remote, "remote")),
        ),
    ];
    rows.sort_by(|a, b| a.1.mean_response().total_cmp(&b.1.mean_response()));

    println!("policy      mean        p95       local%   (seed {seed})");
    for (name, out) in &rows {
        println!(
            "{:<10} {:>7.1} s {:>9.1} s {:>8.1}%",
            name,
            out.mean_response(),
            out.pages.quantile(0.95).map(|s| s.get()).unwrap_or(0.0),
            out.local_fraction() * 100.0
        );
    }
    Ok(())
}

fn sweep(
    figure: u8,
    runs: usize,
    seed: u64,
    paper: bool,
    out: &Path,
    trace_out: Option<&Path>,
) -> Result<(), CliError> {
    let mut cfg = if paper {
        mmrepl_sim::ExperimentConfig::paper()
    } else {
        mmrepl_sim::ExperimentConfig::quick()
    };
    cfg.runs = runs;
    cfg.base_seed = seed;
    let fig = with_trace(trace_out, || match figure {
        1 => mmrepl_sim::figure1(&cfg, &[0.2, 0.4, 0.6, 0.65, 0.8, 1.0]),
        2 => mmrepl_sim::figure2(&cfg, &[0.2, 0.4, 0.6, 0.8, 1.0]),
        3 => mmrepl_sim::figure3(&cfg, &[0.9, 0.7, 0.5], &[0.6, 0.8, 1.0]),
        _ => unreachable!("parser validated the figure number"),
    })?;
    print!("{}", fig.to_table());
    std::fs::write(
        out,
        serde_json::to_string_pretty(&fig).map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn online(
    epochs: usize,
    rotation: f64,
    windows: usize,
    budget: f64,
    runs: usize,
    seed: Option<u64>,
    paper: bool,
    out: &Path,
    trace_out: Option<&Path>,
    expose: Option<&str>,
    scrape_interval: f64,
) -> Result<(), CliError> {
    let mut cfg = if paper {
        mmrepl_sim::ExperimentConfig::paper()
    } else {
        mmrepl_sim::ExperimentConfig::quick()
    };
    cfg.runs = runs;
    if let Some(s) = seed {
        cfg.base_seed = s;
    }
    let study = with_obs(trace_out, expose, scrape_interval, || {
        mmrepl_sim::online_study(
            &cfg,
            epochs,
            rotation,
            windows,
            budget,
            &mmrepl_sim::study_online_config(),
        )
    })?;
    print!("{}", study.to_table());
    std::fs::write(
        out,
        serde_json::to_string_pretty(&study).map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

fn federate(
    preset: TopologyParams,
    runs: usize,
    seed: Option<u64>,
    paper: bool,
    out: &Path,
    trace_out: Option<&Path>,
) -> Result<(), CliError> {
    let mut cfg = if paper {
        mmrepl_sim::ExperimentConfig::paper()
    } else {
        mmrepl_sim::ExperimentConfig::quick()
    };
    cfg.runs = runs;
    if let Some(s) = seed {
        cfg.base_seed = s;
    }
    let study = with_trace(trace_out, || mmrepl_sim::federate_study(&cfg, &preset))?;
    print!("{}", study.to_table());
    std::fs::write(
        out,
        serde_json::to_string_pretty(&study).map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn negotiate(
    central: f64,
    runs: usize,
    seed: Option<u64>,
    paper: bool,
    out: &Path,
    trace_out: Option<&Path>,
    expose: Option<&str>,
    scrape_interval: f64,
) -> Result<(), CliError> {
    let mut cfg = if paper {
        mmrepl_sim::ExperimentConfig::paper()
    } else {
        mmrepl_sim::ExperimentConfig::quick()
    };
    cfg.runs = runs;
    if let Some(s) = seed {
        cfg.base_seed = s;
    }
    let study = with_obs(trace_out, expose, scrape_interval, || {
        mmrepl_sim::negotiate_study(&cfg, central)
    })?;
    print!("{}", study.to_table());
    std::fs::write(
        out,
        serde_json::to_string_pretty(&study).map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mmrepl-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generate_inspect_plan_evaluate_roundtrip() {
        let sys_path = tmp("roundtrip-system.json");
        let place_path = tmp("roundtrip-placement.json");

        run(Command::Generate {
            seed: 5,
            scale: Scale::Small,
            topology: TopologyParams::origin(),
            out: sys_path.clone(),
        })
        .unwrap();
        assert!(sys_path.exists());

        run(Command::Inspect {
            system: sys_path.clone(),
        })
        .unwrap();

        run(Command::Plan {
            system: sys_path.clone(),
            storage: Some(0.7),
            processing: None,
            central: None,
            alpha: (2.0, 1.0),
            ancestor: AncestorPolicy::Closest,
            threads: 0,
            out: place_path.clone(),
            trace_out: None,
        })
        .unwrap();
        assert!(place_path.exists());

        run(Command::Evaluate {
            system: sys_path.clone(),
            placement: Some(place_path.clone()),
            policy: None,
            seed: 5,
            storage: Some(0.7),
            processing: None,
        })
        .unwrap();

        run(Command::Evaluate {
            system: sys_path,
            placement: None,
            policy: Some(PolicyName::Lru),
            seed: 5,
            storage: None,
            processing: None,
        })
        .unwrap();
    }

    #[test]
    fn route_reports_and_writes_stats() {
        let sys_path = tmp("route-system.json");
        let place_path = tmp("route-placement.json");
        let stats_path = tmp("route-stats.json");
        run(Command::Generate {
            seed: 5,
            scale: Scale::Small,
            topology: TopologyParams::edge(),
            out: sys_path.clone(),
        })
        .unwrap();
        // Planned fresh, routed across 2 worker threads.
        run(Command::Route {
            system: sys_path.clone(),
            placement: None,
            seed: 5,
            storage: Some(0.6),
            processing: None,
            threads: 2,
            out: Some(stats_path.clone()),
            expose: None,
            scrape_interval: 1.0,
        })
        .unwrap();
        let doc: RouteDoc =
            serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).unwrap();
        assert!(doc.total.requests > 0);
        assert_eq!(doc.total.misroutes, 0);
        assert_eq!(doc.sites.len(), 3);

        // And against a planned placement loaded from disk.
        run(Command::Plan {
            system: sys_path.clone(),
            storage: Some(0.6),
            processing: None,
            central: None,
            alpha: (2.0, 1.0),
            ancestor: AncestorPolicy::Closest,
            threads: 0,
            out: place_path.clone(),
            trace_out: None,
        })
        .unwrap();
        run(Command::Route {
            system: sys_path,
            placement: Some(place_path),
            seed: 5,
            storage: Some(0.6),
            processing: None,
            threads: 0,
            out: None,
            expose: None,
            scrape_interval: 1.0,
        })
        .unwrap();
    }

    #[test]
    fn compare_runs_all_policies() {
        let sys_path = tmp("compare-system.json");
        run(Command::Generate {
            seed: 9,
            scale: Scale::Small,
            topology: TopologyParams::origin(),
            out: sys_path.clone(),
        })
        .unwrap();
        run(Command::Compare {
            system: sys_path,
            seed: 9,
            storage: Some(0.8),
            processing: None,
        })
        .unwrap();
    }

    #[test]
    fn evaluate_rejects_mismatched_placement() {
        let sys_a = tmp("mismatch-a.json");
        let sys_b = tmp("mismatch-b.json");
        let place_a = tmp("mismatch-a-placement.json");
        run(Command::Generate {
            seed: 1,
            scale: Scale::Small,
            topology: TopologyParams::origin(),
            out: sys_a.clone(),
        })
        .unwrap();
        run(Command::Generate {
            seed: 2,
            scale: Scale::Small,
            topology: TopologyParams::origin(),
            out: sys_b.clone(),
        })
        .unwrap();
        run(Command::Plan {
            system: sys_a,
            storage: None,
            processing: None,
            central: None,
            alpha: (2.0, 1.0),
            ancestor: AncestorPolicy::Closest,
            threads: 0,
            out: place_a.clone(),
            trace_out: None,
        })
        .unwrap();
        let err = run(Command::Evaluate {
            system: sys_b,
            placement: Some(place_a),
            policy: None,
            seed: 1,
            storage: None,
            processing: None,
        })
        .unwrap_err();
        assert!(err.contains("does not fit"), "{err}");
    }

    #[test]
    fn sweep_writes_figure_json() {
        let out = tmp("sweep-fig2.json");
        run(Command::Sweep {
            figure: 2,
            runs: 1,
            seed: 4,
            paper: false,
            out: out.clone(),
            trace_out: None,
        })
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let fig: mmrepl_sim::FigureData = serde_json::from_str(&text).unwrap();
        assert_eq!(fig.name, "figure2");
        assert!(!fig.points.is_empty());
    }

    #[test]
    fn online_writes_study_json() {
        let out = tmp("online-study.json");
        run(Command::Online {
            epochs: 1,
            rotation: 0.5,
            windows: 2,
            budget: 0.25,
            runs: 1,
            seed: Some(7),
            paper: false,
            out: out.clone(),
            trace_out: None,
            expose: None,
            scrape_interval: 1.0,
        })
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let study: mmrepl_sim::OnlineStudy = serde_json::from_str(&text).unwrap();
        assert_eq!(study.epochs.len(), 2);
        assert!(study.epochs[1].series.contains_key("online"));
    }

    #[test]
    fn federate_writes_study_json() {
        let out = tmp("federate-study.json");
        run(Command::Federate {
            preset: TopologyParams::edge(),
            runs: 1,
            seed: Some(11),
            paper: false,
            out: out.clone(),
            trace_out: None,
        })
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let study: mmrepl_sim::FederateStudy = serde_json::from_str(&text).unwrap();
        assert_eq!(study.levels, 2);
        assert!(study.mean_response.contains_key("closest"));
        assert!(study.mean_response.contains_key("flat"));
        assert!(study.mean_response.contains_key("lru"));
    }

    #[test]
    fn negotiate_writes_study_json() {
        let out = tmp("negotiate-study.json");
        run(Command::Negotiate {
            central: 0.1,
            runs: 1,
            seed: Some(11),
            paper: false,
            out: out.clone(),
            trace_out: None,
            expose: None,
            scrape_interval: 1.0,
        })
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let study: mmrepl_sim::NegotiateStudy = serde_json::from_str(&text).unwrap();
        assert_eq!(study.runs, 1);
        let cell = study.cell("greedy", "reliable").expect("cell present");
        assert_eq!(cell.placements_match, 1);
        assert!(study.cell("auction", "chaos").is_some());
    }

    #[test]
    fn audit_sweep_and_injection_demo() {
        run(Command::Audit {
            seeds: 1,
            start: 0,
            inject: false,
            trace_out: None,
        })
        .unwrap();
        run(Command::Audit {
            seeds: 1,
            start: 0,
            inject: true,
            trace_out: None,
        })
        .unwrap();
    }

    // The obs enabled flag and sink are process-wide; tests that turn
    // the tracer on serialise here so they don't bleed into each other.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn plan_trace_out_writes_parseable_jsonl() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sys_path = tmp("trace-plan-system.json");
        let place_path = tmp("trace-plan-placement.json");
        let trace_path = tmp("trace-plan.jsonl");
        run(Command::Generate {
            seed: 3,
            scale: Scale::Small,
            topology: TopologyParams::origin(),
            out: sys_path.clone(),
        })
        .unwrap();
        run(Command::Plan {
            system: sys_path,
            storage: Some(0.5),
            processing: Some(0.8),
            central: None,
            alpha: (2.0, 1.0),
            ancestor: AncestorPolicy::Closest,
            threads: 0,
            out: place_path,
            trace_out: Some(trace_path.clone()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        // Flat JSONL: every line is one object with a record field.
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
            assert!(line.contains("\"record\":\""), "no record field in {line}");
        }
        assert!(text.lines().next().unwrap().contains("\"record\":\"meta\""));
        for stage in [
            "plan.total",
            "plan.partition",
            "plan.storage_restore",
            "plan.capacity_restore",
            "plan.offload",
        ] {
            assert!(
                text.contains(&format!("\"name\":\"{stage}\"")),
                "missing span {stage}"
            );
        }
        assert!(text.contains("\"record\":\"decision\""));
    }

    #[test]
    fn tree_plan_trace_records_the_selection_stage() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sys_path = tmp("trace-tree-system.json");
        let place_path = tmp("trace-tree-placement.json");
        let trace_path = tmp("trace-tree.jsonl");
        run(Command::Generate {
            seed: 3,
            scale: Scale::Small,
            topology: TopologyParams::edge(),
            out: sys_path.clone(),
        })
        .unwrap();
        run(Command::Plan {
            system: sys_path,
            storage: Some(0.7),
            processing: None,
            central: None,
            alpha: (2.0, 1.0),
            ancestor: AncestorPolicy::Closest,
            threads: 0,
            out: place_path,
            trace_out: Some(trace_path.clone()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            text.contains("\"name\":\"plan.select\""),
            "tree plans must trace the ancestor-selection stage"
        );
        assert!(text.contains("\"name\":\"plan.offload\""));
    }

    #[test]
    fn trace_subcommand_covers_plan_and_des() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let trace_path = tmp("trace-subcommand.jsonl");
        run(Command::Trace {
            system: None,
            seed: 6,
            storage: Some(0.5),
            processing: Some(0.8),
            out: trace_path.clone(),
        })
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(text.contains("\"name\":\"plan.total\""));
        assert!(text.contains("\"name\":\"des.total\""));
        assert!(text.contains("\"name\":\"des.response_s\""));
        assert!(text.contains("\"name\":\"des.page_requests\""));
    }

    #[test]
    fn audit_inject_routes_divergence_into_trace() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let trace_path = tmp("trace-audit-inject.jsonl");
        run(Command::Audit {
            seeds: 1,
            start: 0,
            inject: true,
            trace_out: Some(trace_path.clone()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            text.contains("\"kind\":\"audit_divergence\""),
            "no divergence event in {text}"
        );
    }

    #[test]
    fn online_expose_writes_a_parseable_scrape_file() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = tmp("expose-online.json");
        let scrape = tmp("expose-online.prom");
        let _ = std::fs::remove_file(&scrape);
        run(Command::Online {
            epochs: 1,
            rotation: 0.5,
            windows: 2,
            budget: 0.25,
            runs: 1,
            seed: Some(7),
            paper: false,
            out,
            trace_out: None,
            expose: Some(scrape.to_string_lossy().into_owned()),
            scrape_interval: 0.05,
        })
        .unwrap();
        // The exporter flushes once more on stop, so even a run shorter
        // than the interval leaves a final scrape behind.
        let text = std::fs::read_to_string(&scrape).unwrap();
        for needle in [
            "# TYPE mmrepl_serve_route_requests_total counter",
            "mmrepl_serve_route_latency_s{quantile=\"0.99\"}",
            "mmrepl_negotiate_rounds_total",
            "mmrepl_slo_burn_rate{slo=\"serve.latency\",window=\"short\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        mmrepl_obs::reset();
    }

    #[test]
    fn expose_rejects_an_empty_target() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let err = run(Command::Negotiate {
            central: 0.3,
            runs: 1,
            seed: None,
            paper: false,
            out: tmp("expose-bad.json"),
            trace_out: None,
            expose: Some(String::new()),
            scrape_interval: 1.0,
        })
        .unwrap_err();
        assert!(err.contains("--expose"), "{err}");
    }

    #[test]
    fn top_dumps_one_scrape_per_frame() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = tmp("top-frames");
        let _ = std::fs::remove_dir_all(&dir);
        run(Command::Top {
            study: crate::args::StudyName::Route,
            refresh_ms: 50,
            frames: 2,
            dump: Some(dir.clone()),
            seed: Some(3),
        })
        .unwrap();
        for frame in 0..2 {
            let text = std::fs::read_to_string(dir.join(format!("scrape-{frame}.prom")))
                .unwrap_or_else(|e| panic!("frame {frame} missing: {e}"));
            assert!(text.contains("# TYPE"), "frame {frame} not exposition");
            assert!(
                text.contains("mmrepl_serve_route_requests_total"),
                "frame {frame} lacks the routing counter:\n{text}"
            );
        }
        mmrepl_obs::reset();
    }

    #[test]
    fn missing_files_are_reported() {
        let err = run(Command::Inspect {
            system: PathBuf::from("/nonexistent/system.json"),
        })
        .unwrap_err();
        assert!(err.contains("reading"), "{err}");
    }
}
