//! Pure rendering for the `mmrepl top` live dashboard.
//!
//! The render loop in `commands::top` drives the exposition clock and
//! hands consecutive [`TelemetrySnapshot`]s to [`render_dashboard`];
//! everything here is a snapshot-to-string function so the layout is
//! unit-testable without threads, timers or a terminal.

use mmrepl_obs::TelemetrySnapshot;
use std::fmt::Write as _;

/// Renders one dashboard frame.
///
/// Counter rates are differenced against `prev` over `dt` seconds when
/// a previous frame exists, falling back to the registry's own windowed
/// rate on the first frame (the two agree whenever the caller drives
/// `advance_windows` at the same cadence).
pub fn render_dashboard(
    prev: Option<&TelemetrySnapshot>,
    cur: &TelemetrySnapshot,
    dt: f64,
) -> String {
    let mut out = String::from("mmrepl top — live telemetry\n");
    if cur.series.counters.is_empty()
        && cur.series.gauges.is_empty()
        && cur.series.reservoirs.is_empty()
        && cur.slos.is_empty()
    {
        out.push_str("  (no metrics registered)\n");
        return out;
    }

    if !cur.series.counters.is_empty() {
        let _ = writeln!(out, "\n{:<36} {:>14} {:>12}", "counter", "total", "rate/s");
        for c in &cur.series.counters {
            let rate = match prev.and_then(|p| p.series.counters.iter().find(|o| o.name == c.name))
            {
                Some(old) if dt > 0.0 => c.value.saturating_sub(old.value) as f64 / dt,
                _ => c.rate_per_s,
            };
            let _ = writeln!(out, "{:<36} {:>14} {:>12.1}", c.name, c.value, rate);
        }
    }

    if !cur.series.gauges.is_empty() {
        let _ = writeln!(out, "\n{:<36} {:>14}", "gauge", "value");
        for g in &cur.series.gauges {
            let _ = writeln!(out, "{:<36} {:>14.1}", g.name, g.value);
        }
    }

    if !cur.series.reservoirs.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "latency", "n(win)", "p50", "p90", "p99", "p999"
        );
        for r in &cur.series.reservoirs {
            let q = |v: Option<f64>| match v {
                Some(v) => format!("{v:.3}s"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}",
                r.name,
                r.window_count,
                q(r.p50),
                q(r.p90),
                q(r.p99),
                q(r.p999)
            );
        }
    }

    if !cur.slos.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<20} {:>7} {:>8} {:>8} {:>7} {:>15}  state",
            "slo", "obj%", "short", "long", "alerts", "good/total"
        );
        for s in &cur.slos {
            let _ = writeln!(
                out,
                "{:<20} {:>7.2} {:>8.2} {:>8.2} {:>7} {:>15}  {}",
                s.name,
                100.0 * s.objective,
                s.short_burn,
                s.long_burn,
                s.alerts,
                format!("{}/{}", s.good, s.total),
                if s.alerting { "ALERT" } else { "ok" }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_obs::{SloStatus, TsCounter, TsGauge, TsReservoir, TsSnapshot};

    fn counter(name: &str, value: u64, rate: f64) -> TsCounter {
        TsCounter {
            name: name.to_string(),
            help: String::new(),
            value,
            rate_per_s: rate,
        }
    }

    fn snap(counters: Vec<TsCounter>) -> TelemetrySnapshot {
        TelemetrySnapshot {
            series: TsSnapshot {
                counters,
                gauges: vec![],
                reservoirs: vec![],
            },
            slos: vec![],
        }
    }

    #[test]
    fn empty_registry_renders_a_placeholder() {
        let frame = render_dashboard(None, &snap(vec![]), 1.0);
        assert!(frame.contains("no metrics registered"), "{frame}");
    }

    #[test]
    fn first_frame_uses_the_windowed_rate_then_differences() {
        let a = snap(vec![counter("serve.route.requests", 100, 42.0)]);
        let b = snap(vec![counter("serve.route.requests", 160, 99.0)]);
        let first = render_dashboard(None, &a, 2.0);
        assert!(first.contains("42.0"), "{first}");
        // (160 - 100) / 2 s = 30/s; the stale windowed 99.0 is ignored.
        let second = render_dashboard(Some(&a), &b, 2.0);
        assert!(second.contains("30.0"), "{second}");
        assert!(!second.contains("99.0"), "{second}");
        // A counter the previous frame never saw falls back too.
        let fresh = snap(vec![counter("negotiate.rounds", 5, 2.5)]);
        let frame = render_dashboard(Some(&a), &fresh, 2.0);
        assert!(frame.contains("2.5"), "{frame}");
    }

    #[test]
    fn every_section_renders_when_populated() {
        let cur = TelemetrySnapshot {
            series: TsSnapshot {
                counters: vec![counter("serve.route.requests", 7, 7.0)],
                gauges: vec![TsGauge {
                    name: "online.epoch".to_string(),
                    help: String::new(),
                    value: 3.0,
                }],
                reservoirs: vec![TsReservoir {
                    name: "serve.route.latency_s".to_string(),
                    help: String::new(),
                    count: 7,
                    sum_s: 0.7,
                    window_count: 7,
                    p50: Some(0.1),
                    p90: Some(0.2),
                    p99: Some(0.4),
                    p999: None,
                }],
            },
            slos: vec![SloStatus {
                name: "serve.latency".to_string(),
                latency_target_s: 10.0,
                objective: 0.999,
                short_burn: 8.5,
                long_burn: 7.0,
                alerting: true,
                alerts: 2,
                good: 5,
                total: 7,
            }],
        };
        let frame = render_dashboard(None, &cur, 1.0);
        for needle in [
            "serve.route.requests",
            "online.epoch",
            "serve.route.latency_s",
            "0.100s",
            "serve.latency",
            "99.90",
            "5/7",
            "ALERT",
        ] {
            assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
        }
        // Unanswerable quantiles render as a dash, not a fake number.
        assert!(frame.contains(" -\n") || frame.ends_with(" -"), "{frame}");
    }
}
