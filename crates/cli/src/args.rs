//! Argument parsing for the `mmrepl` binary — plain `std`, no external
//! parser, so the CLI stays within the workspace's dependency policy.

use mmrepl_core::AncestorPolicy;
use mmrepl_workload::TopologyParams;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: mmrepl <command> [options]

commands:
  generate   --seed N [--scale small|paper] [--out FILE]
             [--topology origin|edge|regional] [--levels N] [--fanout N]
             [--node-capacity F|inf] [--qos-prob F]
             Generate a synthetic Table-1 workload and write it as JSON.
             --topology picks a repository-tree preset (origin = the
             paper's star); --levels/--fanout/--node-capacity/--qos-prob
             override individual preset knobs.
  inspect    --system FILE
             Print a summary of a system: sites, pages, demands, loads.
  plan       --system FILE [--storage F] [--processing F] [--central F]
             [--alpha1 A] [--alpha2 B] [--ancestor closest|flat]
             [--threads N] [--out FILE] [--trace-out FILE]
             Run the replication policy; print the stage report and write
             the placement as JSON. --ancestor picks the serving node per
             site on tree systems (closest = attach node with capacity
             promotion, flat = always the origin); star systems ignore it.
             --threads caps the restoration worker threads (0 = one per
             core, the default); the placement is bit-identical at any
             thread count.
  evaluate   --system FILE (--placement FILE | --policy ours|remote|local|lru)
             [--seed N] [--storage F] [--processing F]
             Replay the perturbed request trace and print response-time
             statistics.
  compare    --system FILE [--seed N] [--storage F] [--processing F]
             Replay every policy (ours, lru, gds, lfu, local, remote) on
             the same trace and print a comparison table.
  sweep      --figure 1|2|3 [--runs N] [--seed S] [--paper] [--out FILE]
             [--trace-out FILE]
             Regenerate one of the paper's figures (quick scale unless
             --paper) and write it as JSON.
  online     [--epochs N] [--rotation F] [--windows N] [--budget F]
             [--runs N] [--seed S] [--paper] [--out FILE] [--trace-out FILE]
             [--expose ADDR|FILE] [--scrape-interval S]
             Run the E-X5 online-controller study: stale plan vs per-epoch
             full replan vs the streaming estimate/detect/delta-replan
             controller vs LRU, on identical drift traces. --budget is the
             migration-byte budget per replan as a fraction of aggregate
             site storage (0 = unlimited).
  federate   [--preset edge|regional] [--runs N] [--seed S] [--paper]
             [--out FILE] [--trace-out FILE]
             Run the E-X6 federated-tree study: closest ancestor
             allocation vs the flat root-only policy vs LRU on identical
             traces, remote streams priced over per-link bandwidth and
             latency.
  negotiate  [--central F] [--runs N] [--seed S] [--paper] [--out FILE]
             [--trace-out FILE] [--expose ADDR|FILE] [--scrape-interval S]
             Run the E-X7 control-plane negotiation study: the
             asynchronous proposal/counter-proposal off-loading protocol
             under every strategy (greedy, deadline, auction) × fault
             scenario (reliable, lossy, chaos) grid cell, reporting
             protocol cost, resilience counters and placement agreement
             with the synchronous planner. --central squeezes the
             repository to that fraction of its capacity (default 0.3).
  route      --system FILE [--placement FILE] [--seed N] [--storage F]
             [--processing F] [--threads N] [--out FILE]
             [--expose ADDR|FILE] [--scrape-interval S]
             Plan the system (or load a --placement file), freeze the
             result into an immutable serving snapshot and route the
             generated request trace through it; print the
             local/peer/repository split, the estimated served latency
             and the misroute count (cross-checked when built with
             --features audit), and write the routing stats as JSON to
             --out.
  audit      [--seeds N] [--start S] [--inject] [--trace-out FILE]
             Run the three differential oracles (dense planner vs naive
             reference, unbounded delta-replan vs cold plan, DES replay
             vs the Eq. 5 analytic prediction) over N deterministic
             seeds; failures are minimized and printed. --inject instead
             corrupts a site's incremental bookkeeping on purpose and
             shows the invariant auditor's divergence report.
  trace      [--system FILE] [--seed N] [--storage F] [--processing F]
             [--out FILE]
             Plan a system (loaded from --system, or generated small-scale
             from --seed) and replay its perturbed trace through the
             discrete-event simulator with structured tracing enabled;
             print the per-stage breakdown table and write the full trace
             (spans, counters, histograms, decision provenance, events)
             as JSON Lines to --out (default trace.jsonl).
  top        [--study online|route|negotiate] [--refresh MS] [--frames N]
             [--dump DIR] [--seed S]
             Run a quick study on a background thread and render a live
             telemetry dashboard from the in-process registry while it
             executes: routing throughput, latency quantiles, epoch
             swaps, negotiation counters, migration-queue depth and SLO
             burn-rate alerts. --refresh is the frame period in
             milliseconds (default 500, floor 50); --frames sets a
             minimum frame count; --dump writes each frame's Prometheus
             scrape to DIR/scrape-N.prom.

Fractions F scale the derived 100% points (full storage demand /
all-local load / all-remote load), exactly like the paper's sweeps.

--trace-out FILE enables the same structured tracer around the planner /
experiment run and writes its trace as JSON Lines to FILE.

--expose ADDR|FILE starts the live telemetry exporter for the run:
host:port serves Prometheus text exposition at /metrics over HTTP, any
other value is a file path rewritten atomically every --scrape-interval
seconds (default 1).";

/// A typed argument-parsing failure.
///
/// `main` maps `Help` to the usage text on stdout (exit 0) and everything
/// else to `{error}\n\n{USAGE}` on stderr (exit 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The user asked for help (`--help`, `-h`, `help`).
    Help,
    /// The first word was not a known subcommand.
    UnknownCommand(String),
    /// A known subcommand was given malformed options.
    Invalid(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Help => write!(f, "help requested"),
            ParseError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            ParseError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<String> for ParseError {
    fn from(msg: String) -> Self {
        ParseError::Invalid(msg)
    }
}

impl From<&str> for ParseError {
    fn from(msg: &str) -> Self {
        ParseError::Invalid(msg.to_string())
    }
}

/// Workload scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 3 sites, runs in milliseconds.
    Small,
    /// The full Table 1 configuration.
    Paper,
}

/// Which study `mmrepl top` drives in the background.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StudyName {
    /// The E-X5 online-controller study.
    Online,
    /// Snapshot routing in a loop.
    Route,
    /// The E-X7 negotiation study.
    Negotiate,
}

impl fmt::Display for StudyName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StudyName::Online => "online",
            StudyName::Route => "route",
            StudyName::Negotiate => "negotiate",
        })
    }
}

/// Which policy `evaluate` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyName {
    /// The paper's policy, planned fresh.
    Ours,
    /// All objects from the repository.
    Remote,
    /// All objects local.
    Local,
    /// The ideal LRU cache.
    Lru,
}

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `mmrepl generate`.
    Generate {
        /// RNG seed.
        seed: u64,
        /// Workload scale.
        scale: Scale,
        /// Repository-tree preset plus any per-knob overrides
        /// (`levels == 1` keeps the paper's star).
        topology: TopologyParams,
        /// Output path (default `system.json`).
        out: PathBuf,
    },
    /// `mmrepl inspect`.
    Inspect {
        /// System JSON path.
        system: PathBuf,
    },
    /// `mmrepl plan`.
    Plan {
        /// System JSON path.
        system: PathBuf,
        /// Storage fraction (`None` = leave as stored in the file).
        storage: Option<f64>,
        /// Processing-capacity fraction.
        processing: Option<f64>,
        /// Central-capacity fraction (of the all-remote load).
        central: Option<f64>,
        /// Objective weights.
        alpha: (f64, f64),
        /// Ancestor-selection policy for tree systems (ignored on stars).
        ancestor: AncestorPolicy,
        /// Restoration worker-thread cap (`0` = one per core). The
        /// placement is bit-identical at any value.
        threads: usize,
        /// Output path (default `placement.json`).
        out: PathBuf,
        /// Structured-trace JSONL path (`None` = tracing stays off).
        trace_out: Option<PathBuf>,
    },
    /// `mmrepl compare`.
    Compare {
        /// System JSON path.
        system: PathBuf,
        /// Trace seed.
        seed: u64,
        /// Storage fraction override.
        storage: Option<f64>,
        /// Processing fraction override.
        processing: Option<f64>,
    },
    /// `mmrepl sweep`.
    Sweep {
        /// Which figure (1, 2 or 3).
        figure: u8,
        /// Runs to average.
        runs: usize,
        /// Base seed.
        seed: u64,
        /// Full Table 1 scale instead of the quick workload.
        paper: bool,
        /// Output JSON path.
        out: PathBuf,
        /// Structured-trace JSONL path (`None` = tracing stays off).
        trace_out: Option<PathBuf>,
    },
    /// `mmrepl online`.
    Online {
        /// Drift epochs after the planning epoch.
        epochs: usize,
        /// Hot-set rotation per epoch.
        rotation: f64,
        /// Estimation windows per epoch.
        windows: usize,
        /// Churn budget per replan as a fraction of aggregate site
        /// storage (`0` = unlimited).
        budget: f64,
        /// Runs to average.
        runs: usize,
        /// Base seed (`None` = the experiment config's default).
        seed: Option<u64>,
        /// Full Table 1 scale instead of the quick workload.
        paper: bool,
        /// Output JSON path.
        out: PathBuf,
        /// Structured-trace JSONL path (`None` = tracing stays off).
        trace_out: Option<PathBuf>,
        /// Telemetry exporter target (`host:port` or a scrape-file
        /// path; `None` = exporter stays off).
        expose: Option<String>,
        /// Seconds between exporter flushes.
        scrape_interval: f64,
    },
    /// `mmrepl federate`.
    Federate {
        /// Tree preset the study runs on.
        preset: TopologyParams,
        /// Runs to average.
        runs: usize,
        /// Base seed (`None` = the experiment config's default).
        seed: Option<u64>,
        /// Full Table 1 scale instead of the quick workload.
        paper: bool,
        /// Output JSON path.
        out: PathBuf,
        /// Structured-trace JSONL path (`None` = tracing stays off).
        trace_out: Option<PathBuf>,
    },
    /// `mmrepl negotiate`.
    Negotiate {
        /// Repository capacity fraction the runs are squeezed to.
        central: f64,
        /// Runs to average per grid cell.
        runs: usize,
        /// Base seed (`None` = the experiment config's default).
        seed: Option<u64>,
        /// Full Table 1 scale instead of the quick workload.
        paper: bool,
        /// Output JSON path.
        out: PathBuf,
        /// Structured-trace JSONL path (`None` = tracing stays off).
        trace_out: Option<PathBuf>,
        /// Telemetry exporter target (`host:port` or a scrape-file
        /// path; `None` = exporter stays off).
        expose: Option<String>,
        /// Seconds between exporter flushes.
        scrape_interval: f64,
    },
    /// `mmrepl audit`.
    Audit {
        /// Seeds to sweep.
        seeds: u64,
        /// First seed.
        start: u64,
        /// Demonstrate the auditor on an injected bookkeeping bug
        /// instead of fuzzing.
        inject: bool,
        /// Structured-trace JSONL path (`None` = tracing stays off).
        trace_out: Option<PathBuf>,
    },
    /// `mmrepl trace`.
    Trace {
        /// System JSON path (`None` = generate a small system from
        /// `seed`).
        system: Option<PathBuf>,
        /// Seed for generation and the replayed request trace.
        seed: u64,
        /// Storage fraction override.
        storage: Option<f64>,
        /// Processing fraction override.
        processing: Option<f64>,
        /// Trace JSONL output path (default `trace.jsonl`).
        out: PathBuf,
    },
    /// `mmrepl route`.
    Route {
        /// System JSON path.
        system: PathBuf,
        /// Placement JSON path (`None` = plan the system fresh).
        placement: Option<PathBuf>,
        /// Trace seed.
        seed: u64,
        /// Storage fraction override.
        storage: Option<f64>,
        /// Processing fraction override.
        processing: Option<f64>,
        /// Routing worker-thread cap (`0` = one per core). The stats
        /// are bit-identical at any value.
        threads: usize,
        /// Routing-stats JSON output path (`None` = print only).
        out: Option<PathBuf>,
        /// Telemetry exporter target (`host:port` or a scrape-file
        /// path; `None` = exporter stays off).
        expose: Option<String>,
        /// Seconds between exporter flushes.
        scrape_interval: f64,
    },
    /// `mmrepl evaluate`.
    Evaluate {
        /// System JSON path.
        system: PathBuf,
        /// Placement JSON path (mutually exclusive with `policy`).
        placement: Option<PathBuf>,
        /// Named policy (mutually exclusive with `placement`).
        policy: Option<PolicyName>,
        /// Trace seed.
        seed: u64,
        /// Storage fraction override.
        storage: Option<f64>,
        /// Processing fraction override.
        processing: Option<f64>,
    },
    /// `mmrepl top`.
    Top {
        /// Which study the dashboard drives.
        study: StudyName,
        /// Frame period in milliseconds.
        refresh_ms: u64,
        /// Minimum number of frames to render.
        frames: usize,
        /// Directory receiving one `scrape-N.prom` file per frame
        /// (`None` = render only).
        dump: Option<PathBuf>,
        /// Base seed (`None` = the study's default).
        seed: Option<u64>,
    },
}

impl Command {
    /// Parses an argv slice (without the program name).
    pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
        let (cmd, rest) = argv.split_first().ok_or("missing command")?;
        let opts = parse_options(rest)?;
        let take = |key: &str| opts.get(key).cloned();
        let take_f64 = |key: &str| -> Result<Option<f64>, String> {
            take(key)
                .map(|v| v.parse::<f64>().map_err(|e| format!("--{key}: {e}")))
                .transpose()
        };
        let take_u64 = |key: &str, default: u64| -> Result<u64, String> {
            Ok(take(key)
                .map(|v| v.parse::<u64>().map_err(|e| format!("--{key}: {e}")))
                .transpose()?
                .unwrap_or(default))
        };
        let take_usize = |key: &str, default: usize| -> Result<usize, String> {
            Ok(take(key)
                .map(|v| v.parse::<usize>().map_err(|e| format!("--{key}: {e}")))
                .transpose()?
                .unwrap_or(default))
        };
        let require_path = |key: &str| -> Result<PathBuf, String> {
            take(key)
                .map(PathBuf::from)
                .ok_or_else(|| format!("missing required --{key}"))
        };
        let take_scrape_interval = || -> Result<f64, String> {
            let v = take_f64("scrape-interval")?.unwrap_or(1.0);
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("--scrape-interval must be positive, got {v}"));
            }
            Ok(v)
        };

        match cmd.as_str() {
            "generate" => {
                let mut topology = match take("topology").as_deref() {
                    None | Some("origin") => TopologyParams::origin(),
                    Some("edge") => TopologyParams::edge(),
                    Some("regional") => TopologyParams::regional(),
                    Some(other) => {
                        return Err(format!(
                            "--topology must be origin, edge or regional, got {other:?}"
                        )
                        .into())
                    }
                };
                topology.levels = take_usize("levels", topology.levels)?;
                topology.fanout = take_usize("fanout", topology.fanout)?;
                if let Some(cap) = take_f64("node-capacity")? {
                    topology.node_capacity = cap;
                }
                if let Some(p) = take_f64("qos-prob")? {
                    topology.qos_prob = p;
                }
                topology.validate()?;
                Ok(Command::Generate {
                    seed: take_u64("seed", 0)?,
                    scale: match take("scale").as_deref() {
                        None | Some("small") => Scale::Small,
                        Some("paper") => Scale::Paper,
                        Some(other) => return Err(format!("unknown scale {other:?}").into()),
                    },
                    topology,
                    out: take("out")
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("system.json")),
                })
            }
            "inspect" => Ok(Command::Inspect {
                system: require_path("system")?,
            }),
            "plan" => Ok(Command::Plan {
                system: require_path("system")?,
                storage: take_f64("storage")?,
                processing: take_f64("processing")?,
                central: take_f64("central")?,
                alpha: (
                    take_f64("alpha1")?.unwrap_or(2.0),
                    take_f64("alpha2")?.unwrap_or(1.0),
                ),
                ancestor: match take("ancestor").as_deref() {
                    None | Some("closest") => AncestorPolicy::Closest,
                    Some("flat") => AncestorPolicy::Flat,
                    Some(other) => {
                        return Err(
                            format!("--ancestor must be closest or flat, got {other:?}").into()
                        )
                    }
                },
                threads: take_usize("threads", 0)?,
                out: take("out")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("placement.json")),
                trace_out: take("trace-out").map(PathBuf::from),
            }),
            "sweep" => {
                let figure: u8 = take("figure")
                    .ok_or("missing required --figure")?
                    .parse()
                    .map_err(|e| format!("--figure: {e}"))?;
                if !(1..=3).contains(&figure) {
                    return Err(format!("--figure must be 1, 2 or 3, got {figure}").into());
                }
                Ok(Command::Sweep {
                    figure,
                    runs: take("runs")
                        .map(|v| v.parse::<usize>().map_err(|e| format!("--runs: {e}")))
                        .transpose()?
                        .unwrap_or(3)
                        .max(1),
                    seed: take_u64("seed", 0)?,
                    paper: take("paper").is_some(),
                    out: take("out")
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("figure.json")),
                    trace_out: take("trace-out").map(PathBuf::from),
                })
            }
            "online" => {
                let rotation = take_f64("rotation")?.unwrap_or(0.5);
                if !(0.0..=1.0).contains(&rotation) {
                    return Err(format!("--rotation must be in [0, 1], got {rotation}").into());
                }
                let budget = take_f64("budget")?.unwrap_or(0.25);
                if !(0.0..=1.0).contains(&budget) {
                    return Err(format!("--budget must be in [0, 1], got {budget}").into());
                }
                Ok(Command::Online {
                    epochs: take_usize("epochs", 3)?.max(1),
                    rotation,
                    windows: take_usize("windows", 4)?.max(1),
                    budget,
                    runs: take_usize("runs", 3)?.max(1),
                    seed: take("seed")
                        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
                        .transpose()?,
                    paper: take("paper").is_some(),
                    out: take("out")
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("online.json")),
                    trace_out: take("trace-out").map(PathBuf::from),
                    expose: take("expose"),
                    scrape_interval: take_scrape_interval()?,
                })
            }
            "federate" => Ok(Command::Federate {
                preset: match take("preset").as_deref() {
                    None | Some("regional") => TopologyParams::regional(),
                    Some("edge") => TopologyParams::edge(),
                    Some(other) => {
                        return Err(
                            format!("--preset must be edge or regional, got {other:?}").into()
                        )
                    }
                },
                runs: take_usize("runs", 3)?.max(1),
                seed: take("seed")
                    .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
                    .transpose()?,
                paper: take("paper").is_some(),
                out: take("out")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("federate.json")),
                trace_out: take("trace-out").map(PathBuf::from),
            }),
            "negotiate" => {
                let central = take_f64("central")?.unwrap_or(0.3);
                if !(0.0..=1.0).contains(&central) {
                    return Err(format!("--central must be in [0, 1], got {central}").into());
                }
                Ok(Command::Negotiate {
                    central,
                    runs: take_usize("runs", 3)?.max(1),
                    seed: take("seed")
                        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
                        .transpose()?,
                    paper: take("paper").is_some(),
                    out: take("out")
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("negotiate.json")),
                    trace_out: take("trace-out").map(PathBuf::from),
                    expose: take("expose"),
                    scrape_interval: take_scrape_interval()?,
                })
            }
            "audit" => Ok(Command::Audit {
                seeds: take_u64("seeds", 16)?.max(1),
                start: take_u64("start", 0)?,
                inject: take("inject").is_some(),
                trace_out: take("trace-out").map(PathBuf::from),
            }),
            "trace" => Ok(Command::Trace {
                system: take("system").map(PathBuf::from),
                seed: take_u64("seed", 0)?,
                storage: take_f64("storage")?,
                processing: take_f64("processing")?,
                out: take("out")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("trace.jsonl")),
            }),
            "compare" => Ok(Command::Compare {
                system: require_path("system")?,
                seed: take_u64("seed", 0)?,
                storage: take_f64("storage")?,
                processing: take_f64("processing")?,
            }),
            "route" => Ok(Command::Route {
                system: require_path("system")?,
                placement: take("placement").map(PathBuf::from),
                seed: take_u64("seed", 0)?,
                storage: take_f64("storage")?,
                processing: take_f64("processing")?,
                threads: take_usize("threads", 0)?,
                out: take("out").map(PathBuf::from),
                expose: take("expose"),
                scrape_interval: take_scrape_interval()?,
            }),
            "evaluate" => {
                let placement = take("placement").map(PathBuf::from);
                let policy = match take("policy").as_deref() {
                    None => None,
                    Some("ours") => Some(PolicyName::Ours),
                    Some("remote") => Some(PolicyName::Remote),
                    Some("local") => Some(PolicyName::Local),
                    Some("lru") => Some(PolicyName::Lru),
                    Some(other) => return Err(format!("unknown policy {other:?}").into()),
                };
                if placement.is_some() == policy.is_some() {
                    return Err("evaluate needs exactly one of --placement or --policy".into());
                }
                Ok(Command::Evaluate {
                    system: require_path("system")?,
                    placement,
                    policy,
                    seed: take_u64("seed", 0)?,
                    storage: take_f64("storage")?,
                    processing: take_f64("processing")?,
                })
            }
            "top" => Ok(Command::Top {
                study: match take("study").as_deref() {
                    None | Some("online") => StudyName::Online,
                    Some("route") => StudyName::Route,
                    Some("negotiate") => StudyName::Negotiate,
                    Some(other) => {
                        return Err(format!(
                            "--study must be online, route or negotiate, got {other:?}"
                        )
                        .into())
                    }
                },
                refresh_ms: take_u64("refresh", 500)?.max(50),
                frames: take_usize("frames", 0)?,
                dump: take("dump").map(PathBuf::from),
                seed: take("seed")
                    .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
                    .transpose()?,
            }),
            "--help" | "-h" | "help" => Err(ParseError::Help),
            other => Err(ParseError::UnknownCommand(other.to_string())),
        }
    }
}

/// Options that are bare flags (no value).
const BOOL_FLAGS: &[&str] = &["paper", "inject"];

/// Parses `--key value` pairs (and bare boolean flags), rejecting dangling
/// or duplicate keys.
fn parse_options(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = rest.iter();
    while let Some(key) = it.next() {
        let name = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got {key:?}"))?;
        let value = if BOOL_FLAGS.contains(&name) {
            "true".to_string()
        } else {
            it.next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .clone()
        };
        if opts.insert(name.to_string(), value).is_some() {
            return Err(format!("duplicate option --{name}"));
        }
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ParseError> {
        Command::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn generate_defaults() {
        let cmd = parse(&["generate"]).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                seed: 0,
                scale: Scale::Small,
                topology: TopologyParams::origin(),
                out: PathBuf::from("system.json"),
            }
        );
    }

    #[test]
    fn generate_with_options() {
        let cmd = parse(&[
            "generate", "--seed", "9", "--scale", "paper", "--out", "x.json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                seed: 9,
                scale: Scale::Paper,
                topology: TopologyParams::origin(),
                out: PathBuf::from("x.json"),
            }
        );
    }

    #[test]
    fn generate_parses_topology_presets_and_overrides() {
        let Command::Generate { topology, .. } = parse(&[
            "generate",
            "--topology",
            "regional",
            "--fanout",
            "3",
            "--node-capacity",
            "12.5",
            "--qos-prob",
            "0.5",
        ])
        .unwrap() else {
            unreachable!("generate input parses to Command::Generate")
        };
        let mut want = TopologyParams::regional();
        want.fanout = 3;
        want.node_capacity = 12.5;
        want.qos_prob = 0.5;
        assert_eq!(topology, want);
        // `inf` lifts a preset's finite node capacity.
        let Command::Generate { topology, .. } =
            parse(&["generate", "--topology", "edge", "--node-capacity", "inf"]).unwrap()
        else {
            unreachable!("generate input parses to Command::Generate")
        };
        assert_eq!(topology.node_capacity, f64::INFINITY);
        // Overrides are validated at parse time.
        assert!(matches!(
            parse(&["generate", "--topology", "edge", "--fanout", "0"]),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["generate", "--topology", "galactic"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn plan_parses_fractions_and_weights() {
        let cmd = parse(&[
            "plan",
            "--system",
            "s.json",
            "--storage",
            "0.65",
            "--alpha1",
            "3",
        ])
        .unwrap();
        let Command::Plan {
            storage,
            processing,
            alpha,
            ancestor,
            threads,
            ..
        } = cmd
        else {
            unreachable!("plan input parses to Command::Plan")
        };
        assert_eq!(storage, Some(0.65));
        assert_eq!(processing, None);
        assert_eq!(alpha, (3.0, 1.0));
        assert_eq!(ancestor, AncestorPolicy::Closest);
        assert_eq!(threads, 0, "threads defaults to auto");
    }

    #[test]
    fn plan_parses_thread_cap() {
        let Command::Plan { threads, .. } =
            parse(&["plan", "--system", "s.json", "--threads", "4"]).unwrap()
        else {
            unreachable!("plan input parses to Command::Plan")
        };
        assert_eq!(threads, 4);
        assert!(matches!(
            parse(&["plan", "--system", "s.json", "--threads", "many"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn plan_parses_ancestor_policy() {
        let Command::Plan { ancestor, .. } =
            parse(&["plan", "--system", "s.json", "--ancestor", "flat"]).unwrap()
        else {
            unreachable!("plan input parses to Command::Plan")
        };
        assert_eq!(ancestor, AncestorPolicy::Flat);
        assert!(matches!(
            parse(&["plan", "--system", "s.json", "--ancestor", "random"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn federate_parses_and_defaults() {
        assert_eq!(
            parse(&["federate"]).unwrap(),
            Command::Federate {
                preset: TopologyParams::regional(),
                runs: 3,
                seed: None,
                paper: false,
                out: PathBuf::from("federate.json"),
                trace_out: None,
            }
        );
        assert_eq!(
            parse(&[
                "federate", "--preset", "edge", "--runs", "5", "--seed", "9", "--paper", "--out",
                "f.json",
            ])
            .unwrap(),
            Command::Federate {
                preset: TopologyParams::edge(),
                runs: 5,
                seed: Some(9),
                paper: true,
                out: PathBuf::from("f.json"),
                trace_out: None,
            }
        );
        assert!(matches!(
            parse(&["federate", "--preset", "mesh"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn route_parses_and_defaults() {
        assert_eq!(
            parse(&["route", "--system", "s.json"]).unwrap(),
            Command::Route {
                system: PathBuf::from("s.json"),
                placement: None,
                seed: 0,
                storage: None,
                processing: None,
                threads: 0,
                out: None,
                expose: None,
                scrape_interval: 1.0,
            }
        );
        assert_eq!(
            parse(&[
                "route",
                "--system",
                "s.json",
                "--placement",
                "p.json",
                "--seed",
                "7",
                "--threads",
                "4",
                "--out",
                "r.json",
            ])
            .unwrap(),
            Command::Route {
                system: PathBuf::from("s.json"),
                placement: Some(PathBuf::from("p.json")),
                seed: 7,
                storage: None,
                processing: None,
                threads: 4,
                out: Some(PathBuf::from("r.json")),
                expose: None,
                scrape_interval: 1.0,
            }
        );
        // --system is required.
        assert!(parse(&["route"]).is_err());
    }

    #[test]
    fn evaluate_requires_exactly_one_source() {
        assert!(parse(&["evaluate", "--system", "s.json"]).is_err());
        assert!(parse(&[
            "evaluate",
            "--system",
            "s.json",
            "--policy",
            "lru",
            "--placement",
            "p.json"
        ])
        .is_err());
        assert!(parse(&["evaluate", "--system", "s.json", "--policy", "lru"]).is_ok());
        assert!(parse(&["evaluate", "--system", "s.json", "--placement", "p.json"]).is_ok());
    }

    #[test]
    fn sweep_parses_and_validates() {
        let cmd = parse(&["sweep", "--figure", "2", "--runs", "5", "--paper"]).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                figure: 2,
                runs: 5,
                seed: 0,
                paper: true,
                out: PathBuf::from("figure.json"),
                trace_out: None,
            }
        );
        assert!(parse(&["sweep", "--figure", "4"]).is_err());
        assert!(parse(&["sweep"]).is_err());
        // Default is quick scale, 3 runs.
        let cmd = parse(&["sweep", "--figure", "1"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Sweep {
                figure: 1,
                runs: 3,
                paper: false,
                ..
            }
        ));
    }

    #[test]
    fn online_parses_and_validates() {
        let cmd = parse(&[
            "online",
            "--epochs",
            "2",
            "--rotation",
            "0.8",
            "--windows",
            "6",
            "--budget",
            "0.1",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Online {
                epochs: 2,
                rotation: 0.8,
                windows: 6,
                budget: 0.1,
                runs: 3,
                seed: None,
                paper: false,
                out: PathBuf::from("online.json"),
                trace_out: None,
                expose: None,
                scrape_interval: 1.0,
            }
        );
        // Defaults.
        assert!(matches!(
            parse(&["online"]).unwrap(),
            Command::Online {
                epochs: 3,
                windows: 4,
                ..
            }
        ));
        assert!(parse(&["online", "--rotation", "1.5"]).is_err());
        assert!(parse(&["online", "--budget", "-0.1"]).is_err());
    }

    #[test]
    fn negotiate_parses_and_defaults() {
        assert_eq!(
            parse(&["negotiate"]).unwrap(),
            Command::Negotiate {
                central: 0.3,
                runs: 3,
                seed: None,
                paper: false,
                out: PathBuf::from("negotiate.json"),
                trace_out: None,
                expose: None,
                scrape_interval: 1.0,
            }
        );
        assert_eq!(
            parse(&[
                "negotiate",
                "--central",
                "0.1",
                "--runs",
                "5",
                "--seed",
                "9",
                "--paper",
                "--out",
                "n.json",
            ])
            .unwrap(),
            Command::Negotiate {
                central: 0.1,
                runs: 5,
                seed: Some(9),
                paper: true,
                out: PathBuf::from("n.json"),
                trace_out: None,
                expose: None,
                scrape_interval: 1.0,
            }
        );
        assert!(matches!(
            parse(&["negotiate", "--central", "1.5"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn audit_parses_and_defaults() {
        assert_eq!(
            parse(&["audit"]).unwrap(),
            Command::Audit {
                seeds: 16,
                start: 0,
                inject: false,
                trace_out: None,
            }
        );
        assert_eq!(
            parse(&["audit", "--seeds", "64", "--start", "100", "--inject"]).unwrap(),
            Command::Audit {
                seeds: 64,
                start: 100,
                inject: true,
                trace_out: None,
            }
        );
        // --seeds 0 is clamped to 1 so the sweep always runs something.
        assert!(matches!(
            parse(&["audit", "--seeds", "0"]).unwrap(),
            Command::Audit { seeds: 1, .. }
        ));
    }

    #[test]
    fn trace_parses_and_defaults() {
        assert_eq!(
            parse(&["trace"]).unwrap(),
            Command::Trace {
                system: None,
                seed: 0,
                storage: None,
                processing: None,
                out: PathBuf::from("trace.jsonl"),
            }
        );
        assert_eq!(
            parse(&[
                "trace",
                "--system",
                "s.json",
                "--seed",
                "7",
                "--storage",
                "0.5",
                "--out",
                "t.jsonl",
            ])
            .unwrap(),
            Command::Trace {
                system: Some(PathBuf::from("s.json")),
                seed: 7,
                storage: Some(0.5),
                processing: None,
                out: PathBuf::from("t.jsonl"),
            }
        );
    }

    #[test]
    fn trace_out_rides_along_on_plan_and_audit() {
        let Command::Plan { trace_out, .. } =
            parse(&["plan", "--system", "s.json", "--trace-out", "t.jsonl"]).unwrap()
        else {
            unreachable!("plan input parses to Command::Plan")
        };
        assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
        let Command::Audit { trace_out, .. } =
            parse(&["audit", "--inject", "--trace-out", "t.jsonl"]).unwrap()
        else {
            unreachable!("audit input parses to Command::Audit")
        };
        assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
        assert!(parse(&["plan", "--system", "s.json", "--trace-out"]).is_err());
    }

    #[test]
    fn top_parses_and_defaults() {
        assert_eq!(
            parse(&["top"]).unwrap(),
            Command::Top {
                study: StudyName::Online,
                refresh_ms: 500,
                frames: 0,
                dump: None,
                seed: None,
            }
        );
        assert_eq!(
            parse(&[
                "top",
                "--study",
                "negotiate",
                "--refresh",
                "200",
                "--frames",
                "3",
                "--dump",
                "frames",
                "--seed",
                "7",
            ])
            .unwrap(),
            Command::Top {
                study: StudyName::Negotiate,
                refresh_ms: 200,
                frames: 3,
                dump: Some(PathBuf::from("frames")),
                seed: Some(7),
            }
        );
        // The refresh period floors at 50 ms so the render loop never
        // busy-spins against the registry.
        assert!(matches!(
            parse(&["top", "--refresh", "1"]).unwrap(),
            Command::Top { refresh_ms: 50, .. }
        ));
        assert!(matches!(
            parse(&["top", "--study", "federate"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn expose_rides_along_on_online_route_and_negotiate() {
        let Command::Online {
            expose,
            scrape_interval,
            ..
        } = parse(&[
            "online",
            "--expose",
            "127.0.0.1:0",
            "--scrape-interval",
            "0.2",
        ])
        .unwrap()
        else {
            unreachable!("online input parses to Command::Online")
        };
        assert_eq!(expose.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(scrape_interval, 0.2);
        let Command::Route { expose, .. } =
            parse(&["route", "--system", "s.json", "--expose", "m.prom"]).unwrap()
        else {
            unreachable!("route input parses to Command::Route")
        };
        assert_eq!(expose.as_deref(), Some("m.prom"));
        let Command::Negotiate { expose, .. } =
            parse(&["negotiate", "--expose", "m.prom"]).unwrap()
        else {
            unreachable!("negotiate input parses to Command::Negotiate")
        };
        assert_eq!(expose.as_deref(), Some("m.prom"));
        // A non-positive flush period can never scrape.
        assert!(matches!(
            parse(&["online", "--scrape-interval", "0"]),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["online", "--scrape-interval", "-1"]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["generate", "stray"]).is_err());
        assert!(parse(&["generate", "--seed"]).is_err());
        assert!(parse(&["generate", "--seed", "1", "--seed", "2"]).is_err());
        assert!(parse(&["generate", "--scale", "huge"]).is_err());
        assert!(parse(&["evaluate", "--system", "s", "--policy", "apache"]).is_err());
        assert!(parse(&["inspect"]).is_err()); // missing --system
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(parse(&["--help"]), Err(ParseError::Help));
        assert_eq!(parse(&["-h"]), Err(ParseError::Help));
        assert_eq!(parse(&["help"]), Err(ParseError::Help));
        assert_eq!(
            parse(&["frobnicate"]),
            Err(ParseError::UnknownCommand("frobnicate".to_string()))
        );
        let err = parse(&["generate", "--seed"]).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
        assert_eq!(err.to_string(), "--seed needs a value");
        assert_eq!(
            parse(&["frobnicate"]).unwrap_err().to_string(),
            "unknown command \"frobnicate\""
        );
    }
}
