//! `mmrepl` — command-line front end for the replication toolkit.
//!
//! ```text
//! mmrepl generate  --seed 42 --scale small --out system.json
//! mmrepl inspect   --system system.json
//! mmrepl plan      --system system.json --storage 0.65 --out placement.json
//! mmrepl evaluate  --system system.json --placement placement.json --seed 42
//! mmrepl evaluate  --system system.json --policy lru --seed 42
//! ```
//!
//! Systems and placements travel as JSON, so plans can be diffed,
//! version-controlled and fed back in.

mod args;
mod commands;
mod dash;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::Command::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(args::ParseError::Help) => {
            println!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}\n\n{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
