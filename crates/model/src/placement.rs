//! The decision variables of the optimization problem: which objects each
//! page serves locally (`X`) and which optional objects are additionally
//! local (`X'`), plus the bookkeeping derived from them — per-site stored
//! object sets, storage usage and HTTP loads.
//!
//! The paper's `X` is an `n x m` (0,1) matrix with `X_jk = 1` only where
//! `U_jk = 1`; `X'` extends it over optional references. Because each page
//! references only a handful of the 15,000 objects, we store one boolean
//! per *reference slot* (aligned with [`WebPage::compulsory`] /
//! [`WebPage::optional`]) rather than dense rows. [`crate::matrix`] can
//! materialize the dense matrices for cross-checking.

use crate::entities::{System, WebPage};
use crate::error::ModelError;
use crate::ids::{IdVec, ObjectId, PageId, SiteId};
use crate::units::{Bytes, ReqPerSec};
use serde::{Deserialize, Serialize};

/// One page's row of the `X` / `X'` matrices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagePartition {
    /// `local_compulsory[t]` is `X_jk` for `k = page.compulsory[t]`:
    /// `true` means the object is downloaded from the local server when the
    /// page is requested.
    pub local_compulsory: Vec<bool>,
    /// `local_optional[t]` is the optional extension of `X'` for
    /// `k = page.optional[t].object`.
    pub local_optional: Vec<bool>,
}

impl PagePartition {
    /// A partition serving everything from the repository.
    pub fn all_remote(page: &WebPage) -> Self {
        PagePartition {
            local_compulsory: vec![false; page.n_compulsory()],
            local_optional: vec![false; page.n_optional()],
        }
    }

    /// A partition serving everything from the local site.
    pub fn all_local(page: &WebPage) -> Self {
        PagePartition {
            local_compulsory: vec![true; page.n_compulsory()],
            local_optional: vec![true; page.n_optional()],
        }
    }

    /// Number of compulsory objects marked local (`Σ_k X_jk`).
    #[inline]
    pub fn n_local_compulsory(&self) -> usize {
        self.local_compulsory.iter().filter(|&&b| b).count()
    }

    /// Number of optional objects marked local.
    #[inline]
    pub fn n_local_optional(&self) -> usize {
        self.local_optional.iter().filter(|&&b| b).count()
    }

    /// Whether the shapes match the page's reference lists.
    pub fn matches(&self, page: &WebPage) -> bool {
        self.local_compulsory.len() == page.n_compulsory()
            && self.local_optional.len() == page.n_optional()
    }
}

/// A complete assignment: one [`PagePartition`] per page.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    partitions: IdVec<PageId, PagePartition>,
}

impl Placement {
    /// Builds a placement from per-page partitions, validating shapes.
    pub fn new(
        system: &System,
        partitions: IdVec<PageId, PagePartition>,
    ) -> Result<Self, ModelError> {
        if partitions.len() != system.n_pages() {
            return Err(ModelError::PlacementSizeMismatch {
                system_pages: system.n_pages(),
                placement_pages: partitions.len(),
            });
        }
        for (pid, part) in partitions.iter() {
            let page = system.page(pid);
            if !part.matches(page) {
                return Err(ModelError::PartitionShapeMismatch {
                    page: pid,
                    expected: (page.n_compulsory(), page.n_optional()),
                    actual: (part.local_compulsory.len(), part.local_optional.len()),
                });
            }
        }
        Ok(Placement { partitions })
    }

    /// Validates this placement against `system` — used after
    /// deserializing a placement from disk, where the type system cannot
    /// vouch for the shapes.
    pub fn validate(&self, system: &System) -> Result<(), ModelError> {
        if self.partitions.len() != system.n_pages() {
            return Err(ModelError::PlacementSizeMismatch {
                system_pages: system.n_pages(),
                placement_pages: self.partitions.len(),
            });
        }
        for (pid, part) in self.partitions.iter() {
            let page = system.page(pid);
            if !part.matches(page) {
                return Err(ModelError::PartitionShapeMismatch {
                    page: pid,
                    expected: (page.n_compulsory(), page.n_optional()),
                    actual: (part.local_compulsory.len(), part.local_optional.len()),
                });
            }
        }
        Ok(())
    }

    /// The all-remote placement: every object downloaded from the
    /// repository ("Remote" baseline).
    pub fn all_remote(system: &System) -> Self {
        Placement {
            partitions: system
                .pages()
                .values()
                .map(PagePartition::all_remote)
                .collect(),
        }
    }

    /// The all-local placement: every object stored and served locally
    /// ("Local" baseline).
    pub fn all_local(system: &System) -> Self {
        Placement {
            partitions: system
                .pages()
                .values()
                .map(PagePartition::all_local)
                .collect(),
        }
    }

    /// The partition row for `page`.
    #[inline]
    pub fn partition(&self, page: PageId) -> &PagePartition {
        &self.partitions[page]
    }

    /// Mutable access to a page's partition row.
    #[inline]
    pub fn partition_mut(&mut self, page: PageId) -> &mut PagePartition {
        &mut self.partitions[page]
    }

    /// Iterates `(page, partition)` rows.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (PageId, &PagePartition)> {
        self.partitions.iter()
    }

    /// Number of pages covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the placement is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The set of objects that must be stored at `site`: every object some
    /// hosted page marks for local download (compulsory `X_jk = 1` or
    /// optional `X'_jk = 1`).
    pub fn stored_set(&self, system: &System, site: SiteId) -> StoredSet {
        let mut seen = vec![false; system.n_objects()];
        for &p in system.pages_of(site) {
            let page = system.page(p);
            let part = &self.partitions[p];
            for (t, &k) in page.compulsory.iter().enumerate() {
                if part.local_compulsory[t] {
                    seen[k.index()] = true;
                }
            }
            for (t, o) in page.optional.iter().enumerate() {
                if part.local_optional[t] {
                    seen[o.object.index()] = true;
                }
            }
        }
        StoredSet { present: seen }
    }

    /// Eq. 10 left-hand side: HTML bytes of hosted pages plus bytes of all
    /// locally stored objects at `site`.
    pub fn storage_used(&self, system: &System, site: SiteId) -> Bytes {
        let stored = self.stored_set(system, site);
        let objects: Bytes = stored.iter().map(|k| system.object_size(k)).sum();
        objects + system.html_bytes_of(site)
    }

    /// Eq. 8 left-hand side: the HTTP request rate hitting `site`,
    /// `Σ_j A_ij f(W_j) (1 + Σ_k X_jk + f(W_j,M) Σ_k U'_jk X'_jk)`.
    pub fn site_load(&self, system: &System, site: SiteId) -> ReqPerSec {
        let mut load = 0.0;
        for &p in system.pages_of(site) {
            let page = system.page(p);
            let part = &self.partitions[p];
            let opt_local: f64 = page
                .optional
                .iter()
                .zip(&part.local_optional)
                .filter(|(_, &local)| local)
                .map(|(o, _)| o.prob)
                .sum();
            load += page.freq.get()
                * (1.0 + part.n_local_compulsory() as f64 + page.opt_req_factor * opt_local);
        }
        ReqPerSec(load)
    }

    /// Eq. 9 left-hand side: the HTTP request rate hitting the repository,
    /// `Σ_j f(W_j) (Σ_k U_jk (1 - X_jk) + f(W_j,M) Σ_k U'_jk (1 - X'_jk))`.
    ///
    /// (The paper's Eq. 9 omits the `f(W_j, M)` factor on the optional
    /// term; we include it for symmetry with Eq. 8 — with the Table 1
    /// workload it is `1.0`, so the two readings coincide.)
    pub fn repo_load(&self, system: &System) -> ReqPerSec {
        ReqPerSec(
            system
                .sites()
                .ids()
                .map(|s| self.repo_load_from(system, s).get())
                .sum(),
        )
    }

    /// The share of the repository load generated by `site`'s pages — the
    /// `P(S_i, R)` estimate carried by status messages in the off-loading
    /// negotiation.
    pub fn repo_load_from(&self, system: &System, site: SiteId) -> ReqPerSec {
        let mut load = 0.0;
        for &p in system.pages_of(site) {
            let page = system.page(p);
            let part = &self.partitions[p];
            let remote_compulsory = (page.n_compulsory() - part.n_local_compulsory()) as f64;
            let opt_remote: f64 = page
                .optional
                .iter()
                .zip(&part.local_optional)
                .filter(|(_, &local)| !local)
                .map(|(o, _)| o.prob)
                .sum();
            load += page.freq.get() * (remote_compulsory + page.opt_req_factor * opt_remote);
        }
        ReqPerSec(load)
    }

    /// Total count of local-download marks across all pages — a cheap
    /// "how replicated is this placement" metric used in tests and logs.
    pub fn total_local_marks(&self) -> usize {
        self.partitions
            .values()
            .map(|p| p.n_local_compulsory() + p.n_local_optional())
            .sum()
    }

    /// Counts the marks that differ between two placements over the same
    /// system — how far a plan drifted, how much a re-plan changed.
    ///
    /// # Panics
    /// Panics if the placements have different shapes.
    pub fn diff(&self, other: &Placement) -> PlacementDiff {
        assert_eq!(
            self.partitions.len(),
            other.partitions.len(),
            "diffing placements of different systems"
        );
        let mut diff = PlacementDiff::default();
        for (pid, a) in self.partitions.iter() {
            let b = other.partition(pid);
            assert_eq!(
                a.local_compulsory.len(),
                b.local_compulsory.len(),
                "page {pid} shape mismatch"
            );
            let mut page_changed = false;
            for (x, y) in a.local_compulsory.iter().zip(&b.local_compulsory) {
                if x != y {
                    diff.compulsory_changed += 1;
                    page_changed = true;
                }
            }
            for (x, y) in a.local_optional.iter().zip(&b.local_optional) {
                if x != y {
                    diff.optional_changed += 1;
                    page_changed = true;
                }
            }
            if page_changed {
                diff.pages_changed += 1;
            }
        }
        diff
    }
}

/// The result of [`Placement::diff`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementDiff {
    /// Compulsory (`X`) marks that flipped.
    pub compulsory_changed: usize,
    /// Optional (`X'`) marks that flipped.
    pub optional_changed: usize,
    /// Pages with at least one flipped mark.
    pub pages_changed: usize,
}

impl PlacementDiff {
    /// Total flipped marks.
    pub fn total(&self) -> usize {
        self.compulsory_changed + self.optional_changed
    }

    /// Whether the placements are identical.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

/// The set of objects stored at one site, as a dense membership vector over
/// the whole object universe (15,000 objects ≈ 15 KB — cheap and O(1) to
/// query, which the restoration loops in `mmrepl-core` rely on).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredSet {
    present: Vec<bool>,
}

impl StoredSet {
    /// An empty stored set sized for `n_objects`.
    pub fn empty(n_objects: usize) -> Self {
        StoredSet {
            present: vec![false; n_objects],
        }
    }

    /// Whether `object` is stored.
    #[inline]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.present[object.index()]
    }

    /// Marks `object` as stored. Returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, object: ObjectId) -> bool {
        let slot = &mut self.present[object.index()];
        let was = *slot;
        *slot = true;
        !was
    }

    /// Removes `object`. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, object: ObjectId) -> bool {
        let slot = &mut self.present[object.index()];
        let was = *slot;
        *slot = false;
        was
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.present.iter().filter(|&&b| b).count()
    }

    /// Whether no object is stored.
    pub fn is_empty(&self) -> bool {
        !self.present.iter().any(|&b| b)
    }

    /// Iterates stored object ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| ObjectId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{default_site, MediaObject, OptionalRef, SystemBuilder, WebPage};

    fn two_page_system() -> System {
        let mut b = SystemBuilder::new();
        let s0 = b.add_site(default_site());
        let m0 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m1 = b.add_object(MediaObject::of_size(Bytes::kib(200)));
        let m2 = b.add_object(MediaObject::of_size(Bytes::kib(400)));
        b.add_page(WebPage {
            site: s0,
            html_size: Bytes::kib(5),
            freq: ReqPerSec(2.0),
            compulsory: vec![m0, m1],
            optional: vec![OptionalRef {
                object: m2,
                prob: 0.1,
            }],
            opt_req_factor: 1.0,
        });
        b.add_page(WebPage {
            site: s0,
            html_size: Bytes::kib(5),
            freq: ReqPerSec(1.0),
            compulsory: vec![m1, m2],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn all_local_and_all_remote_shapes() {
        let sys = two_page_system();
        let local = Placement::all_local(&sys);
        let remote = Placement::all_remote(&sys);
        assert_eq!(local.len(), 2);
        assert_eq!(local.partition(PageId::new(0)).n_local_compulsory(), 2);
        assert_eq!(local.partition(PageId::new(0)).n_local_optional(), 1);
        assert_eq!(remote.total_local_marks(), 0);
        assert_eq!(local.total_local_marks(), 5);
    }

    #[test]
    fn stored_set_is_union_over_pages() {
        let sys = two_page_system();
        let mut placement = Placement::all_remote(&sys);
        // Page 0 serves m0 locally; page 1 serves m2 locally.
        placement.partition_mut(PageId::new(0)).local_compulsory[0] = true;
        placement.partition_mut(PageId::new(1)).local_compulsory[1] = true;
        let stored = placement.stored_set(&sys, SiteId::new(0));
        assert!(stored.contains(ObjectId::new(0)));
        assert!(!stored.contains(ObjectId::new(1)));
        assert!(stored.contains(ObjectId::new(2)));
        assert_eq!(stored.len(), 2);
    }

    #[test]
    fn object_shared_by_two_pages_stored_once() {
        let sys = two_page_system();
        let mut placement = Placement::all_remote(&sys);
        // m1 is compulsory for both pages; both mark it local.
        placement.partition_mut(PageId::new(0)).local_compulsory[1] = true;
        placement.partition_mut(PageId::new(1)).local_compulsory[0] = true;
        let used = placement.storage_used(&sys, SiteId::new(0));
        // HTML 10 KiB + m1 stored once (200 KiB).
        assert_eq!(used, Bytes::kib(10) + Bytes::kib(200));
    }

    #[test]
    fn storage_used_counts_optional_marks() {
        let sys = two_page_system();
        let mut placement = Placement::all_remote(&sys);
        placement.partition_mut(PageId::new(0)).local_optional[0] = true;
        let used = placement.storage_used(&sys, SiteId::new(0));
        assert_eq!(used, Bytes::kib(10) + Bytes::kib(400));
    }

    #[test]
    fn site_load_matches_eq8() {
        let sys = two_page_system();
        let mut placement = Placement::all_remote(&sys);
        // All remote: each page request still costs 1 HTML request.
        let base = placement.site_load(&sys, SiteId::new(0));
        assert!((base.get() - (2.0 + 1.0)).abs() < 1e-12);

        placement.partition_mut(PageId::new(0)).local_compulsory[0] = true;
        placement.partition_mut(PageId::new(0)).local_optional[0] = true;
        let load = placement.site_load(&sys, SiteId::new(0));
        // Page 0: 2.0 * (1 + 1 + 0.1) = 4.2; page 1: 1.0 * 1 = 1.0
        assert!((load.get() - 5.2).abs() < 1e-12);
    }

    #[test]
    fn repo_load_matches_eq9_and_splits_by_site() {
        let sys = two_page_system();
        let placement = Placement::all_remote(&sys);
        // Page 0: 2.0 * (2 + 0.1) = 4.2; page 1: 1.0 * 2 = 2.0
        assert!((placement.repo_load(&sys).get() - 6.2).abs() < 1e-12);
        assert!((placement.repo_load_from(&sys, SiteId::new(0)).get() - 6.2).abs() < 1e-12);

        let local = Placement::all_local(&sys);
        assert_eq!(local.repo_load(&sys), ReqPerSec(0.0));
    }

    #[test]
    fn load_conservation_between_site_and_repo() {
        // Moving a compulsory mark from remote to local shifts exactly
        // f(W_j) requests/sec from the repository to the site.
        let sys = two_page_system();
        let mut placement = Placement::all_remote(&sys);
        let before_site = placement.site_load(&sys, SiteId::new(0)).get();
        let before_repo = placement.repo_load(&sys).get();
        placement.partition_mut(PageId::new(0)).local_compulsory[1] = true;
        let after_site = placement.site_load(&sys, SiteId::new(0)).get();
        let after_repo = placement.repo_load(&sys).get();
        assert!((after_site - before_site - 2.0).abs() < 1e-12);
        assert!((before_repo - after_repo - 2.0).abs() < 1e-12);
    }

    #[test]
    fn new_validates_shapes() {
        let sys = two_page_system();
        let mut parts: IdVec<PageId, PagePartition> = sys
            .pages()
            .values()
            .map(PagePartition::all_remote)
            .collect();
        parts[PageId::new(0)].local_compulsory.push(true); // corrupt shape
        assert!(matches!(
            Placement::new(&sys, parts).unwrap_err(),
            ModelError::PartitionShapeMismatch { .. }
        ));
    }

    #[test]
    fn new_validates_page_count() {
        let sys = two_page_system();
        let parts: IdVec<PageId, PagePartition> = IdVec::from_vec(vec![]);
        assert!(matches!(
            Placement::new(&sys, parts).unwrap_err(),
            ModelError::PlacementSizeMismatch { .. }
        ));
    }

    #[test]
    fn diff_counts_flipped_marks() {
        let sys = two_page_system();
        let a = Placement::all_remote(&sys);
        let same = a.diff(&Placement::all_remote(&sys));
        assert!(same.is_empty());
        assert_eq!(same.total(), 0);

        let b = Placement::all_local(&sys);
        let d = a.diff(&b);
        // Page 0: 2 compulsory + 1 optional; page 1: 2 compulsory.
        assert_eq!(d.compulsory_changed, 4);
        assert_eq!(d.optional_changed, 1);
        assert_eq!(d.pages_changed, 2);
        assert_eq!(d.total(), 5);
        // Symmetric.
        assert_eq!(b.diff(&a), d);
    }

    #[test]
    fn diff_isolates_single_mark() {
        let sys = two_page_system();
        let a = Placement::all_remote(&sys);
        let mut b = a.clone();
        b.partition_mut(PageId::new(1)).local_compulsory[0] = true;
        let d = a.diff(&b);
        assert_eq!(d.compulsory_changed, 1);
        assert_eq!(d.optional_changed, 0);
        assert_eq!(d.pages_changed, 1);
    }

    #[test]
    fn stored_set_insert_remove() {
        let mut s = StoredSet::empty(4);
        assert!(s.is_empty());
        assert!(s.insert(ObjectId::new(2)));
        assert!(!s.insert(ObjectId::new(2)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(ObjectId::new(2)));
        assert!(!s.remove(ObjectId::new(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn stored_set_iter_ascending() {
        let mut s = StoredSet::empty(10);
        s.insert(ObjectId::new(7));
        s.insert(ObjectId::new(1));
        s.insert(ObjectId::new(4));
        let ids: Vec<u32> = s.iter().map(|o| o.raw()).collect();
        assert_eq!(ids, vec![1, 4, 7]);
    }
}
