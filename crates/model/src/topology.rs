//! Federated repository trees: multi-repository hierarchies with per-link
//! bandwidth/latency and per-site QoS bounds.
//!
//! The paper models a single central repository in a star with its sites.
//! This module generalizes that to a **tree of repository nodes** (edge →
//! regional → origin, in the tree-network replica-placement tradition of
//! Benoit/Rehn/Robert): each node may hold replicas and serve requests,
//! parent links carry a bandwidth and a latency, and each site is attached
//! to one node. A remote stream served by ancestor `a` of site `i` flows
//! over the path `attach(i) → a`, so its effective channel is
//!
//! * rate: `min(site.repo_rate, min link bandwidth on the path)`;
//! * overhead: `site.repo_ovhd + Σ link latencies on the path`.
//!
//! The **single-node degenerate case is exactly the paper's star**: with
//! zero links on the path the effective channel is the site's raw
//! `repo_rate`/`repo_ovhd` bit for bit, so every star plan is unchanged.
//!
//! Construction is validated: exactly one root, no cycles, positive link
//! bandwidths, finite non-negative latencies, in-range attachments.
//! Per-site QoS bounds (`Attachment::qos`) cap the remote-stream overhead
//! an assignment may impose; bounds tighter than the attach node's own
//! overhead are rejected at [`crate::SystemBuilder::build`] time.

use crate::error::ModelError;
use crate::ids::{IdVec, NodeId, SiteId};
use crate::units::{BytesPerSec, ReqPerSec, Secs};
use serde::{Deserialize, Serialize};

/// One repository node in the federated tree.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RepoNode {
    /// Processing capacity of this node, `C(N)` — the per-node Eq. 9
    /// budget. The paper's Table 1 sets the (single) repository's to
    /// infinite.
    pub capacity: ReqPerSec,
}

impl Default for RepoNode {
    fn default() -> Self {
        RepoNode {
            capacity: ReqPerSec::INFINITE,
        }
    }
}

/// A parent link: the constrained path segment between a node and its
/// parent.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Usable bandwidth of the link, bytes/second. Must be finite and
    /// strictly positive.
    pub bandwidth: BytesPerSec,
    /// One-way latency added per traversal, seconds.
    pub latency: Secs,
}

/// Where a site hangs off the tree, plus its optional QoS bound.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Attachment {
    /// The node the site's repository traffic enters the tree at.
    pub node: NodeId,
    /// Optional per-request QoS bound: the maximum remote-stream overhead
    /// (connection setup plus accumulated path latency) an assignment may
    /// impose on this site. `None` leaves the site unconstrained.
    pub qos: Option<Secs>,
}

/// The effective remote channel a serving ancestor offers a site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingChannel {
    /// Effective transfer rate: the site's estimated repository rate
    /// capped by the narrowest link on the path.
    pub rate: BytesPerSec,
    /// Effective overhead: the site's repository connection overhead plus
    /// the accumulated path latency.
    pub ovhd: Secs,
    /// Links traversed (0 when served from the attach node itself).
    pub hops: usize,
}

/// A validated repository tree.
///
/// Build one with [`Topology::new`] (full validation) and attach it to a
/// system via [`crate::SystemBuilder::topology`]. Field access is
/// read-only; the validated invariants (single root, acyclic parents,
/// valid links) hold for the lifetime of the value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: IdVec<NodeId, RepoNode>,
    /// `parents[n]` is `None` exactly for the root.
    parents: IdVec<NodeId, Option<(NodeId, Link)>>,
    /// One attachment per site, in site-id order.
    attachments: IdVec<SiteId, Attachment>,
    /// The unique parentless node.
    root: NodeId,
}

impl Topology {
    /// Validates and assembles a tree.
    ///
    /// Rejects: empty node sets, zero or multiple roots, circular parent
    /// chains, out-of-range parent ids (reported as a cycle-free orphan
    /// via [`ModelError::UnknownAttachNode`]-style bounds checks),
    /// non-positive or non-finite link bandwidths, invalid latencies and
    /// attachments to unknown nodes. QoS feasibility is checked later, at
    /// [`crate::SystemBuilder::build`] time, because it needs the sites'
    /// own overheads.
    pub fn new(
        nodes: IdVec<NodeId, RepoNode>,
        parents: IdVec<NodeId, Option<(NodeId, Link)>>,
        attachments: IdVec<SiteId, Attachment>,
    ) -> Result<Topology, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyTopology);
        }
        if parents.len() != nodes.len() {
            // A malformed parent table cannot name its nodes; report the
            // structural mismatch through the closest typed error.
            return Err(ModelError::AttachmentSizeMismatch {
                n_sites: nodes.len(),
                n_attachments: parents.len(),
            });
        }

        let mut root = None;
        for (n, parent) in parents.iter() {
            match parent {
                None => match root {
                    None => root = Some(n),
                    Some(_) => return Err(ModelError::TopologyOrphanNode { node: n }),
                },
                Some((p, link)) => {
                    if nodes.get(*p).is_none() {
                        return Err(ModelError::UnknownAttachNode {
                            site: SiteId::new(u32::MAX),
                            node: *p,
                        });
                    }
                    if !link.bandwidth.is_valid() {
                        return Err(ModelError::InvalidLinkBandwidth { node: n });
                    }
                    if !link.latency.is_valid() {
                        return Err(ModelError::InvalidLinkLatency { node: n });
                    }
                }
            }
        }
        let Some(root) = root else {
            return Err(ModelError::TopologyNoRoot);
        };

        // Cycle check: every parent chain must reach the root within
        // n_nodes steps.
        for n in nodes.ids() {
            let mut cur = n;
            let mut steps = 0;
            while let Some((p, _)) = parents[cur] {
                cur = p;
                steps += 1;
                if steps > nodes.len() {
                    return Err(ModelError::TopologyCycle { node: n });
                }
            }
            debug_assert_eq!(cur, root, "acyclic parent chains end at the root");
        }

        for (site, att) in attachments.iter() {
            if nodes.get(att.node).is_none() {
                return Err(ModelError::UnknownAttachNode {
                    site,
                    node: att.node,
                });
            }
        }

        Ok(Topology {
            nodes,
            parents,
            attachments,
            root,
        })
    }

    /// The degenerate one-node tree: every site attaches to the single
    /// root, no QoS bounds — semantically the paper's star.
    pub fn single_node(n_sites: usize, capacity: ReqPerSec) -> Topology {
        let nodes = IdVec::from_vec(vec![RepoNode { capacity }]);
        let parents = IdVec::from_vec(vec![None]);
        let attachments = IdVec::from_vec(
            (0..n_sites)
                .map(|_| Attachment {
                    node: NodeId::new(0),
                    qos: None,
                })
                .collect(),
        );
        Topology::new(nodes, parents, attachments).expect("one-node tree is always valid")
    }

    /// Number of repository nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The root (origin) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node table.
    pub fn nodes(&self) -> &IdVec<NodeId, RepoNode> {
        &self.nodes
    }

    /// One node's parameters.
    pub fn node(&self, n: NodeId) -> &RepoNode {
        &self.nodes[n]
    }

    /// The parent of `n` and the connecting link, `None` for the root.
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, Link)> {
        self.parents[n]
    }

    /// One site's attachment.
    pub fn attachment(&self, site: SiteId) -> &Attachment {
        &self.attachments[site]
    }

    /// Per-site attachments, in site-id order.
    pub fn attachments(&self) -> &IdVec<SiteId, Attachment> {
        &self.attachments
    }

    /// Number of links between `n` and the root.
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some((p, _)) = self.parents[cur] {
            cur = p;
            d += 1;
        }
        d
    }

    /// `n` and its ancestors, from `n` itself up to the root (inclusive).
    pub fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = vec![n];
        let mut cur = n;
        while let Some((p, _)) = self.parents[cur] {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Accumulated path constraint from `from` up to `ancestor`:
    /// `(bottleneck bandwidth, total latency, hops)`. Returns `None` when
    /// `ancestor` is not on `from`'s root chain. Zero hops yield no
    /// bandwidth cap and zero latency.
    pub fn path(
        &self,
        from: NodeId,
        ancestor: NodeId,
    ) -> Option<(Option<BytesPerSec>, Secs, usize)> {
        let mut bottleneck: Option<BytesPerSec> = None;
        let mut latency = Secs::ZERO;
        let mut hops = 0;
        let mut cur = from;
        loop {
            if cur == ancestor {
                return Some((bottleneck, latency, hops));
            }
            let (p, link) = self.parents[cur]?;
            bottleneck = Some(match bottleneck {
                None => link.bandwidth,
                Some(b) => BytesPerSec(b.get().min(link.bandwidth.get())),
            });
            latency += link.latency;
            hops += 1;
            cur = p;
        }
    }

    /// The effective remote channel ancestor `node` offers a site whose
    /// raw estimates are `repo_rate`/`repo_ovhd` and whose attach point is
    /// `attach`. Returns `None` when `node` is not an ancestor of
    /// `attach`.
    ///
    /// With zero hops the channel is the raw `(repo_rate, repo_ovhd)` pair
    /// **bit for bit** — the star-degeneracy guarantee the planner's
    /// property tests rely on.
    pub fn channel(
        &self,
        attach: NodeId,
        node: NodeId,
        repo_rate: BytesPerSec,
        repo_ovhd: Secs,
    ) -> Option<ServingChannel> {
        let (bottleneck, latency, hops) = self.path(attach, node)?;
        Some(match bottleneck {
            None => ServingChannel {
                rate: repo_rate,
                ovhd: repo_ovhd,
                hops,
            },
            Some(b) => ServingChannel {
                rate: BytesPerSec(repo_rate.get().min(b.get())),
                ovhd: repo_ovhd + latency,
                hops,
            },
        })
    }

    /// Returns a copy with every node capacity transformed by `f` —
    /// the tree-topology analogue of the capacity-fraction sweeps.
    pub fn map_node_capacities(
        &self,
        mut f: impl FnMut(NodeId, ReqPerSec) -> ReqPerSec,
    ) -> Topology {
        let mut t = self.clone();
        for (n, node) in t.nodes.iter_mut() {
            node.capacity = f(n, node.capacity);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(bw_kibps: f64, latency: f64) -> Link {
        Link {
            bandwidth: BytesPerSec::kib_per_sec(bw_kibps),
            latency: Secs(latency),
        }
    }

    fn attach(node: u32) -> Attachment {
        Attachment {
            node: NodeId::new(node),
            qos: None,
        }
    }

    /// origin N0 ← regional N1 ← edge N2, plus edge N3 under N1.
    fn three_level() -> Topology {
        let nodes = IdVec::from_vec(vec![RepoNode::default(); 4]);
        let parents = IdVec::from_vec(vec![
            None,
            Some((NodeId::new(0), link(5.0, 0.2))),
            Some((NodeId::new(1), link(2.0, 0.1))),
            Some((NodeId::new(1), link(3.0, 0.3))),
        ]);
        let attachments = IdVec::from_vec(vec![attach(2), attach(3)]);
        Topology::new(nodes, parents, attachments).unwrap()
    }

    #[test]
    fn three_level_tree_validates() {
        let t = three_level();
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.root(), NodeId::new(0));
        assert_eq!(t.depth(NodeId::new(0)), 0);
        assert_eq!(t.depth(NodeId::new(2)), 2);
        assert_eq!(
            t.ancestors(NodeId::new(2)),
            vec![NodeId::new(2), NodeId::new(1), NodeId::new(0)]
        );
    }

    #[test]
    fn path_accumulates_bottleneck_and_latency() {
        let t = three_level();
        // N2 → N0: links 2 KiB/s @0.1s then 5 KiB/s @0.2s.
        let (bw, lat, hops) = t.path(NodeId::new(2), NodeId::new(0)).unwrap();
        assert_eq!(bw, Some(BytesPerSec::kib_per_sec(2.0)));
        assert!((lat.get() - 0.3).abs() < 1e-12);
        assert_eq!(hops, 2);
        // Not-an-ancestor: N3 is a sibling of N2.
        assert!(t.path(NodeId::new(2), NodeId::new(3)).is_none());
        // Zero-hop path.
        assert_eq!(
            t.path(NodeId::new(2), NodeId::new(2)).unwrap(),
            (None, Secs::ZERO, 0)
        );
    }

    #[test]
    fn zero_hop_channel_is_bit_identical_to_raw() {
        let t = three_level();
        let rate = BytesPerSec(1234.567);
        let ovhd = Secs(2.125);
        let c = t
            .channel(NodeId::new(2), NodeId::new(2), rate, ovhd)
            .unwrap();
        assert_eq!(c.rate.get().to_bits(), rate.get().to_bits());
        assert_eq!(c.ovhd.get().to_bits(), ovhd.get().to_bits());
        assert_eq!(c.hops, 0);
    }

    #[test]
    fn deep_channel_caps_rate_and_adds_latency() {
        let t = three_level();
        // Site rate 10 KiB/s is capped by the 2 KiB/s bottleneck.
        let c = t
            .channel(
                NodeId::new(2),
                NodeId::new(0),
                BytesPerSec::kib_per_sec(10.0),
                Secs(2.0),
            )
            .unwrap();
        assert_eq!(c.rate, BytesPerSec::kib_per_sec(2.0));
        assert!((c.ovhd.get() - 2.3).abs() < 1e-12);
        assert_eq!(c.hops, 2);
        // A site already slower than every link keeps its own rate.
        let c = t
            .channel(
                NodeId::new(2),
                NodeId::new(0),
                BytesPerSec::kib_per_sec(0.5),
                Secs(2.0),
            )
            .unwrap();
        assert_eq!(c.rate, BytesPerSec::kib_per_sec(0.5));
    }

    #[test]
    fn empty_topology_rejected() {
        let err = Topology::new(IdVec::new(), IdVec::new(), IdVec::new()).unwrap_err();
        assert_eq!(err, ModelError::EmptyTopology);
    }

    #[test]
    fn multiple_roots_rejected_as_orphan() {
        let nodes = IdVec::from_vec(vec![RepoNode::default(); 2]);
        let parents = IdVec::from_vec(vec![None, None]);
        let err = Topology::new(nodes, parents, IdVec::new()).unwrap_err();
        assert_eq!(
            err,
            ModelError::TopologyOrphanNode {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn cycle_rejected() {
        let nodes = IdVec::from_vec(vec![RepoNode::default(); 3]);
        // N0 is the root; N1 and N2 point at each other.
        let parents = IdVec::from_vec(vec![
            None,
            Some((NodeId::new(2), link(1.0, 0.1))),
            Some((NodeId::new(1), link(1.0, 0.1))),
        ]);
        let err = Topology::new(nodes, parents, IdVec::new()).unwrap_err();
        assert!(matches!(err, ModelError::TopologyCycle { .. }), "{err:?}");
    }

    #[test]
    fn all_parented_rejected_as_rootless() {
        let nodes = IdVec::from_vec(vec![RepoNode::default(); 2]);
        let parents = IdVec::from_vec(vec![
            Some((NodeId::new(1), link(1.0, 0.1))),
            Some((NodeId::new(0), link(1.0, 0.1))),
        ]);
        let err = Topology::new(nodes, parents, IdVec::new()).unwrap_err();
        assert_eq!(err, ModelError::TopologyNoRoot);
    }

    #[test]
    fn zero_bandwidth_link_rejected() {
        let nodes = IdVec::from_vec(vec![RepoNode::default(); 2]);
        let parents = IdVec::from_vec(vec![
            None,
            Some((
                NodeId::new(0),
                Link {
                    bandwidth: BytesPerSec(0.0),
                    latency: Secs(0.1),
                },
            )),
        ]);
        let err = Topology::new(nodes, parents, IdVec::new()).unwrap_err();
        assert_eq!(
            err,
            ModelError::InvalidLinkBandwidth {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn negative_latency_rejected() {
        let nodes = IdVec::from_vec(vec![RepoNode::default(); 2]);
        let parents = IdVec::from_vec(vec![
            None,
            Some((
                NodeId::new(0),
                Link {
                    bandwidth: BytesPerSec(100.0),
                    latency: Secs(-0.1),
                },
            )),
        ]);
        let err = Topology::new(nodes, parents, IdVec::new()).unwrap_err();
        assert_eq!(
            err,
            ModelError::InvalidLinkLatency {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn unknown_attach_node_rejected() {
        let nodes = IdVec::from_vec(vec![RepoNode::default()]);
        let parents = IdVec::from_vec(vec![None]);
        let attachments = IdVec::from_vec(vec![attach(7)]);
        let err = Topology::new(nodes, parents, attachments).unwrap_err();
        assert_eq!(
            err,
            ModelError::UnknownAttachNode {
                site: SiteId::new(0),
                node: NodeId::new(7)
            }
        );
    }

    #[test]
    fn single_node_helper_is_valid_star() {
        let t = Topology::single_node(3, ReqPerSec::INFINITE);
        assert_eq!(t.n_nodes(), 1);
        for s in 0..3 {
            let a = t.attachment(SiteId::new(s));
            assert_eq!(a.node, t.root());
            assert_eq!(a.qos, None);
        }
    }

    #[test]
    fn map_node_capacities_transforms_every_node() {
        let t = three_level().map_node_capacities(|_, _| ReqPerSec(50.0));
        for (_, n) in t.nodes().iter() {
            assert_eq!(n.capacity, ReqPerSec(50.0));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let t = three_level();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
