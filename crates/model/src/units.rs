//! Dimension-bearing newtypes.
//!
//! The cost model mixes three physical dimensions — bytes, seconds and
//! bytes-per-second — plus the dimensionless "HTTP requests per second" used
//! by the processing-capacity constraints. Keeping them in distinct types
//! means `overhead + size / rate` type-checks while `overhead + size` does
//! not, which is exactly the bug class that made the paper's own Eq. 3/4
//! notation ambiguous (see crate docs).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A byte count (object or document size, storage capacity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// `n` kibibytes (1024 bytes). Table 1 sizes such as "1K-6K" use this.
    #[inline]
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes.
    #[inline]
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    #[inline]
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count as `u64`.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`, for rate arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction — storage bookkeeping never goes negative.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a fraction, rounding to nearest byte. Used for
    /// storage-capacity sweeps ("x% of full storage"). Exact for the
    /// identity fractions even beyond `f64`'s 2^53 integer range, and a
    /// fraction `<= 1` never produces more than the original bytes.
    #[inline]
    pub fn scale(self, frac: f64) -> Bytes {
        assert!(frac >= 0.0, "storage fraction must be non-negative");
        if frac == 0.0 {
            return Bytes::ZERO;
        }
        if frac == 1.0 {
            return self;
        }
        let scaled = Bytes((self.0 as f64 * frac).round() as u64);
        if frac <= 1.0 {
            Bytes(scaled.0.min(self.0))
        } else {
            scaled
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024 * 1024 {
            write!(f, "{:.2} MiB", b as f64 / (1024.0 * 1024.0))
        } else if b >= 1024 {
            write!(f, "{:.2} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl Div<BytesPerSec> for Bytes {
    type Output = Secs;
    /// Transfer time: `size / rate`.
    #[inline]
    fn div(self, rate: BytesPerSec) -> Secs {
        debug_assert!(rate.0 > 0.0, "transfer rate must be positive");
        Secs(self.0 as f64 / rate.0)
    }
}

/// A duration in seconds (latency, overhead, response time).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Secs(pub f64);

impl Secs {
    /// Zero seconds.
    pub const ZERO: Secs = Secs(0.0);

    /// Raw seconds value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The larger of two durations — Eq. 5's `max` of the parallel streams.
    #[inline]
    pub fn max(self, other: Secs) -> Secs {
        Secs(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Secs) -> Secs {
        Secs(self.0.min(other.0))
    }

    /// Whether this duration is finite and non-negative — a sanity check
    /// applied after perturbation.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Debug for Secs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}s", self.0)
    }
}

impl fmt::Display for Secs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}s", self.0)
    }
}

impl Add for Secs {
    type Output = Secs;
    #[inline]
    fn add(self, rhs: Secs) -> Secs {
        Secs(self.0 + rhs.0)
    }
}

impl AddAssign for Secs {
    #[inline]
    fn add_assign(&mut self, rhs: Secs) {
        self.0 += rhs.0;
    }
}

impl Sub for Secs {
    type Output = Secs;
    #[inline]
    fn sub(self, rhs: Secs) -> Secs {
        Secs(self.0 - rhs.0)
    }
}

impl SubAssign for Secs {
    #[inline]
    fn sub_assign(&mut self, rhs: Secs) {
        self.0 -= rhs.0;
    }
}

impl Neg for Secs {
    type Output = Secs;
    #[inline]
    fn neg(self) -> Secs {
        Secs(-self.0)
    }
}

impl Mul<f64> for Secs {
    type Output = Secs;
    #[inline]
    fn mul(self, rhs: f64) -> Secs {
        Secs(self.0 * rhs)
    }
}

impl Mul<Secs> for f64 {
    type Output = Secs;
    #[inline]
    fn mul(self, rhs: Secs) -> Secs {
        Secs(self * rhs.0)
    }
}

impl Div<f64> for Secs {
    type Output = Secs;
    #[inline]
    fn div(self, rhs: f64) -> Secs {
        Secs(self.0 / rhs)
    }
}

impl Sum for Secs {
    fn sum<I: Iterator<Item = Secs>>(iter: I) -> Secs {
        Secs(iter.map(|s| s.0).sum())
    }
}

/// A data transfer rate in bytes per second.
///
/// Table 1's "3 Kbytes/sec - 10 Kbytes/sec" local rates and
/// "0.3 - 2 Kbytes/sec" repository rates are constructed via
/// [`BytesPerSec::kib_per_sec`].
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BytesPerSec(pub f64);

impl BytesPerSec {
    /// `n` KiB per second.
    #[inline]
    pub fn kib_per_sec(n: f64) -> Self {
        BytesPerSec(n * 1024.0)
    }

    /// Raw bytes-per-second value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Scales the rate by `factor` (perturbation model, Section 5.1).
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        BytesPerSec(self.0 * factor)
    }

    /// Whether the rate is usable (finite and strictly positive).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl fmt::Debug for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} B/s", self.0)
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} KiB/s", self.0 / 1024.0)
    }
}

/// HTTP requests per second — page access frequencies `f(W_j)` and
/// processing capacities `C(S_i)`, `C(R)`.
///
/// Serialization note: capacities can legitimately be infinite (Table 1
/// sets the repository's to "Infinite"), and JSON has no `Infinity`
/// literal, so the serde impls encode infinity as the string `"inf"`.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ReqPerSec(pub f64);

impl Serialize for ReqPerSec {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        if self.0.is_infinite() && self.0 > 0.0 {
            s.serialize_str("inf")
        } else {
            s.serialize_f64(self.0)
        }
    }
}

impl<'de> Deserialize<'de> for ReqPerSec {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = ReqPerSec;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a number or the string \"inf\"")
            }
            fn visit_f64<E: serde::de::Error>(self, v: f64) -> Result<ReqPerSec, E> {
                Ok(ReqPerSec(v))
            }
            fn visit_u64<E: serde::de::Error>(self, v: u64) -> Result<ReqPerSec, E> {
                Ok(ReqPerSec(v as f64))
            }
            fn visit_i64<E: serde::de::Error>(self, v: i64) -> Result<ReqPerSec, E> {
                Ok(ReqPerSec(v as f64))
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<ReqPerSec, E> {
                match v {
                    "inf" => Ok(ReqPerSec::INFINITE),
                    _ => Err(E::custom(format!("unexpected rate string {v:?}"))),
                }
            }
            fn visit_unit<E: serde::de::Error>(self) -> Result<ReqPerSec, E> {
                // Tolerate `null` from encoders that map infinity there.
                Ok(ReqPerSec::INFINITE)
            }
        }
        d.deserialize_any(V)
    }
}

impl ReqPerSec {
    /// Zero requests per second.
    pub const ZERO: ReqPerSec = ReqPerSec(0.0);

    /// Unbounded capacity — Table 1 sets the repository's processing
    /// capacity to "Infinite".
    pub const INFINITE: ReqPerSec = ReqPerSec(f64::INFINITY);

    /// Raw value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Scales by `factor` (capacity sweeps).
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        ReqPerSec(self.0 * factor)
    }

    /// `max(self - rhs, 0)` — remaining headroom.
    #[inline]
    pub fn headroom(self, used: ReqPerSec) -> ReqPerSec {
        ReqPerSec((self.0 - used.0).max(0.0))
    }
}

impl fmt::Debug for ReqPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} req/s", self.0)
    }
}

impl fmt::Display for ReqPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} req/s", self.0)
    }
}

impl Add for ReqPerSec {
    type Output = ReqPerSec;
    #[inline]
    fn add(self, rhs: ReqPerSec) -> ReqPerSec {
        ReqPerSec(self.0 + rhs.0)
    }
}

impl AddAssign for ReqPerSec {
    #[inline]
    fn add_assign(&mut self, rhs: ReqPerSec) {
        self.0 += rhs.0;
    }
}

impl Sub for ReqPerSec {
    type Output = ReqPerSec;
    #[inline]
    fn sub(self, rhs: ReqPerSec) -> ReqPerSec {
        ReqPerSec(self.0 - rhs.0)
    }
}

impl Sum for ReqPerSec {
    fn sum<I: Iterator<Item = ReqPerSec>>(iter: I) -> ReqPerSec {
        ReqPerSec(iter.map(|r| r.0).sum())
    }
}

impl Mul<f64> for ReqPerSec {
    type Output = ReqPerSec;
    #[inline]
    fn mul(self, rhs: f64) -> ReqPerSec {
        ReqPerSec(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::kib(1).get(), 1024);
        assert_eq!(Bytes::mib(1).get(), 1024 * 1024);
        assert_eq!(Bytes::gib(1).get(), 1024 * 1024 * 1024);
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes(100);
        let b = Bytes(40);
        assert_eq!(a + b, Bytes(140));
        assert_eq!(a - b, Bytes(60));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(vec![a, b].into_iter().sum::<Bytes>(), Bytes(140));
    }

    #[test]
    fn bytes_scale_rounds() {
        assert_eq!(Bytes(1000).scale(0.5), Bytes(500));
        assert_eq!(Bytes(3).scale(0.5), Bytes(2)); // 1.5 rounds to 2
        assert_eq!(Bytes(1000).scale(0.0), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bytes_scale_rejects_negative() {
        let _ = Bytes(10).scale(-0.1);
    }

    #[test]
    fn transfer_time_is_size_over_rate() {
        let t = Bytes(2048) / BytesPerSec::kib_per_sec(1.0);
        assert!((t.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn secs_max_matches_eq5() {
        let local = Secs(3.5);
        let remote = Secs(7.25);
        assert_eq!(local.max(remote), remote);
        assert_eq!(remote.max(local), remote);
        assert_eq!(local.min(remote), local);
    }

    #[test]
    fn secs_arithmetic() {
        let mut t = Secs(1.0);
        t += Secs(0.5);
        assert_eq!(t, Secs(1.5));
        t -= Secs(0.25);
        assert_eq!(t, Secs(1.25));
        assert_eq!(t * 2.0, Secs(2.5));
        assert_eq!(2.0 * t, Secs(2.5));
        assert_eq!(t / 2.0, Secs(0.625));
        assert_eq!(-t, Secs(-1.25));
    }

    #[test]
    fn secs_validity() {
        assert!(Secs(0.0).is_valid());
        assert!(Secs(12.0).is_valid());
        assert!(!Secs(-1.0).is_valid());
        assert!(!Secs(f64::NAN).is_valid());
        assert!(!Secs(f64::INFINITY).is_valid());
    }

    #[test]
    fn rate_scale_and_validity() {
        let r = BytesPerSec::kib_per_sec(10.0);
        assert!((r.scale(0.5).get() - 5.0 * 1024.0).abs() < 1e-9);
        assert!(r.is_valid());
        assert!(!BytesPerSec(0.0).is_valid());
        assert!(!BytesPerSec(f64::NAN).is_valid());
    }

    #[test]
    fn req_per_sec_headroom_clamps_at_zero() {
        let cap = ReqPerSec(150.0);
        assert_eq!(cap.headroom(ReqPerSec(100.0)), ReqPerSec(50.0));
        assert_eq!(cap.headroom(ReqPerSec(200.0)), ReqPerSec::ZERO);
    }

    #[test]
    fn req_per_sec_infinite_capacity() {
        let cap = ReqPerSec::INFINITE;
        assert_eq!(cap.headroom(ReqPerSec(1e12)), ReqPerSec::INFINITE);
    }

    #[test]
    fn req_per_sec_serde_handles_infinity() {
        let json = serde_json::to_string(&ReqPerSec::INFINITE).unwrap();
        assert_eq!(json, "\"inf\"");
        let back: ReqPerSec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ReqPerSec::INFINITE);

        let json = serde_json::to_string(&ReqPerSec(150.0)).unwrap();
        let back: ReqPerSec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ReqPerSec(150.0));

        // Integer literals and nulls also deserialize.
        assert_eq!(
            serde_json::from_str::<ReqPerSec>("150").unwrap(),
            ReqPerSec(150.0)
        );
        assert_eq!(
            serde_json::from_str::<ReqPerSec>("null").unwrap(),
            ReqPerSec::INFINITE
        );
        assert!(serde_json::from_str::<ReqPerSec>("\"fast\"").is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bytes(512)), "512 B");
        assert_eq!(format!("{}", Bytes::kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", Bytes::mib(3)), "3.00 MiB");
        assert_eq!(format!("{}", Bytes::gib(2)), "2.00 GiB");
        assert_eq!(format!("{}", Secs(1.5)), "1.5000s");
        assert_eq!(format!("{}", BytesPerSec::kib_per_sec(3.0)), "3.00 KiB/s");
    }
}
