#![warn(missing_docs)]

//! # mmrepl-model
//!
//! Foundation types for the reproduction of *"Replicating the Contents of a
//! WWW Multimedia Repository to Minimize Download Time"* (Loukopoulos &
//! Ahmad, IPPS 2000).
//!
//! The paper models a company that operates `s` dispersed **local sites**
//! `S_1..S_s` and one central **multimedia repository** `R`. Each web page
//! `W_j` hosted at a local site embeds *compulsory* multimedia objects (MOs)
//! and may link to *optional* ones. Because a browser downloads the page's
//! HTML from the local server and can fetch embedded objects from the
//! repository **in parallel**, the page response time is the *maximum* of
//! the two pipelined streams (paper Eq. 5). The replication problem is to
//! choose, per page, which objects are served locally (the `X`/`X'`
//! allocation matrices) so as to minimize the frequency-weighted response
//! time subject to processing- and storage-capacity constraints
//! (Eq. 7-10).
//!
//! This crate provides:
//!
//! * [`ids`] — typed indices ([`SiteId`], [`PageId`], [`ObjectId`]) and the
//!   [`IdVec`] typed vector they index into;
//! * [`units`] — dimension-bearing newtypes ([`Bytes`], [`Secs`],
//!   [`BytesPerSec`]) so transfer-time arithmetic cannot mix units;
//! * [`entities`] — [`MediaObject`], [`WebPage`], [`Site`], [`Repository`]
//!   and the assembled [`System`];
//! * [`placement`] — the decision variables: per-page [`PagePartition`]
//!   rows of the `X`/`X'` matrices and the whole-system [`Placement`];
//! * [`matrix`] — an explicit [`BitMatrix`] form of the paper's `U`, `A`,
//!   `X`, `X'` matrices, used to cross-validate the list-based fast path;
//! * [`cost`] — the cost model, Eq. 3 through Eq. 7;
//! * [`constraints`] — the feasibility checks, Eq. 8 through Eq. 10;
//! * [`topology`] — the federated-tree extension ([`Topology`], [`NodeId`]):
//!   a validated hierarchy of repository nodes with per-link bandwidth and
//!   latency plus per-site QoS bounds, whose one-node degenerate case is
//!   exactly the paper's star.
//!
//! ## Unit convention
//!
//! The paper's Eq. 3/4 write `B(S_i) * Size(M_k)` while calling `B` a
//! "transfer rate"; dimensional analysis shows `B` is used as *seconds per
//! byte*. We store true rates (bytes/second) and compute transfer time as
//! `size / rate`, which is the same quantity with honest units. See
//! `DESIGN.md` §2.
//!
//! ## Example
//!
//! ```
//! use mmrepl_model::*;
//!
//! // One site, one page with two objects; the cost model prices the
//! // parallel streams.
//! let mut b = SystemBuilder::new();
//! let site = b.add_site(default_site());
//! let big = b.add_object(MediaObject::of_size(Bytes::mib(1)));
//! let small = b.add_object(MediaObject::of_size(Bytes::kib(64)));
//! let page = b.add_page(WebPage {
//!     site,
//!     html_size: Bytes::kib(8),
//!     freq: ReqPerSec(2.0),
//!     compulsory: vec![big, small],
//!     optional: vec![],
//!     opt_req_factor: 1.0,
//! });
//! let system = b.build().unwrap();
//!
//! let cm = CostModel::with_defaults(&system);
//! // Serve the big object locally, the small one from the repository.
//! let split = PagePartition {
//!     local_compulsory: vec![true, false],
//!     local_optional: vec![],
//! };
//! let response = cm.page_response(page, &split); // Eq. 5
//! assert!(response > Secs::ZERO);
//!
//! // Constraint checking over a whole placement (Eq. 8-10):
//! let placement = Placement::all_local(&system);
//! let report = ConstraintReport::check(&system, &placement);
//! assert!(report.is_feasible());
//! ```

pub mod constraints;
pub mod cost;
pub mod entities;
pub mod error;
pub mod ids;
pub mod matrix;
pub mod placement;
pub mod topology;
pub mod units;
pub mod updates;

pub use constraints::{ConstraintReport, Violation};
pub use cost::{CostModel, CostParams, PageCost};
pub use entities::{
    default_site, MediaObject, OptionalRef, Repository, Site, SizeClass, System, SystemBuilder,
    WebPage,
};
pub use error::ModelError;
pub use ids::{IdVec, NodeId, ObjectId, PageId, SiteId};
pub use matrix::BitMatrix;
pub use placement::{PagePartition, Placement, PlacementDiff, StoredSet};
pub use topology::{Attachment, Link, RepoNode, ServingChannel, Topology};
pub use units::{Bytes, BytesPerSec, ReqPerSec, Secs};
pub use updates::{replica_count, repo_update_load, site_update_load, UpdateAwareReport};
