//! Error type for model construction and validation.

use crate::ids::{ObjectId, PageId, SiteId};
use std::fmt;

/// Errors raised while assembling or validating a [`crate::System`] or a
/// [`crate::Placement`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A page references an object id that does not exist in the repository
    /// catalogue.
    UnknownObject {
        /// The offending page.
        page: PageId,
        /// The dangling object reference.
        object: ObjectId,
    },
    /// A page is assigned to a site id that does not exist.
    UnknownSite {
        /// The offending page.
        page: PageId,
        /// The dangling site reference.
        site: SiteId,
    },
    /// An object appears both as compulsory and optional for the same page,
    /// which the paper's `U`/`U'` definitions forbid (`U_jk = 1` forces
    /// `U'_jk = 0`).
    DuplicateReference {
        /// The offending page.
        page: PageId,
        /// The doubly-referenced object.
        object: ObjectId,
    },
    /// An optional-object request probability is outside `(0, 1]`.
    InvalidProbability {
        /// The offending page.
        page: PageId,
        /// The offending object.
        object: ObjectId,
        /// The rejected probability value.
        prob: f64,
    },
    /// A page has a non-finite or negative access frequency.
    InvalidFrequency {
        /// The offending page.
        page: PageId,
        /// The rejected frequency value.
        freq: f64,
    },
    /// A site has a non-positive transfer-rate estimate.
    InvalidRate {
        /// The offending site.
        site: SiteId,
        /// Human-readable description of which rate was invalid.
        which: &'static str,
    },
    /// A placement's partition vector lengths disagree with the page's
    /// object lists.
    PartitionShapeMismatch {
        /// The offending page.
        page: PageId,
        /// Expected (compulsory, optional) lengths.
        expected: (usize, usize),
        /// Actual (compulsory, optional) lengths.
        actual: (usize, usize),
    },
    /// The placement covers a different number of pages than the system.
    PlacementSizeMismatch {
        /// Pages in the system.
        system_pages: usize,
        /// Partitions in the placement.
        placement_pages: usize,
    },
    /// The system has no sites or no pages, which makes every experiment
    /// degenerate.
    EmptySystem,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownObject { page, object } => {
                write!(f, "page {page} references unknown object {object}")
            }
            ModelError::UnknownSite { page, site } => {
                write!(f, "page {page} is hosted on unknown site {site}")
            }
            ModelError::DuplicateReference { page, object } => write!(
                f,
                "page {page} lists object {object} as both compulsory and optional"
            ),
            ModelError::InvalidProbability { page, object, prob } => write!(
                f,
                "page {page} optional object {object} has probability {prob} outside (0, 1]"
            ),
            ModelError::InvalidFrequency { page, freq } => {
                write!(f, "page {page} has invalid access frequency {freq}")
            }
            ModelError::InvalidRate { site, which } => {
                write!(f, "site {site} has an invalid {which} transfer rate")
            }
            ModelError::PartitionShapeMismatch {
                page,
                expected,
                actual,
            } => write!(
                f,
                "partition for page {page} has shape {actual:?}, expected {expected:?}"
            ),
            ModelError::PlacementSizeMismatch {
                system_pages,
                placement_pages,
            } => write!(
                f,
                "placement covers {placement_pages} pages but the system has {system_pages}"
            ),
            ModelError::EmptySystem => write!(f, "system has no sites or no pages"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_ids() {
        let e = ModelError::UnknownObject {
            page: PageId::new(3),
            object: ObjectId::new(9),
        };
        assert_eq!(e.to_string(), "page W3 references unknown object M9");

        let e = ModelError::PartitionShapeMismatch {
            page: PageId::new(1),
            expected: (2, 0),
            actual: (3, 1),
        };
        assert!(e.to_string().contains("(3, 1)"));
        assert!(e.to_string().contains("(2, 0)"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }
}
