//! Error type for model construction and validation.

use crate::ids::{NodeId, ObjectId, PageId, SiteId};
use crate::units::Secs;
use std::fmt;

/// Errors raised while assembling or validating a [`crate::System`] or a
/// [`crate::Placement`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A page references an object id that does not exist in the repository
    /// catalogue.
    UnknownObject {
        /// The offending page.
        page: PageId,
        /// The dangling object reference.
        object: ObjectId,
    },
    /// A page is assigned to a site id that does not exist.
    UnknownSite {
        /// The offending page.
        page: PageId,
        /// The dangling site reference.
        site: SiteId,
    },
    /// An object appears both as compulsory and optional for the same page,
    /// which the paper's `U`/`U'` definitions forbid (`U_jk = 1` forces
    /// `U'_jk = 0`).
    DuplicateReference {
        /// The offending page.
        page: PageId,
        /// The doubly-referenced object.
        object: ObjectId,
    },
    /// An optional-object request probability is outside `(0, 1]`.
    InvalidProbability {
        /// The offending page.
        page: PageId,
        /// The offending object.
        object: ObjectId,
        /// The rejected probability value.
        prob: f64,
    },
    /// A page has a non-finite or negative access frequency.
    InvalidFrequency {
        /// The offending page.
        page: PageId,
        /// The rejected frequency value.
        freq: f64,
    },
    /// A site has a non-positive transfer-rate estimate.
    InvalidRate {
        /// The offending site.
        site: SiteId,
        /// Human-readable description of which rate was invalid.
        which: &'static str,
    },
    /// A placement's partition vector lengths disagree with the page's
    /// object lists.
    PartitionShapeMismatch {
        /// The offending page.
        page: PageId,
        /// Expected (compulsory, optional) lengths.
        expected: (usize, usize),
        /// Actual (compulsory, optional) lengths.
        actual: (usize, usize),
    },
    /// The placement covers a different number of pages than the system.
    PlacementSizeMismatch {
        /// Pages in the system.
        system_pages: usize,
        /// Partitions in the placement.
        placement_pages: usize,
    },
    /// The system has no sites or no pages, which makes every experiment
    /// degenerate.
    EmptySystem,
    /// A repository topology has no nodes at all.
    EmptyTopology,
    /// No topology node lacks a parent link: every parent chain is
    /// circular, so there is no root repository.
    TopologyNoRoot,
    /// More than one topology node lacks a parent link. A repository tree
    /// has exactly one root; additional parentless nodes are orphaned
    /// subtrees.
    TopologyOrphanNode {
        /// The second parentless node encountered (the first is taken as
        /// the root).
        node: NodeId,
    },
    /// Following parent links upward from `node` revisits a node instead
    /// of terminating at the root.
    TopologyCycle {
        /// A node on the circular parent chain.
        node: NodeId,
    },
    /// A parent link carries a zero, negative or non-finite bandwidth.
    InvalidLinkBandwidth {
        /// The child endpoint of the offending link.
        node: NodeId,
    },
    /// A parent link carries a negative or non-finite latency.
    InvalidLinkLatency {
        /// The child endpoint of the offending link.
        node: NodeId,
    },
    /// A site is attached to a topology node id that does not exist.
    UnknownAttachNode {
        /// The offending site.
        site: SiteId,
        /// The dangling node reference.
        node: NodeId,
    },
    /// The topology's site-attachment table covers a different number of
    /// sites than the system.
    AttachmentSizeMismatch {
        /// Sites in the system.
        n_sites: usize,
        /// Attachment rows in the topology.
        n_attachments: usize,
    },
    /// A site's QoS bound is tighter than the best remote overhead any
    /// serving ancestor could achieve, so no assignment can satisfy it.
    InfeasibleQos {
        /// The offending site.
        site: SiteId,
        /// The rejected QoS bound.
        qos: Secs,
        /// The best achievable remote overhead (serving from the attach
        /// node).
        best: Secs,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownObject { page, object } => {
                write!(f, "page {page} references unknown object {object}")
            }
            ModelError::UnknownSite { page, site } => {
                write!(f, "page {page} is hosted on unknown site {site}")
            }
            ModelError::DuplicateReference { page, object } => write!(
                f,
                "page {page} lists object {object} as both compulsory and optional"
            ),
            ModelError::InvalidProbability { page, object, prob } => write!(
                f,
                "page {page} optional object {object} has probability {prob} outside (0, 1]"
            ),
            ModelError::InvalidFrequency { page, freq } => {
                write!(f, "page {page} has invalid access frequency {freq}")
            }
            ModelError::InvalidRate { site, which } => {
                write!(f, "site {site} has an invalid {which} transfer rate")
            }
            ModelError::PartitionShapeMismatch {
                page,
                expected,
                actual,
            } => write!(
                f,
                "partition for page {page} has shape {actual:?}, expected {expected:?}"
            ),
            ModelError::PlacementSizeMismatch {
                system_pages,
                placement_pages,
            } => write!(
                f,
                "placement covers {placement_pages} pages but the system has {system_pages}"
            ),
            ModelError::EmptySystem => write!(f, "system has no sites or no pages"),
            ModelError::EmptyTopology => write!(f, "repository topology has no nodes"),
            ModelError::TopologyNoRoot => {
                write!(
                    f,
                    "repository topology has no root: every node has a parent"
                )
            }
            ModelError::TopologyOrphanNode { node } => write!(
                f,
                "topology node {node} has no parent but is not the root (orphaned subtree)"
            ),
            ModelError::TopologyCycle { node } => {
                write!(f, "parent chain from topology node {node} is circular")
            }
            ModelError::InvalidLinkBandwidth { node } => {
                write!(f, "link above node {node} has an invalid bandwidth")
            }
            ModelError::InvalidLinkLatency { node } => {
                write!(f, "link above node {node} has an invalid latency")
            }
            ModelError::UnknownAttachNode { site, node } => {
                write!(f, "site {site} is attached to unknown topology node {node}")
            }
            ModelError::AttachmentSizeMismatch {
                n_sites,
                n_attachments,
            } => write!(
                f,
                "topology attaches {n_attachments} sites but the system has {n_sites}"
            ),
            ModelError::InfeasibleQos { site, qos, best } => write!(
                f,
                "site {site} QoS bound {qos} is tighter than the best achievable \
                 remote overhead {best}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_ids() {
        let e = ModelError::UnknownObject {
            page: PageId::new(3),
            object: ObjectId::new(9),
        };
        assert_eq!(e.to_string(), "page W3 references unknown object M9");

        let e = ModelError::PartitionShapeMismatch {
            page: PageId::new(1),
            expected: (2, 0),
            actual: (3, 1),
        };
        assert!(e.to_string().contains("(3, 1)"));
        assert!(e.to_string().contains("(2, 0)"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }
}
