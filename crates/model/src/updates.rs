//! Update-propagation accounting — the read/write extension.
//!
//! The paper's model is read-only: objects never change, so a replica
//! costs only storage. Its related-work discussion (the ADR algorithm,
//! HTTP DRP) centres on exactly the cost it omits: **keeping replicas
//! fresh**. This module adds that cost in the paper's own currency, HTTP
//! requests per second:
//!
//! * every update to object `k` (rate `u_k`) triggers one push per
//!   storing site — `u_k · |sites storing k|` requests at the repository
//!   (Eq. 9 extension);
//! * each storing site absorbs the refresh — `Σ_{k stored} u_k` requests
//!   at the site (Eq. 8 extension).
//!
//! The planner can opt in (`PlannerConfig::include_update_load` in
//! `mmrepl-core`), which makes heavily-updated objects more expensive to
//! replicate; the `updates` experiment sweeps the update intensity and
//! shows replication gracefully receding toward the Remote policy.

use crate::entities::System;
use crate::ids::SiteId;
use crate::placement::Placement;
use crate::units::ReqPerSec;
use serde::{Deserialize, Serialize};

/// The refresh load arriving at `site`: `Σ_{k stored at site} u_k`.
pub fn site_update_load(system: &System, placement: &Placement, site: SiteId) -> ReqPerSec {
    let stored = placement.stored_set(system, site);
    ReqPerSec(stored.iter().map(|k| system.object(k).update_rate).sum())
}

/// The push load the repository bears: `Σ_k u_k · |sites storing k|`.
pub fn repo_update_load(system: &System, placement: &Placement) -> ReqPerSec {
    ReqPerSec(
        system
            .sites()
            .ids()
            .map(|s| site_update_load(system, placement, s).get())
            .sum(),
    )
}

/// Total replicas (site, object) pairs — how much refresh fan-out the
/// placement creates.
pub fn replica_count(system: &System, placement: &Placement) -> usize {
    system
        .sites()
        .ids()
        .map(|s| placement.stored_set(system, s).len())
        .sum()
}

/// Extended feasibility summary: the paper's Eq. 8/9 loads plus the
/// update-propagation loads, checked against the same capacities.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateAwareReport {
    /// Per-site read load (Eq. 8 LHS), raw site order.
    pub site_read: Vec<ReqPerSec>,
    /// Per-site refresh load, raw site order.
    pub site_update: Vec<ReqPerSec>,
    /// Repository read load (Eq. 9 LHS).
    pub repo_read: ReqPerSec,
    /// Repository push load.
    pub repo_update: ReqPerSec,
    /// Sites whose combined load exceeds `C(S_i)`.
    pub overloaded_sites: Vec<SiteId>,
    /// Whether the repository's combined load exceeds `C(R)`.
    pub repo_overloaded: bool,
}

impl UpdateAwareReport {
    /// Evaluates read + refresh load against the configured capacities.
    pub fn check(system: &System, placement: &Placement) -> Self {
        const EPS: f64 = 1e-9;
        let mut site_read = Vec::with_capacity(system.n_sites());
        let mut site_update = Vec::with_capacity(system.n_sites());
        let mut overloaded_sites = Vec::new();
        for site in system.sites().ids() {
            let read = placement.site_load(system, site);
            let upd = site_update_load(system, placement, site);
            if read.get() + upd.get() > system.site(site).capacity.get() * (1.0 + EPS) + EPS {
                overloaded_sites.push(site);
            }
            site_read.push(read);
            site_update.push(upd);
        }
        let repo_read = placement.repo_load(system);
        let repo_update = repo_update_load(system, placement);
        let repo_overloaded = repo_read.get() + repo_update.get()
            > system.repository().capacity.get() * (1.0 + EPS) + EPS;
        UpdateAwareReport {
            site_read,
            site_update,
            repo_read,
            repo_update,
            overloaded_sites,
            repo_overloaded,
        }
    }

    /// Whether every extended constraint holds.
    pub fn is_feasible(&self) -> bool {
        self.overloaded_sites.is_empty() && !self.repo_overloaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{default_site, MediaObject, SystemBuilder, WebPage};
    use crate::units::{Bytes, ReqPerSec as Rps};

    /// Two sites sharing one updated object plus one read-only object.
    fn fixture(update_rate: f64) -> System {
        let mut b = SystemBuilder::new();
        let s0 = b.add_site(default_site());
        let s1 = b.add_site(default_site());
        let hot = b.add_object(MediaObject::with_update_rate(Bytes::kib(100), update_rate));
        let cold = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        for &s in &[s0, s1] {
            b.add_page(WebPage {
                site: s,
                html_size: Bytes::kib(5),
                freq: Rps(1.0),
                compulsory: vec![hot, cold],
                optional: vec![],
                opt_req_factor: 1.0,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn read_only_objects_cost_nothing() {
        let sys = fixture(0.0);
        let placement = Placement::all_local(&sys);
        assert_eq!(repo_update_load(&sys, &placement), Rps(0.0));
        for s in sys.sites().ids() {
            assert_eq!(site_update_load(&sys, &placement, s), Rps(0.0));
        }
    }

    #[test]
    fn each_replica_charges_site_and_repo() {
        let sys = fixture(2.0);
        let placement = Placement::all_local(&sys);
        // Both sites store the hot object: each pays 2 req/s, repo 4.
        for s in sys.sites().ids() {
            assert!((site_update_load(&sys, &placement, s).get() - 2.0).abs() < 1e-12);
        }
        assert!((repo_update_load(&sys, &placement).get() - 4.0).abs() < 1e-12);
        assert_eq!(replica_count(&sys, &placement), 4); // 2 objects x 2 sites
    }

    #[test]
    fn all_remote_placement_has_no_update_cost() {
        let sys = fixture(5.0);
        let placement = Placement::all_remote(&sys);
        assert_eq!(repo_update_load(&sys, &placement), Rps(0.0));
        assert_eq!(replica_count(&sys, &placement), 0);
    }

    #[test]
    fn update_aware_report_flags_overload() {
        let mut sys = fixture(0.0);
        // Read-only: feasible.
        let placement = Placement::all_local(&sys);
        let r = UpdateAwareReport::check(&sys, &placement);
        assert!(r.is_feasible());

        // Massive update rate: the 150 req/s sites drown in refreshes.
        sys = fixture(1000.0);
        let placement = Placement::all_local(&sys);
        let r = UpdateAwareReport::check(&sys, &placement);
        assert!(!r.is_feasible());
        assert_eq!(r.overloaded_sites.len(), 2);
        assert!((r.site_update[0].get() - 1000.0).abs() < 1e-9);
        // The default repository is infinite, so it never overloads.
        assert!(!r.repo_overloaded);
    }

    #[test]
    fn with_update_rate_constructor_validates() {
        let m = MediaObject::with_update_rate(Bytes::kib(500), 0.5);
        assert_eq!(m.update_rate, 0.5);
        assert_eq!(m.size, Bytes::kib(500));
    }

    #[test]
    #[should_panic(expected = "invalid update rate")]
    fn negative_update_rate_rejected() {
        let _ = MediaObject::with_update_rate(Bytes::kib(10), -1.0);
    }
}
