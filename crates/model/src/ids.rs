//! Typed indices and the typed vector they index.
//!
//! The simulator routinely holds three parallel universes of indices —
//! sites, pages and multimedia objects — and mixing them up is the classic
//! off-by-one-universe bug. Each entity gets a zero-cost newtype over `u32`
//! and containers are wrapped in [`IdVec`] so that `pages[site_id]` is a
//! compile error rather than a silent misread.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::marker::PhantomData;

/// Internal helper: defines an id newtype over `u32`.
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the index as `usize` for slice addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Wraps a `usize` index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("id index exceeds u32::MAX"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a local site `S_i` (one web server plus its client
    /// population).
    SiteId,
    "S"
);
define_id!(
    /// Identifier of a web page `W_j`. A page is hosted by exactly one site;
    /// replicated pages are modelled as distinct pages, following Section 3
    /// of the paper.
    PageId,
    "W"
);
define_id!(
    /// Identifier of a multimedia object `M_k` stored in the central
    /// repository.
    ObjectId,
    "M"
);
define_id!(
    /// Identifier of a repository node in a federated tree topology
    /// (edge, regional or origin repository). The classic single-repository
    /// star has exactly one node, `N0`.
    NodeId,
    "N"
);

/// A vector indexable only by its own id type.
///
/// `IdVec<PageId, WebPage>` behaves like `Vec<WebPage>` but rejects indexing
/// with a `SiteId` at compile time. Iteration yields `(id, &value)` pairs so
/// that call sites never manufacture ids by hand.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IdVec<I, T> {
    items: Vec<T>,
    #[serde(skip)]
    _marker: PhantomData<fn(I) -> I>,
}

impl<I, T: fmt::Debug> fmt::Debug for IdVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<I, T> Default for IdVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I, T> IdVec<I, T> {
    /// Creates an empty `IdVec`.
    pub const fn new() -> Self {
        Self {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty `IdVec` with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Wraps an existing vector; index `i` becomes id `i`.
    pub fn from_vec(items: Vec<T>) -> Self {
        Self {
            items,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrows the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Consumes the wrapper, returning the raw vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<I, T> IdVec<I, T>
where
    I: Copy + Into<usize> + IdLike,
{
    /// Appends `value`, returning its freshly minted id.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(value);
        id
    }

    /// Returns the element for `id`, if in bounds.
    #[inline]
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.into())
    }

    /// Returns a mutable reference for `id`, if in bounds.
    #[inline]
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.into())
    }

    /// Iterates `(id, &value)` pairs in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates `(id, &mut value)` pairs in id order.
    pub fn iter_mut(&mut self) -> impl ExactSizeIterator<Item = (I, &mut T)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates all valid ids in order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = I> + Clone {
        (0..self.items.len()).map(I::from_index)
    }

    /// Iterates values without ids.
    pub fn values(&self) -> impl ExactSizeIterator<Item = &T> {
        self.items.iter()
    }
}

impl<I, T> std::ops::Index<I> for IdVec<I, T>
where
    I: Copy + Into<usize> + IdLike,
{
    type Output = T;

    #[inline]
    fn index(&self, id: I) -> &T {
        &self.items[id.into()]
    }
}

impl<I, T> std::ops::IndexMut<I> for IdVec<I, T>
where
    I: Copy + Into<usize> + IdLike,
{
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.into()]
    }
}

impl<I: IdLike, T> FromIterator<T> for IdVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

/// Trait unifying the id newtypes so [`IdVec`] can mint fresh ids.
pub trait IdLike {
    /// Builds the id from a raw `usize` index.
    fn from_index(idx: usize) -> Self;
}

impl IdLike for SiteId {
    #[inline]
    fn from_index(idx: usize) -> Self {
        SiteId::from_index(idx)
    }
}

impl IdLike for PageId {
    #[inline]
    fn from_index(idx: usize) -> Self {
        PageId::from_index(idx)
    }
}

impl IdLike for ObjectId {
    #[inline]
    fn from_index(idx: usize) -> Self {
        ObjectId::from_index(idx)
    }
}

impl IdLike for NodeId {
    #[inline]
    fn from_index(idx: usize) -> Self {
        NodeId::from_index(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id = PageId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(PageId::from_index(42), id);
        assert_eq!(format!("{id}"), "W42");
        assert_eq!(format!("{id:?}"), "W42");
    }

    #[test]
    fn id_ordering_follows_raw() {
        assert!(ObjectId::new(3) < ObjectId::new(7));
        assert_eq!(SiteId::new(5), SiteId::new(5));
    }

    #[test]
    fn idvec_push_mints_sequential_ids() {
        let mut v: IdVec<SiteId, &str> = IdVec::new();
        let a = v.push("alpha");
        let b = v.push("beta");
        assert_eq!(a, SiteId::new(0));
        assert_eq!(b, SiteId::new(1));
        assert_eq!(v[a], "alpha");
        assert_eq!(v[b], "beta");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn idvec_iter_yields_matching_ids() {
        let v: IdVec<ObjectId, u32> = IdVec::from_vec(vec![10, 20, 30]);
        let collected: Vec<(ObjectId, u32)> = v.iter().map(|(i, &x)| (i, x)).collect();
        assert_eq!(
            collected,
            vec![
                (ObjectId::new(0), 10),
                (ObjectId::new(1), 20),
                (ObjectId::new(2), 30)
            ]
        );
    }

    #[test]
    fn idvec_get_bounds() {
        let v: IdVec<PageId, u8> = IdVec::from_vec(vec![1]);
        assert_eq!(v.get(PageId::new(0)), Some(&1));
        assert_eq!(v.get(PageId::new(1)), None);
    }

    #[test]
    fn idvec_iter_mut_updates_in_place() {
        let mut v: IdVec<PageId, u32> = IdVec::from_vec(vec![1, 2]);
        for (_, x) in v.iter_mut() {
            *x *= 10;
        }
        assert_eq!(v.as_slice(), &[10, 20]);
    }

    #[test]
    fn idvec_serde_is_transparent() {
        let v: IdVec<PageId, u32> = IdVec::from_vec(vec![5, 6]);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "[5,6]");
        let back: IdVec<PageId, u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn idvec_index_panics_out_of_bounds() {
        let v: IdVec<SiteId, u8> = IdVec::new();
        let _ = v[SiteId::new(0)];
    }
}
