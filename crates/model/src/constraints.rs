//! Feasibility checks: the processing-capacity constraints Eq. 8 (local
//! sites) and Eq. 9 (repository), and the storage constraint Eq. 10.

use crate::entities::System;
use crate::ids::{IdVec, NodeId, SiteId};
use crate::placement::Placement;
use crate::units::{Bytes, ReqPerSec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single constraint violation found in a placement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// Eq. 8 — a site receives more HTTP requests/sec than it can process.
    SiteCapacity {
        /// The overloaded site.
        site: SiteId,
        /// Offered load (Eq. 8 LHS).
        load: ReqPerSec,
        /// `C(S_i)`.
        capacity: ReqPerSec,
    },
    /// Eq. 9 — the repository receives more requests/sec than `C(R)`.
    RepositoryCapacity {
        /// Offered load (Eq. 9 LHS).
        load: ReqPerSec,
        /// `C(R)`.
        capacity: ReqPerSec,
    },
    /// Eq. 10 — a site stores more bytes than `Size(S_i)`.
    SiteStorage {
        /// The over-full site.
        site: SiteId,
        /// Bytes used (Eq. 10 LHS).
        used: Bytes,
        /// `Size(S_i)`.
        capacity: Bytes,
    },
    /// Per-node Eq. 9 (federated-tree extension) — a repository node
    /// receives more requests/sec than its `C(N)` from the sites it
    /// serves.
    NodeCapacity {
        /// The overloaded repository node.
        node: NodeId,
        /// Offered load from the sites assigned to this node.
        load: ReqPerSec,
        /// `C(N)`.
        capacity: ReqPerSec,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SiteCapacity {
                site,
                load,
                capacity,
            } => write!(f, "site {site} load {load} exceeds capacity {capacity}"),
            Violation::RepositoryCapacity { load, capacity } => {
                write!(f, "repository load {load} exceeds capacity {capacity}")
            }
            Violation::SiteStorage {
                site,
                used,
                capacity,
            } => write!(f, "site {site} stores {used} exceeding {capacity}"),
            Violation::NodeCapacity {
                node,
                load,
                capacity,
            } => write!(
                f,
                "repository node {node} load {load} exceeds capacity {capacity}"
            ),
        }
    }
}

/// The result of checking a placement against Eq. 8-10.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConstraintReport {
    /// Per-site offered load (Eq. 8 LHS), indexed by raw site id.
    pub site_loads: Vec<ReqPerSec>,
    /// Per-site storage used (Eq. 10 LHS), indexed by raw site id.
    pub storage_used: Vec<Bytes>,
    /// Repository offered load (Eq. 9 LHS). Under a serving assignment
    /// this is still the *total* remote load, summed over all nodes.
    pub repo_load: ReqPerSec,
    /// Per-node offered load (per-node Eq. 9 LHS), indexed by raw node
    /// id. Empty for star systems checked without a serving assignment.
    #[serde(default)]
    pub node_loads: Vec<ReqPerSec>,
    /// Every violated constraint, in site order, storage before capacity.
    pub violations: Vec<Violation>,
}

impl ConstraintReport {
    /// Evaluates all three constraint families for `placement` against the
    /// single central repository (the paper's star model). With a tree
    /// topology and a serving assignment, use
    /// [`ConstraintReport::check_with_serving`] instead.
    pub fn check(system: &System, placement: &Placement) -> Self {
        Self::check_inner(system, placement, None)
    }

    /// Evaluates Eq. 8/10 plus the *per-node* Eq. 9: each repository
    /// node's capacity is checked against the remote load of exactly the
    /// sites assigned to it. The global [`Self::repo_load`] is still
    /// reported (as the sum over nodes) but the star's single
    /// repository-capacity check is replaced by the per-node checks.
    ///
    /// # Panics
    /// Panics if the system carries no topology or `serving` does not
    /// cover every site.
    pub fn check_with_serving(
        system: &System,
        placement: &Placement,
        serving: &IdVec<SiteId, NodeId>,
    ) -> Self {
        assert_eq!(
            serving.len(),
            system.n_sites(),
            "serving assignment must cover every site"
        );
        Self::check_inner(system, placement, Some(serving))
    }

    fn check_inner(
        system: &System,
        placement: &Placement,
        serving: Option<&IdVec<SiteId, NodeId>>,
    ) -> Self {
        // Floating-point slack: restoration algorithms drive loads to
        // exactly the capacity; a ulp of noise must not read as violation.
        const REL_EPS: f64 = 1e-9;

        let mut site_loads = Vec::with_capacity(system.n_sites());
        let mut storage_used = Vec::with_capacity(system.n_sites());
        let mut violations = Vec::new();

        for site in system.sites().ids() {
            let used = placement.storage_used(system, site);
            let cap = system.site(site).storage;
            storage_used.push(used);
            if used.get() as f64 > cap.get() as f64 * (1.0 + REL_EPS) {
                violations.push(Violation::SiteStorage {
                    site,
                    used,
                    capacity: cap,
                });
            }

            let load = placement.site_load(system, site);
            let ccap = system.site(site).capacity;
            site_loads.push(load);
            if load.get() > ccap.get() * (1.0 + REL_EPS) + REL_EPS {
                violations.push(Violation::SiteCapacity {
                    site,
                    load,
                    capacity: ccap,
                });
            }
        }

        let repo_load = placement.repo_load(system);
        let mut node_loads = Vec::new();
        match serving {
            None => {
                let rcap = system.repository().capacity;
                if repo_load.get() > rcap.get() * (1.0 + REL_EPS) + REL_EPS {
                    violations.push(Violation::RepositoryCapacity {
                        load: repo_load,
                        capacity: rcap,
                    });
                }
            }
            Some(serving) => {
                let topo = system
                    .topology()
                    .expect("serving assignment requires a tree topology");
                let mut loads = vec![0.0; topo.n_nodes()];
                for site in system.sites().ids() {
                    loads[serving[site].index()] += placement.repo_load_from(system, site).get();
                }
                for (idx, &load) in loads.iter().enumerate() {
                    let node = NodeId::from_index(idx);
                    let cap = topo.node(node).capacity;
                    node_loads.push(ReqPerSec(load));
                    if load > cap.get() * (1.0 + REL_EPS) + REL_EPS {
                        violations.push(Violation::NodeCapacity {
                            node,
                            load: ReqPerSec(load),
                            capacity: cap,
                        });
                    }
                }
            }
        }

        ConstraintReport {
            site_loads,
            storage_used,
            repo_load,
            node_loads,
            violations,
        }
    }

    /// Whether the placement satisfies every constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any *storage* constraint (Eq. 10) is violated.
    pub fn storage_violated(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::SiteStorage { .. }))
    }

    /// Whether any *site capacity* constraint (Eq. 8) is violated.
    pub fn site_capacity_violated(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::SiteCapacity { .. }))
    }

    /// Whether the repository capacity constraint (Eq. 9) is violated.
    pub fn repo_capacity_violated(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::RepositoryCapacity { .. }))
    }

    /// Whether any per-node capacity constraint (tree Eq. 9) is violated.
    pub fn node_capacity_violated(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::NodeCapacity { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{MediaObject, Site, SystemBuilder, WebPage};
    use crate::units::{BytesPerSec, Secs};

    fn constrained_site(storage: Bytes, capacity: ReqPerSec) -> Site {
        Site {
            storage,
            capacity,
            local_rate: BytesPerSec::kib_per_sec(10.0),
            repo_rate: BytesPerSec::kib_per_sec(1.0),
            local_ovhd: Secs(1.0),
            repo_ovhd: Secs(2.0),
        }
    }

    fn system_with(storage: Bytes, capacity: ReqPerSec, repo_cap: ReqPerSec) -> System {
        let mut b = SystemBuilder::new();
        let s = b.add_site(constrained_site(storage, capacity));
        let m0 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m1 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0, m1],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        b.repository_capacity(repo_cap);
        b.build().unwrap()
    }

    #[test]
    fn feasible_when_everything_fits() {
        let sys = system_with(Bytes::mib(10), ReqPerSec(100.0), ReqPerSec::INFINITE);
        let report = ConstraintReport::check(&sys, &Placement::all_local(&sys));
        assert!(report.is_feasible(), "{:?}", report.violations);
        assert_eq!(report.site_loads.len(), 1);
        assert!((report.site_loads[0].get() - 3.0).abs() < 1e-12);
        assert_eq!(report.storage_used[0], Bytes::kib(210));
        assert_eq!(report.repo_load, ReqPerSec(0.0));
    }

    #[test]
    fn storage_violation_detected() {
        let sys = system_with(Bytes::kib(150), ReqPerSec(100.0), ReqPerSec::INFINITE);
        let report = ConstraintReport::check(&sys, &Placement::all_local(&sys));
        assert!(!report.is_feasible());
        assert!(report.storage_violated());
        assert!(!report.site_capacity_violated());
        assert!(!report.repo_capacity_violated());
        assert!(matches!(
            report.violations[0],
            Violation::SiteStorage {
                used: Bytes(x),
                ..
            } if x == Bytes::kib(210).get()
        ));
    }

    #[test]
    fn site_capacity_violation_detected() {
        // All-local load = 1.0 * (1 + 2) = 3 req/s > 2.5 cap.
        let sys = system_with(Bytes::mib(10), ReqPerSec(2.5), ReqPerSec::INFINITE);
        let report = ConstraintReport::check(&sys, &Placement::all_local(&sys));
        assert!(report.site_capacity_violated());
        assert!(!report.storage_violated());
    }

    #[test]
    fn repo_capacity_violation_detected() {
        // All-remote repo load = 1.0 * 2 = 2 req/s > 1.5 cap.
        let sys = system_with(Bytes::mib(10), ReqPerSec(100.0), ReqPerSec(1.5));
        let report = ConstraintReport::check(&sys, &Placement::all_remote(&sys));
        assert!(report.repo_capacity_violated());
        assert!(!report.site_capacity_violated());
    }

    #[test]
    fn load_exactly_at_capacity_is_feasible() {
        // All-local load is exactly 3.0 req/s; capacity 3.0 must pass.
        let sys = system_with(Bytes::mib(10), ReqPerSec(3.0), ReqPerSec::INFINITE);
        let report = ConstraintReport::check(&sys, &Placement::all_local(&sys));
        assert!(report.is_feasible(), "{:?}", report.violations);
    }

    #[test]
    fn storage_exactly_at_capacity_is_feasible() {
        let sys = system_with(Bytes::kib(210), ReqPerSec(100.0), ReqPerSec::INFINITE);
        let report = ConstraintReport::check(&sys, &Placement::all_local(&sys));
        assert!(report.is_feasible(), "{:?}", report.violations);
    }

    #[test]
    fn violation_display_mentions_site() {
        let v = Violation::SiteStorage {
            site: SiteId::new(4),
            used: Bytes::kib(300),
            capacity: Bytes::kib(100),
        };
        let s = v.to_string();
        assert!(s.contains("S4"), "{s}");
    }

    #[test]
    fn per_node_check_localizes_the_overload() {
        use crate::topology::{Attachment, Link, RepoNode, Topology};
        use crate::units::BytesPerSec as Bps;

        // Two sites on separate edge nodes under one origin. Site 0's page
        // generates 2 req/s remote; site 1's generates 1 req/s.
        let mut b = SystemBuilder::new();
        let s0 = b.add_site(constrained_site(Bytes::mib(10), ReqPerSec(100.0)));
        let s1 = b.add_site(constrained_site(Bytes::mib(10), ReqPerSec(100.0)));
        let m0 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m1 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        b.add_page(WebPage {
            site: s0,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0, m1],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        b.add_page(WebPage {
            site: s1,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        let cap = |c: f64| RepoNode {
            capacity: ReqPerSec(c),
        };
        let link = Link {
            bandwidth: Bps::kib_per_sec(5.0),
            latency: Secs(0.1),
        };
        let nodes = IdVec::from_vec(vec![cap(100.0), cap(1.5), cap(100.0)]);
        let parents = IdVec::from_vec(vec![
            None,
            Some((NodeId::new(0), link)),
            Some((NodeId::new(0), link)),
        ]);
        let attachments = IdVec::from_vec(vec![
            Attachment {
                node: NodeId::new(1),
                qos: None,
            },
            Attachment {
                node: NodeId::new(2),
                qos: None,
            },
        ]);
        b.topology(Topology::new(nodes, parents, attachments).unwrap());
        let sys = b.build().unwrap();

        let serving: IdVec<SiteId, NodeId> = IdVec::from_vec(vec![NodeId::new(1), NodeId::new(2)]);
        let report =
            ConstraintReport::check_with_serving(&sys, &Placement::all_remote(&sys), &serving);
        // Node 1 gets 2 req/s > its 1.5 cap; node 2 gets 1 req/s, fine.
        assert!(report.node_capacity_violated());
        assert!(!report.repo_capacity_violated());
        assert_eq!(report.node_loads.len(), 3);
        assert!((report.node_loads[1].get() - 2.0).abs() < 1e-12);
        assert!((report.node_loads[2].get() - 1.0).abs() < 1e-12);
        assert!((report.repo_load.get() - 3.0).abs() < 1e-12);
        assert!(matches!(
            report.violations[0],
            Violation::NodeCapacity { node, .. } if node == NodeId::new(1)
        ));
        let shown = report.violations[0].to_string();
        assert!(shown.contains("N1"), "{shown}");

        // Re-serving everything from the (big) origin clears it.
        let root: IdVec<SiteId, NodeId> = IdVec::from_vec(vec![NodeId::new(0); 2]);
        let report =
            ConstraintReport::check_with_serving(&sys, &Placement::all_remote(&sys), &root);
        assert!(report.is_feasible(), "{:?}", report.violations);
    }

    #[test]
    fn all_remote_never_violates_storage() {
        let sys = system_with(Bytes(10 * 1024), ReqPerSec(100.0), ReqPerSec::INFINITE);
        // Storage holds only HTML (10 KiB) — exactly at capacity.
        let report = ConstraintReport::check(&sys, &Placement::all_remote(&sys));
        assert!(!report.storage_violated(), "{:?}", report.violations);
    }
}
