//! Dense (0,1) matrices — the paper's native formulation.
//!
//! Section 3 states the problem over five matrices: the compulsory
//! incidence `U` (n x m), the optional-probability matrix `U'` (n x m), the
//! page-allocation matrix `A` (s x n) and the decision matrices `X`, `X'`.
//! Production code paths use the compact per-page representation in
//! [`crate::placement`]; this module materializes the dense forms so tests
//! can verify that both views agree, and so small systems can be inspected
//! matrix-first exactly as the paper writes them.

use crate::entities::System;
use crate::ids::{ObjectId, PageId, SiteId};
use crate::placement::Placement;
use serde::{Deserialize, Serialize};

/// A dense bit matrix packed into 64-bit words, row-major.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn locate(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(r < self.rows && c < self.cols, "bit index out of range");
        (r * self.words_per_row + c / 64, 1u64 << (c % 64))
    }

    /// Reads bit `(r, c)`.
    ///
    /// # Panics
    /// Panics in debug builds if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, m) = self.locate(r, c);
        self.words[w] & m != 0
    }

    /// Sets bit `(r, c)` to `value`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, m) = self.locate(r, c);
        if value {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Number of set bits in row `r` (`Σ_k X_jk`-style sums).
    pub fn row_count(&self, r: usize) -> usize {
        let start = r * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of set bits in column `c`.
    pub fn col_count(&self, c: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, c)).count()
    }

    /// Total number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set-column indices of row `r` in ascending order.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        let start = r * self.words_per_row;
        let words = &self.words[start..start + self.words_per_row];
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Element-wise `self & !other` — e.g. `U_jk (1 - X_jk)`, the remote
    /// compulsory downloads.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn and_not(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shapes must match"
        );
        let mut out = self.clone();
        for (o, (&a, &b)) in out
            .words
            .iter_mut()
            .zip(self.words.iter().zip(&other.words))
        {
            *o = a & !b;
        }
        out
    }

    /// Whether `other` is a subset of `self` (every set bit of `other` is
    /// set in `self`) — the feasibility condition `X ⊆ U`.
    pub fn contains_all(&self, other: &BitMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(&a, &b)| b & !a == 0)
    }
}

/// The paper's matrices materialized from a [`System`] and optionally a
/// [`Placement`].
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixView {
    /// `U` — `n x m` compulsory incidence.
    pub u: BitMatrix,
    /// `U'` — `n x m` optional request probabilities (0 where compulsory).
    pub u_opt: Vec<Vec<(ObjectId, f64)>>,
    /// `A` — `s x n` page allocation.
    pub a: BitMatrix,
}

impl MatrixView {
    /// Builds `U`, `U'`, `A` from a system.
    pub fn of(system: &System) -> Self {
        let n = system.n_pages();
        let m = system.n_objects();
        let s = system.n_sites();
        let mut u = BitMatrix::zeros(n, m);
        let mut a = BitMatrix::zeros(s, n);
        let mut u_opt = vec![Vec::new(); n];
        for (pid, page) in system.pages().iter() {
            a.set(page.site.index(), pid.index(), true);
            for &k in &page.compulsory {
                u.set(pid.index(), k.index(), true);
            }
            for o in &page.optional {
                u_opt[pid.index()].push((o.object, o.prob));
            }
        }
        MatrixView { u, u_opt, a }
    }

    /// Materializes the `X` matrix (compulsory local downloads) from a
    /// placement.
    pub fn x_matrix(system: &System, placement: &Placement) -> BitMatrix {
        let mut x = BitMatrix::zeros(system.n_pages(), system.n_objects());
        for (pid, page) in system.pages().iter() {
            let part = placement.partition(pid);
            for (t, &k) in page.compulsory.iter().enumerate() {
                if part.local_compulsory[t] {
                    x.set(pid.index(), k.index(), true);
                }
            }
        }
        x
    }

    /// Materializes the `X'` matrix: `X` plus the locally-served optional
    /// objects.
    pub fn x_prime_matrix(system: &System, placement: &Placement) -> BitMatrix {
        let mut x = Self::x_matrix(system, placement);
        for (pid, page) in system.pages().iter() {
            let part = placement.partition(pid);
            for (t, o) in page.optional.iter().enumerate() {
                if part.local_optional[t] {
                    x.set(pid.index(), o.object.index(), true);
                }
            }
        }
        x
    }

    /// Checks the structural invariant `X ⊆ U` — a compulsory object can
    /// only be local where it is actually referenced.
    pub fn x_within_u(&self, x: &BitMatrix) -> bool {
        self.u.contains_all(x)
    }

    /// The hosting site of page `j` read from the `A` matrix.
    pub fn host_of(&self, page: PageId) -> Option<SiteId> {
        (0..self.a.rows())
            .find(|&i| self.a.get(i, page.index()))
            .map(SiteId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{default_site, MediaObject, OptionalRef, SystemBuilder, WebPage};
    use crate::units::{Bytes, ReqPerSec};

    #[test]
    fn zeros_and_set_get() {
        let mut m = BitMatrix::zeros(3, 130); // spans three words per row
        assert_eq!(m.count(), 0);
        m.set(0, 0, true);
        m.set(1, 64, true);
        m.set(2, 129, true);
        assert!(m.get(0, 0));
        assert!(m.get(1, 64));
        assert!(m.get(2, 129));
        assert!(!m.get(0, 1));
        assert_eq!(m.count(), 3);
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn row_and_col_counts() {
        let mut m = BitMatrix::zeros(2, 100);
        m.set(0, 3, true);
        m.set(0, 99, true);
        m.set(1, 3, true);
        assert_eq!(m.row_count(0), 2);
        assert_eq!(m.row_count(1), 1);
        assert_eq!(m.col_count(3), 2);
        assert_eq!(m.col_count(99), 1);
        assert_eq!(m.col_count(0), 0);
    }

    #[test]
    fn row_iter_ascending_across_words() {
        let mut m = BitMatrix::zeros(1, 200);
        for c in [5, 63, 64, 127, 128, 199] {
            m.set(0, c, true);
        }
        let cols: Vec<usize> = m.row_iter(0).collect();
        assert_eq!(cols, vec![5, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn and_not_is_elementwise() {
        let mut u = BitMatrix::zeros(1, 70);
        let mut x = BitMatrix::zeros(1, 70);
        u.set(0, 1, true);
        u.set(0, 65, true);
        x.set(0, 65, true);
        let remote = u.and_not(&x);
        assert!(remote.get(0, 1));
        assert!(!remote.get(0, 65));
        assert_eq!(remote.count(), 1);
    }

    #[test]
    fn contains_all_subset_logic() {
        let mut u = BitMatrix::zeros(2, 10);
        u.set(0, 1, true);
        u.set(1, 2, true);
        let mut x = BitMatrix::zeros(2, 10);
        x.set(0, 1, true);
        assert!(u.contains_all(&x));
        x.set(1, 3, true); // not in U
        assert!(!u.contains_all(&x));
        let wrong_shape = BitMatrix::zeros(2, 11);
        assert!(!u.contains_all(&wrong_shape));
    }

    #[test]
    #[should_panic(expected = "matrix shapes must match")]
    fn and_not_rejects_shape_mismatch() {
        let a = BitMatrix::zeros(1, 10);
        let b = BitMatrix::zeros(2, 10);
        let _ = a.and_not(&b);
    }

    fn sample_system() -> System {
        let mut b = SystemBuilder::new();
        let s0 = b.add_site(default_site());
        let s1 = b.add_site(default_site());
        let m0 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m1 = b.add_object(MediaObject::of_size(Bytes::kib(600)));
        b.add_page(WebPage {
            site: s0,
            html_size: Bytes::kib(2),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0],
            optional: vec![OptionalRef {
                object: m1,
                prob: 0.2,
            }],
            opt_req_factor: 1.0,
        });
        b.add_page(WebPage {
            site: s1,
            html_size: Bytes::kib(2),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0, m1],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn matrix_view_mirrors_system() {
        let sys = sample_system();
        let view = MatrixView::of(&sys);
        // U: page 0 needs m0; page 1 needs m0, m1.
        assert!(view.u.get(0, 0));
        assert!(!view.u.get(0, 1));
        assert!(view.u.get(1, 0));
        assert!(view.u.get(1, 1));
        // A: page 0 on site 0, page 1 on site 1.
        assert!(view.a.get(0, 0));
        assert!(view.a.get(1, 1));
        assert!(!view.a.get(0, 1));
        assert_eq!(view.host_of(PageId::new(0)), Some(SiteId::new(0)));
        assert_eq!(view.host_of(PageId::new(1)), Some(SiteId::new(1)));
        // U': page 0 has (m1, 0.2).
        assert_eq!(view.u_opt[0], vec![(ObjectId::new(1), 0.2)]);
        assert!(view.u_opt[1].is_empty());
    }

    #[test]
    fn x_matrices_track_placement() {
        let sys = sample_system();
        let view = MatrixView::of(&sys);

        let local = Placement::all_local(&sys);
        let x = MatrixView::x_matrix(&sys, &local);
        assert!(view.x_within_u(&x));
        assert_eq!(x.count(), 3); // all compulsory marks

        let xp = MatrixView::x_prime_matrix(&sys, &local);
        assert_eq!(xp.count(), 4); // plus the optional mark
        assert!(xp.get(0, 1));

        let remote = Placement::all_remote(&sys);
        assert_eq!(MatrixView::x_prime_matrix(&sys, &remote).count(), 0);
    }

    #[test]
    fn x_within_u_fails_for_foreign_bits() {
        let sys = sample_system();
        let view = MatrixView::of(&sys);
        let mut x = BitMatrix::zeros(sys.n_pages(), sys.n_objects());
        x.set(0, 1, true); // m1 is only *optional* for page 0, not in U
        assert!(!view.x_within_u(&x));
    }
}
