//! The modelled world: multimedia objects, web pages, local sites and the
//! central repository, assembled into a validated [`System`].
//!
//! Terminology follows Section 2/3 of the paper:
//!
//! * `M_k` — [`MediaObject`], a multimedia object held by the repository;
//! * `W_j` / `H_j` — [`WebPage`], one page and its (composite) HTML
//!   document, hosted by exactly one site (`A` matrix);
//! * `S_i` — [`Site`], a local web server with storage `Size(S_i)`,
//!   processing capacity `C(S_i)` and estimated rates/overheads;
//! * `R` — [`Repository`], with processing capacity `C(R)`.

use crate::error::ModelError;
use crate::ids::{IdVec, NodeId, ObjectId, PageId, SiteId};
use crate::topology::{ServingChannel, Topology};
use crate::units::{Bytes, BytesPerSec, ReqPerSec, Secs};
use serde::{Deserialize, Serialize};

/// Size class of an HTML document or multimedia object, used by the
/// Table 1 workload mix (small/medium/large bands).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Small band: 1-6 KiB HTML, 40-300 KiB MOs (gif images).
    Small,
    /// Medium band: 6-20 KiB HTML, 300-800 KiB MOs (audio).
    Medium,
    /// Large band: 20-50 KiB HTML, 800 KiB-4 MiB MOs (small video clips).
    Large,
}

/// A multimedia object `M_k` stored at the central repository.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MediaObject {
    /// `Size(M_k)` in bytes.
    pub size: Bytes,
    /// Workload size band the object was drawn from.
    pub class: SizeClass,
    /// Updates per second at the repository (the read/write extension;
    /// the paper's model is read-only, so this defaults to zero). Every
    /// replica of the object must be refreshed on each update, consuming
    /// one HTTP request at the repository and one at the storing site.
    #[serde(default)]
    pub update_rate: f64,
}

impl MediaObject {
    /// Creates a read-only object of the given size, classifying it by the
    /// Table 1 MO bands (< 300 KiB small, < 800 KiB medium, otherwise
    /// large).
    pub fn of_size(size: Bytes) -> Self {
        let class = if size < Bytes::kib(300) {
            SizeClass::Small
        } else if size < Bytes::kib(800) {
            SizeClass::Medium
        } else {
            SizeClass::Large
        };
        MediaObject {
            size,
            class,
            update_rate: 0.0,
        }
    }

    /// Same, with an update rate (updates/second).
    pub fn with_update_rate(size: Bytes, update_rate: f64) -> Self {
        assert!(
            update_rate >= 0.0 && update_rate.is_finite(),
            "invalid update rate {update_rate}"
        );
        MediaObject {
            update_rate,
            ..Self::of_size(size)
        }
    }
}

/// One optional-object reference in a page: the paper's `U'_jk` entry.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptionalRef {
    /// The referenced object.
    pub object: ObjectId,
    /// `U'_jk` — probability that a user who downloaded the page later
    /// requests this object. Must lie in `(0, 1]`.
    pub prob: f64,
}

/// A web page `W_j` together with its composite HTML document `H_j`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WebPage {
    /// Hosting site (`A_ij = 1`). A page belongs to exactly one site;
    /// replicated pages are modelled as distinct pages.
    pub site: SiteId,
    /// `Size(H_j)` — size of the composite HTML document.
    pub html_size: Bytes,
    /// `f(W_j)` — access frequency during peak hours, requests/second.
    pub freq: ReqPerSec,
    /// Compulsory objects (`U_jk = 1`), in document order.
    pub compulsory: Vec<ObjectId>,
    /// Optional objects (`U'_jk > 0`), in document order.
    pub optional: Vec<OptionalRef>,
    /// `f(W_j, M)` — multiplier applied to the probability-weighted
    /// optional download time in Eq. 6 and the optional terms of
    /// Eq. 8/9. With the Table 1 workload the per-object probabilities
    /// already capture "10% of users request 30% of the links", so this
    /// stays at `1.0` (per page view); it is exposed for model fidelity.
    pub opt_req_factor: f64,
}

impl WebPage {
    /// Number of compulsory objects.
    #[inline]
    pub fn n_compulsory(&self) -> usize {
        self.compulsory.len()
    }

    /// Number of optional objects.
    #[inline]
    pub fn n_optional(&self) -> usize {
        self.optional.len()
    }

    /// Expected number of optional-object requests per page view:
    /// `f(W_j, M) * Σ_k U'_jk`.
    pub fn expected_optional_requests(&self) -> f64 {
        self.opt_req_factor * self.optional.iter().map(|o| o.prob).sum::<f64>()
    }
}

/// A local site `S_i`: one web server plus its regional client population.
///
/// The rate/overhead fields are the *estimates* available when the
/// replication decision is made; the simulator perturbs them per request
/// (Section 5.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// `Size(S_i)` — storage capacity in bytes.
    pub storage: Bytes,
    /// `C(S_i)` — processing capacity in HTTP requests/second.
    pub capacity: ReqPerSec,
    /// `B(S_i)` — estimated average transfer rate from this server to its
    /// local clients during peak hours.
    pub local_rate: BytesPerSec,
    /// `B(R, S_i)` — estimated average transfer rate from the repository to
    /// clients in this site's region.
    pub repo_rate: BytesPerSec,
    /// `Ovhd(S_i)` — TCP setup plus request-processing latency for a
    /// request to this server.
    pub local_ovhd: Secs,
    /// `Ovhd(R, S_i)` — the same latency for a request from this region to
    /// the repository.
    pub repo_ovhd: Secs,
}

/// The central multimedia repository `R`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Repository {
    /// `C(R)` — processing capacity in HTTP requests/second. Table 1 sets
    /// this to infinite; Figure 3 constrains it.
    pub capacity: ReqPerSec,
}

impl Default for Repository {
    fn default() -> Self {
        Repository {
            capacity: ReqPerSec::INFINITE,
        }
    }
}

/// The assembled, validated system: every entity plus derived indices.
///
/// Construct through [`SystemBuilder`], which checks referential integrity
/// (no dangling ids, no object both compulsory and optional for one page,
/// probabilities in range) so that downstream code can index without
/// checking.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct System {
    sites: IdVec<SiteId, Site>,
    pages: IdVec<PageId, WebPage>,
    objects: IdVec<ObjectId, MediaObject>,
    repository: Repository,
    /// Optional federated repository tree. `None` is the paper's classic
    /// single-repository star (old system JSON deserializes unchanged).
    #[serde(default)]
    topology: Option<Topology>,
    /// Derived: pages hosted per site, in page-id order.
    pages_by_site: IdVec<SiteId, Vec<PageId>>,
}

impl System {
    /// All local sites.
    #[inline]
    pub fn sites(&self) -> &IdVec<SiteId, Site> {
        &self.sites
    }

    /// All pages.
    #[inline]
    pub fn pages(&self) -> &IdVec<PageId, WebPage> {
        &self.pages
    }

    /// The repository object catalogue.
    #[inline]
    pub fn objects(&self) -> &IdVec<ObjectId, MediaObject> {
        &self.objects
    }

    /// The central repository.
    #[inline]
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The federated repository tree, if one is attached. `None` means the
    /// classic single-repository star.
    #[inline]
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The effective remote channel ancestor `node` offers `site` (its raw
    /// repository rate/overhead constrained by the path from the attach
    /// node). `None` when the system has no topology or `node` is not an
    /// ancestor of the site's attach node.
    pub fn serving_channel(&self, site: SiteId, node: NodeId) -> Option<ServingChannel> {
        let topo = self.topology.as_ref()?;
        let s = &self.sites[site];
        topo.channel(topo.attachment(site).node, node, s.repo_rate, s.repo_ovhd)
    }

    /// Whether serving `site` from ancestor `node` satisfies the site's
    /// QoS bound (trivially true without a bound). `None` when `node`
    /// cannot serve the site at all.
    pub fn qos_allows(&self, site: SiteId, node: NodeId) -> Option<bool> {
        let topo = self.topology.as_ref()?;
        let channel = self.serving_channel(site, node)?;
        Some(match topo.attachment(site).qos {
            None => true,
            Some(qos) => channel.ovhd <= qos,
        })
    }

    /// Returns a copy carrying `topology` (validated against this system's
    /// sites: attachment count, attach-node existence, QoS feasibility).
    pub fn with_topology(&self, topology: Topology) -> Result<System, ModelError> {
        validate_topology_against_sites(&topology, &self.sites)?;
        let mut sys = self.clone();
        sys.topology = Some(topology);
        Ok(sys)
    }

    /// Returns a copy with the topology removed — back to the star.
    pub fn without_topology(&self) -> System {
        let mut sys = self.clone();
        sys.topology = None;
        sys
    }

    /// Pages hosted at `site`, in id order.
    #[inline]
    pub fn pages_of(&self, site: SiteId) -> &[PageId] {
        &self.pages_by_site[site]
    }

    /// The site hosting `page` (the `A` matrix lookup).
    #[inline]
    pub fn host_of(&self, page: PageId) -> SiteId {
        self.pages[page].site
    }

    /// Convenience accessors mirroring the paper's notation.
    #[inline]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id]
    }

    /// The page `W_j`.
    #[inline]
    pub fn page(&self, id: PageId) -> &WebPage {
        &self.pages[id]
    }

    /// The object `M_k`.
    #[inline]
    pub fn object(&self, id: ObjectId) -> &MediaObject {
        &self.objects[id]
    }

    /// `Size(M_k)`.
    #[inline]
    pub fn object_size(&self, id: ObjectId) -> Bytes {
        self.objects[id].size
    }

    /// Number of sites `s`.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of pages `n`.
    #[inline]
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of objects `m`.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }

    /// Total bytes of HTML hosted at `site` — the fixed part of Eq. 10's
    /// left-hand side.
    pub fn html_bytes_of(&self, site: SiteId) -> Bytes {
        self.pages_of(site)
            .iter()
            .map(|&p| self.pages[p].html_size)
            .sum()
    }

    /// The distinct objects referenced (compulsorily or optionally) by any
    /// page of `site`, in ascending id order.
    ///
    /// This is the object universe a site could possibly store; its total
    /// size defines "100% storage" in the Figure 1 sweep.
    pub fn objects_referenced_by(&self, site: SiteId) -> Vec<ObjectId> {
        let mut seen = vec![false; self.n_objects()];
        for &p in self.pages_of(site) {
            let page = &self.pages[p];
            for &k in &page.compulsory {
                seen[k.index()] = true;
            }
            for o in &page.optional {
                seen[o.object.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| ObjectId::from_index(i))
            .collect()
    }

    /// Total bytes of all objects referenced by `site` plus its HTML — the
    /// storage needed to hold *everything* locally (100% on the Figure 1
    /// axis).
    pub fn full_storage_demand(&self, site: SiteId) -> Bytes {
        let objs: Bytes = self
            .objects_referenced_by(site)
            .iter()
            .map(|&k| self.objects[k].size)
            .sum();
        objs + self.html_bytes_of(site)
    }

    /// The HTTP request rate `site` would face if every compulsory and
    /// optional object were served locally — the Eq. 8 left-hand side of
    /// the all-local placement. This defines "100% processing capacity" in
    /// the Figure 2/3 sweeps.
    pub fn full_local_load(&self, site: SiteId) -> ReqPerSec {
        let mut load = 0.0;
        for &p in self.pages_of(site) {
            let page = &self.pages[p];
            let opt: f64 = page.expected_optional_requests();
            load += page.freq.get() * (1.0 + page.n_compulsory() as f64 + opt);
        }
        ReqPerSec(load)
    }

    /// The repository request rate if *no* object were served locally —
    /// Eq. 9's left-hand side under the all-remote placement. This defines
    /// "100% central capacity" for the Figure 3 sweep.
    pub fn full_remote_load(&self) -> ReqPerSec {
        let mut load = 0.0;
        for page in self.pages.values() {
            let opt: f64 = page.expected_optional_requests();
            load += page.freq.get() * (page.n_compulsory() as f64 + opt);
        }
        ReqPerSec(load)
    }

    /// Returns a copy with every site's storage scaled to `frac` of its
    /// full demand ([`System::full_storage_demand`]). Used by the Figure 1
    /// sweep.
    pub fn with_storage_fraction(&self, frac: f64) -> System {
        let mut sys = self.clone();
        let demands: Vec<Bytes> = sys
            .sites
            .ids()
            .map(|s| self.full_storage_demand(s))
            .collect();
        for ((_, site), demand) in sys.sites.iter_mut().zip(demands) {
            site.storage = demand.scale(frac);
        }
        sys
    }

    /// Returns a copy with every site's processing capacity scaled to
    /// `frac` of its full-local load ([`System::full_local_load`]). Used by
    /// the Figure 2/3 sweeps.
    pub fn with_processing_fraction(&self, frac: f64) -> System {
        let mut sys = self.clone();
        let loads: Vec<ReqPerSec> = sys.sites.ids().map(|s| self.full_local_load(s)).collect();
        for ((_, site), load) in sys.sites.iter_mut().zip(loads) {
            site.capacity = load.scale(frac);
        }
        sys
    }

    /// Returns a copy with the repository capacity scaled to `frac` of the
    /// all-remote load ([`System::full_remote_load`]) — the loosest
    /// meaningful central constraint.
    pub fn with_central_fraction(&self, frac: f64) -> System {
        let mut sys = self.clone();
        sys.repository.capacity = self.full_remote_load().scale(frac);
        sys
    }

    /// Returns a copy with the repository capacity set to an absolute
    /// value. The Figure 3 sweep uses this to model "the repository can
    /// only serve X % of the requests" — X % of the repository load the
    /// current plan actually induces.
    pub fn with_repository_capacity(&self, capacity: ReqPerSec) -> System {
        let mut sys = self.clone();
        sys.repository.capacity = capacity;
        sys
    }

    /// Returns a copy with every page's access frequency rewritten by
    /// `f`. Used by the workload-drift extension ("breaking news" rotates
    /// which pages are hot); structure, sizes and capacities are
    /// untouched.
    pub fn map_frequencies(&self, mut f: impl FnMut(PageId, ReqPerSec) -> ReqPerSec) -> System {
        let mut sys = self.clone();
        for (pid, page) in sys.pages.iter_mut() {
            page.freq = f(pid, page.freq);
        }
        sys
    }

    /// Returns a copy with every site rewritten by `f` — used to model
    /// regional asymmetry (degraded links, bigger disks) on top of a
    /// generated workload. The page/object structure is untouched.
    pub fn map_sites(&self, mut f: impl FnMut(SiteId, &Site) -> Site) -> System {
        let mut sys = self.clone();
        for (sid, site) in sys.sites.iter_mut() {
            let new = f(sid, site);
            assert!(
                new.local_rate.is_valid() && new.repo_rate.is_valid(),
                "map_sites produced invalid rates for {sid}"
            );
            *site = new;
        }
        sys
    }

    /// Returns a copy with every object's update rate rewritten by `f`
    /// (read/write extension). Structure, sizes and placement-relevant
    /// state are untouched, so plans remain comparable across update
    /// intensities.
    pub fn map_update_rates(&self, mut f: impl FnMut(ObjectId, &MediaObject) -> f64) -> System {
        let mut sys = self.clone();
        for (oid, obj) in sys.objects.iter_mut() {
            let rate = f(oid, obj);
            assert!(
                rate >= 0.0 && rate.is_finite(),
                "invalid update rate {rate} for {oid}"
            );
            obj.update_rate = rate;
        }
        sys
    }

    /// Returns a copy with unbounded site storage, site capacity and
    /// repository capacity — the "no constraints imposed" configuration the
    /// paper normalizes against.
    pub fn unconstrained(&self) -> System {
        let mut sys = self.clone();
        for (_, site) in sys.sites.iter_mut() {
            site.storage = Bytes(u64::MAX / 4);
            site.capacity = ReqPerSec::INFINITE;
        }
        sys.repository.capacity = ReqPerSec::INFINITE;
        sys
    }
}

/// Validates a topology against a concrete site table: one attachment per
/// site, attach nodes in range, per-site QoS bounds achievable from at
/// least the attach node (which adds zero path latency, so the best
/// possible remote overhead is the site's own `repo_ovhd`).
fn validate_topology_against_sites(
    topology: &Topology,
    sites: &IdVec<SiteId, Site>,
) -> Result<(), ModelError> {
    if topology.attachments().len() != sites.len() {
        return Err(ModelError::AttachmentSizeMismatch {
            n_sites: sites.len(),
            n_attachments: topology.attachments().len(),
        });
    }
    for (sid, site) in sites.iter() {
        let att = topology.attachment(sid);
        if let Some(qos) = att.qos {
            if !qos.is_valid() || qos < site.repo_ovhd {
                return Err(ModelError::InfeasibleQos {
                    site: sid,
                    qos,
                    best: site.repo_ovhd,
                });
            }
        }
    }
    Ok(())
}

/// Incremental builder for [`System`] with full referential validation.
#[derive(Default, Clone, Debug)]
pub struct SystemBuilder {
    sites: IdVec<SiteId, Site>,
    pages: IdVec<PageId, WebPage>,
    objects: IdVec<ObjectId, MediaObject>,
    repository: Repository,
    topology: Option<Topology>,
}

impl SystemBuilder {
    /// Creates an empty builder with an unconstrained repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a site, returning its id.
    pub fn add_site(&mut self, site: Site) -> SiteId {
        self.sites.push(site)
    }

    /// Adds a multimedia object, returning its id.
    pub fn add_object(&mut self, object: MediaObject) -> ObjectId {
        self.objects.push(object)
    }

    /// Adds a page, returning its id. Validation happens at
    /// [`SystemBuilder::build`] time.
    pub fn add_page(&mut self, page: WebPage) -> PageId {
        self.pages.push(page)
    }

    /// Sets the repository's processing capacity.
    pub fn repository_capacity(&mut self, capacity: ReqPerSec) -> &mut Self {
        self.repository.capacity = capacity;
        self
    }

    /// Attaches a federated repository tree. Validation against the site
    /// table (attachment count, QoS feasibility) happens at
    /// [`SystemBuilder::build`] time.
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        self.topology = Some(topology);
        self
    }

    /// Number of objects added so far.
    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of sites added so far.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Validates the assembled entities and produces a [`System`].
    pub fn build(self) -> Result<System, ModelError> {
        if self.sites.is_empty() || self.pages.is_empty() {
            return Err(ModelError::EmptySystem);
        }
        for (sid, site) in self.sites.iter() {
            if !site.local_rate.is_valid() {
                return Err(ModelError::InvalidRate {
                    site: sid,
                    which: "local",
                });
            }
            if !site.repo_rate.is_valid() {
                return Err(ModelError::InvalidRate {
                    site: sid,
                    which: "repository",
                });
            }
        }
        if let Some(topology) = &self.topology {
            validate_topology_against_sites(topology, &self.sites)?;
        }
        let n_objects = self.objects.len();
        let mut pages_by_site: IdVec<SiteId, Vec<PageId>> =
            self.sites.ids().map(|_| Vec::new()).collect();
        let mut mark = vec![usize::MAX; n_objects];
        for (pid, page) in self.pages.iter() {
            if page.site.index() >= self.sites.len() {
                return Err(ModelError::UnknownSite {
                    page: pid,
                    site: page.site,
                });
            }
            if !page.freq.get().is_finite() || page.freq.get() < 0.0 {
                return Err(ModelError::InvalidFrequency {
                    page: pid,
                    freq: page.freq.get(),
                });
            }
            for &k in &page.compulsory {
                if k.index() >= n_objects {
                    return Err(ModelError::UnknownObject {
                        page: pid,
                        object: k,
                    });
                }
                if mark[k.index()] == pid.index() {
                    return Err(ModelError::DuplicateReference {
                        page: pid,
                        object: k,
                    });
                }
                mark[k.index()] = pid.index();
            }
            for o in &page.optional {
                if o.object.index() >= n_objects {
                    return Err(ModelError::UnknownObject {
                        page: pid,
                        object: o.object,
                    });
                }
                if mark[o.object.index()] == pid.index() {
                    return Err(ModelError::DuplicateReference {
                        page: pid,
                        object: o.object,
                    });
                }
                mark[o.object.index()] = pid.index();
                if !(o.prob > 0.0 && o.prob <= 1.0) {
                    return Err(ModelError::InvalidProbability {
                        page: pid,
                        object: o.object,
                        prob: o.prob,
                    });
                }
            }
            pages_by_site[page.site].push(pid);
        }
        Ok(System {
            sites: self.sites,
            pages: self.pages,
            objects: self.objects,
            repository: self.repository,
            topology: self.topology,
            pages_by_site,
        })
    }
}

/// A reasonable default site matching the Table 1 estimates: 150 req/s
/// capacity, 6.5 KiB/s local rate, 1.15 KiB/s repository rate, 1.525 s local
/// overhead, 2.225 s repository overhead, 2 GiB storage.
///
/// Exposed mostly for doctests, unit tests and the quickstart example; the
/// workload generator draws per-site values from the Table 1 ranges.
pub fn default_site() -> Site {
    Site {
        storage: Bytes::gib(2),
        capacity: ReqPerSec(150.0),
        local_rate: BytesPerSec::kib_per_sec(6.5),
        repo_rate: BytesPerSec::kib_per_sec(1.15),
        local_ovhd: Secs(1.525),
        repo_ovhd: Secs(2.225),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_system() -> System {
        let mut b = SystemBuilder::new();
        let s0 = b.add_site(default_site());
        let s1 = b.add_site(default_site());
        let m0 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m1 = b.add_object(MediaObject::of_size(Bytes::kib(500)));
        let m2 = b.add_object(MediaObject::of_size(Bytes::mib(2)));
        b.add_page(WebPage {
            site: s0,
            html_size: Bytes::kib(4),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0, m2],
            optional: vec![OptionalRef {
                object: m1,
                prob: 0.03,
            }],
            opt_req_factor: 1.0,
        });
        b.add_page(WebPage {
            site: s1,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(2.0),
            compulsory: vec![m1],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn media_object_classification_follows_table1_bands() {
        assert_eq!(MediaObject::of_size(Bytes::kib(40)).class, SizeClass::Small);
        assert_eq!(
            MediaObject::of_size(Bytes::kib(299)).class,
            SizeClass::Small
        );
        assert_eq!(
            MediaObject::of_size(Bytes::kib(300)).class,
            SizeClass::Medium
        );
        assert_eq!(
            MediaObject::of_size(Bytes::kib(799)).class,
            SizeClass::Medium
        );
        assert_eq!(
            MediaObject::of_size(Bytes::kib(800)).class,
            SizeClass::Large
        );
        assert_eq!(MediaObject::of_size(Bytes::mib(4)).class, SizeClass::Large);
    }

    #[test]
    fn build_populates_pages_by_site() {
        let sys = tiny_system();
        assert_eq!(sys.pages_of(SiteId::new(0)), &[PageId::new(0)]);
        assert_eq!(sys.pages_of(SiteId::new(1)), &[PageId::new(1)]);
        assert_eq!(sys.host_of(PageId::new(1)), SiteId::new(1));
    }

    #[test]
    fn objects_referenced_includes_optional() {
        let sys = tiny_system();
        let refs = sys.objects_referenced_by(SiteId::new(0));
        assert_eq!(
            refs,
            vec![ObjectId::new(0), ObjectId::new(1), ObjectId::new(2)]
        );
        let refs1 = sys.objects_referenced_by(SiteId::new(1));
        assert_eq!(refs1, vec![ObjectId::new(1)]);
    }

    #[test]
    fn full_storage_demand_sums_objects_and_html() {
        let sys = tiny_system();
        let expected = Bytes::kib(100) + Bytes::kib(500) + Bytes::mib(2) + Bytes::kib(4);
        assert_eq!(sys.full_storage_demand(SiteId::new(0)), expected);
    }

    #[test]
    fn full_local_load_counts_html_compulsory_and_expected_optionals() {
        let sys = tiny_system();
        // Page 0: freq 1.0 * (1 html + 2 compulsory + 0.03 optional) = 3.03
        let load = sys.full_local_load(SiteId::new(0));
        assert!((load.get() - 3.03).abs() < 1e-12);
        // Page 1: freq 2.0 * (1 + 1 + 0) = 4.0
        let load1 = sys.full_local_load(SiteId::new(1));
        assert!((load1.get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn full_remote_load_excludes_html() {
        let sys = tiny_system();
        // Page 0: 1.0 * (2 + 0.03); page 1: 2.0 * 1 => 4.03
        assert!((sys.full_remote_load().get() - 4.03).abs() < 1e-12);
    }

    #[test]
    fn storage_fraction_scales_each_site() {
        let sys = tiny_system();
        let half = sys.with_storage_fraction(0.5);
        let full0 = sys.full_storage_demand(SiteId::new(0));
        assert_eq!(half.site(SiteId::new(0)).storage, full0.scale(0.5));
    }

    #[test]
    fn processing_fraction_scales_to_full_local_load() {
        let sys = tiny_system();
        let sixty = sys.with_processing_fraction(0.6);
        assert!((sixty.site(SiteId::new(0)).capacity.get() - 3.03 * 0.6).abs() < 1e-9);
    }

    #[test]
    fn central_fraction_scales_remote_load() {
        let sys = tiny_system();
        let r90 = sys.with_central_fraction(0.9);
        assert!((r90.repository().capacity.get() - 4.03 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_relaxes_everything() {
        let sys = tiny_system().with_storage_fraction(0.1);
        let un = sys.unconstrained();
        assert_eq!(un.repository().capacity, ReqPerSec::INFINITE);
        for (_, s) in un.sites().iter() {
            assert_eq!(s.capacity, ReqPerSec::INFINITE);
            assert!(s.storage.get() > Bytes::gib(1000).get());
        }
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            SystemBuilder::new().build().unwrap_err(),
            ModelError::EmptySystem
        );
    }

    #[test]
    fn build_rejects_unknown_object() {
        let mut b = SystemBuilder::new();
        let s = b.add_site(default_site());
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(1),
            freq: ReqPerSec(1.0),
            compulsory: vec![ObjectId::new(7)],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::UnknownObject { .. }
        ));
    }

    #[test]
    fn build_rejects_unknown_site() {
        let mut b = SystemBuilder::new();
        let _ = b.add_site(default_site());
        let m = b.add_object(MediaObject::of_size(Bytes::kib(50)));
        b.add_page(WebPage {
            site: SiteId::new(9),
            html_size: Bytes::kib(1),
            freq: ReqPerSec(1.0),
            compulsory: vec![m],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::UnknownSite { .. }
        ));
    }

    #[test]
    fn build_rejects_object_both_compulsory_and_optional() {
        let mut b = SystemBuilder::new();
        let s = b.add_site(default_site());
        let m = b.add_object(MediaObject::of_size(Bytes::kib(50)));
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(1),
            freq: ReqPerSec(1.0),
            compulsory: vec![m],
            optional: vec![OptionalRef {
                object: m,
                prob: 0.5,
            }],
            opt_req_factor: 1.0,
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::DuplicateReference { .. }
        ));
    }

    #[test]
    fn build_rejects_bad_probability() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let mut b = SystemBuilder::new();
            let s = b.add_site(default_site());
            let m = b.add_object(MediaObject::of_size(Bytes::kib(50)));
            b.add_page(WebPage {
                site: s,
                html_size: Bytes::kib(1),
                freq: ReqPerSec(1.0),
                compulsory: vec![],
                optional: vec![OptionalRef {
                    object: m,
                    prob: bad,
                }],
                opt_req_factor: 1.0,
            });
            assert!(
                matches!(
                    b.build().unwrap_err(),
                    ModelError::InvalidProbability { .. }
                ),
                "probability {bad} should be rejected"
            );
        }
    }

    #[test]
    fn build_rejects_bad_frequency() {
        let mut b = SystemBuilder::new();
        let s = b.add_site(default_site());
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(1),
            freq: ReqPerSec(-1.0),
            compulsory: vec![],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::InvalidFrequency { .. }
        ));
    }

    #[test]
    fn build_rejects_bad_rate() {
        let mut b = SystemBuilder::new();
        let mut site = default_site();
        site.repo_rate = BytesPerSec(0.0);
        b.add_site(site);
        let m = b.add_object(MediaObject::of_size(Bytes::kib(50)));
        b.add_page(WebPage {
            site: SiteId::new(0),
            html_size: Bytes::kib(1),
            freq: ReqPerSec(1.0),
            compulsory: vec![m],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::InvalidRate { .. }
        ));
    }

    #[test]
    fn duplicate_compulsory_across_pages_is_fine() {
        // The same object may be compulsory for many different pages.
        let mut b = SystemBuilder::new();
        let s = b.add_site(default_site());
        let m = b.add_object(MediaObject::of_size(Bytes::kib(50)));
        for _ in 0..2 {
            b.add_page(WebPage {
                site: s,
                html_size: Bytes::kib(1),
                freq: ReqPerSec(1.0),
                compulsory: vec![m],
                optional: vec![],
                opt_req_factor: 1.0,
            });
        }
        assert!(b.build().is_ok());
    }

    #[test]
    fn system_serde_roundtrip() {
        let sys = tiny_system();
        let json = serde_json::to_string(&sys).unwrap();
        let back: System = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sys);
    }

    #[test]
    fn system_json_without_topology_field_still_loads() {
        // Pre-federation system JSON has no "topology" key at all.
        let sys = tiny_system();
        let json = serde_json::to_string(&sys).unwrap();
        assert!(json.contains("\"topology\":null,"));
        let legacy = json.replace("\"topology\":null,", "");
        let back: System = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, sys);
        assert!(back.topology().is_none());
    }

    #[test]
    fn with_topology_rejects_attachment_count_mismatch() {
        let sys = tiny_system(); // two sites
        let topo = Topology::single_node(1, ReqPerSec::INFINITE);
        assert_eq!(
            sys.with_topology(topo).unwrap_err(),
            ModelError::AttachmentSizeMismatch {
                n_sites: 2,
                n_attachments: 1
            }
        );
    }

    #[test]
    fn build_rejects_qos_tighter_than_attach_overhead() {
        use crate::topology::Attachment;

        let mut b = SystemBuilder::new();
        let s = b.add_site(default_site()); // repo_ovhd = 2.225 s
        let m = b.add_object(MediaObject::of_size(Bytes::kib(50)));
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(1),
            freq: ReqPerSec(1.0),
            compulsory: vec![m],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        let nodes = IdVec::from_vec(vec![crate::topology::RepoNode::default()]);
        let parents = IdVec::from_vec(vec![None]);
        let attachments = IdVec::from_vec(vec![Attachment {
            node: NodeId::new(0),
            qos: Some(Secs(1.0)), // < 2.225 best achievable
        }]);
        b.topology(Topology::new(nodes, parents, attachments).unwrap());
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::InfeasibleQos {
                site: SiteId::new(0),
                qos: Secs(1.0),
                best: Secs(2.225),
            }
        );
    }

    #[test]
    fn single_node_topology_serves_raw_channel() {
        let sys = tiny_system();
        let topo = Topology::single_node(sys.n_sites(), ReqPerSec::INFINITE);
        let sys = sys.with_topology(topo).unwrap();
        let s0 = SiteId::new(0);
        let c = sys.serving_channel(s0, NodeId::new(0)).unwrap();
        assert_eq!(
            c.rate.get().to_bits(),
            sys.site(s0).repo_rate.get().to_bits()
        );
        assert_eq!(
            c.ovhd.get().to_bits(),
            sys.site(s0).repo_ovhd.get().to_bits()
        );
        assert_eq!(c.hops, 0);
        assert_eq!(sys.qos_allows(s0, NodeId::new(0)), Some(true));
        // Copy-modifiers carry the topology along.
        assert!(sys.with_storage_fraction(0.5).topology().is_some());
        assert!(sys.without_topology().topology().is_none());
    }
}
