//! The cost model of Section 3: Eq. 3 (local stream time), Eq. 4 (remote
//! stream time), Eq. 5 (page response = max of the parallel streams),
//! Eq. 6 (optional-object time) and Eq. 7 (the weighted objective
//! `D = α1·D1 + α2·D2`).
//!
//! All times here are computed from the *estimated* rates and overheads
//! stored in [`Site`](crate::Site) — this is the planner's view. The
//! simulator in `mmrepl-sim` re-evaluates the same expressions with
//! per-request perturbed values to measure what users actually experience.
//!
//! ## A note on Eq. 4's constant term
//!
//! The paper initializes the remote stream with `Ovhd(R, S_i)` even when no
//! object ends up remote. For *evaluation* that would floor every
//! response time at the repository overhead although the client never
//! contacts the repository, so [`CostModel::time_remote`] returns zero when
//! the remote compulsory set is empty. The greedy `PARTITION` loop in
//! `mmrepl-core` keeps the paper's verbatim initialization while comparing
//! streams, which only makes it slightly conservative about the first
//! remote download (matching the pseudocode).

use crate::entities::{Site, System};
use crate::ids::{IdVec, PageId, SiteId};
use crate::placement::{PagePartition, Placement};
use crate::topology::ServingChannel;
use crate::units::{BytesPerSec, Secs};
use serde::{Deserialize, Serialize};

/// Weights `(α1, α2)` of the two target functions in Eq. 7.
///
/// The paper argues page retrieval matters more than optional downloads and
/// uses `(2, 1)` in Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Weight of `D1`, the compulsory response-time objective.
    pub alpha1: f64,
    /// Weight of `D2`, the optional download-time objective.
    pub alpha2: f64,
}

impl Default for CostParams {
    /// Table 1's `(α1, α2) = (2, 1)`.
    fn default() -> Self {
        CostParams {
            alpha1: 2.0,
            alpha2: 1.0,
        }
    }
}

/// Per-page cost decomposition, all in estimated seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PageCost {
    /// Eq. 3 — `Time(S_i, W_j)`: overhead + HTML + local compulsory objects
    /// over the local pipe.
    pub local: Secs,
    /// Eq. 4 — `Time(R, W_j)`: overhead + remote compulsory objects over
    /// the repository pipe (zero if nothing is remote).
    pub remote: Secs,
    /// Eq. 5 — `Time(W_j) = max(local, remote)`.
    pub response: Secs,
    /// Eq. 6 — `Time(W_j, M)`: expected optional-object time.
    pub optional: Secs,
}

impl PageCost {
    /// This page's contribution to the composite objective:
    /// `f(W_j) (α1·Time(W_j) + α2·Time(W_j, M))`.
    pub fn weighted(&self, freq: f64, params: CostParams) -> f64 {
        freq * (params.alpha1 * self.response.get() + params.alpha2 * self.optional.get())
    }
}

/// Evaluates the Section 3 cost model over a [`System`].
#[derive(Clone, Copy, Debug)]
pub struct CostModel<'a> {
    system: &'a System,
    params: CostParams,
    /// Optional per-site effective remote channels (federated-tree
    /// extension): when set, Eq. 4/6 price the remote stream over the
    /// serving ancestor's constrained path instead of the site's raw
    /// repository estimates.
    channels: Option<&'a IdVec<SiteId, ServingChannel>>,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model with the given weights.
    pub fn new(system: &'a System, params: CostParams) -> Self {
        CostModel {
            system,
            params,
            channels: None,
        }
    }

    /// Creates a cost model whose remote stream is priced through
    /// per-site serving channels (one per site, e.g. from an
    /// ancestor-selection pass over the system's tree topology) instead of
    /// the sites' raw `repo_rate`/`repo_ovhd`.
    ///
    /// A zero-hop channel is bit-identical to the raw estimates, so
    /// passing attach-node channels on any topology — or any channels on a
    /// one-node tree — reproduces [`CostModel::new`] exactly.
    pub fn with_channels(
        system: &'a System,
        params: CostParams,
        channels: &'a IdVec<SiteId, ServingChannel>,
    ) -> Self {
        assert_eq!(
            channels.len(),
            system.n_sites(),
            "one serving channel per site"
        );
        CostModel {
            system,
            params,
            channels: Some(channels),
        }
    }

    /// The effective remote channel for `site`: the override when
    /// present, the site's raw estimates otherwise.
    #[inline]
    fn remote_channel(&self, site_id: SiteId, site: &Site) -> (BytesPerSec, Secs) {
        match self.channels {
            Some(ch) => {
                let c = ch[site_id];
                (c.rate, c.ovhd)
            }
            None => (site.repo_rate, site.repo_ovhd),
        }
    }

    /// Creates a cost model with the paper's `(2, 1)` weights.
    pub fn with_defaults(system: &'a System) -> Self {
        Self::new(system, CostParams::default())
    }

    /// The weights in use.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// The underlying system.
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// Eq. 3 — time to pull the HTML plus all locally-marked compulsory
    /// objects through the local server's pipe, pipelined on one persistent
    /// connection.
    pub fn time_local(&self, page: PageId, part: &PagePartition) -> Secs {
        let p = self.system.page(page);
        let site = self.system.site(p.site);
        let mut t = site.local_ovhd + p.html_size / site.local_rate;
        for (slot, &k) in p.compulsory.iter().enumerate() {
            if part.local_compulsory[slot] {
                t += self.system.object_size(k) / site.local_rate;
            }
        }
        t
    }

    /// Eq. 4 — time to pull the remotely-marked compulsory objects from
    /// the repository, or zero when nothing is remote (see module docs).
    pub fn time_remote(&self, page: PageId, part: &PagePartition) -> Secs {
        let p = self.system.page(page);
        let site = self.system.site(p.site);
        let (repo_rate, repo_ovhd) = self.remote_channel(p.site, site);
        let mut t = Secs::ZERO;
        let mut any = false;
        for (slot, &k) in p.compulsory.iter().enumerate() {
            if !part.local_compulsory[slot] {
                t += self.system.object_size(k) / repo_rate;
                any = true;
            }
        }
        if any {
            t + repo_ovhd
        } else {
            Secs::ZERO
        }
    }

    /// Eq. 5 — the user-perceived page response time, the max of the two
    /// parallel streams.
    pub fn page_response(&self, page: PageId, part: &PagePartition) -> Secs {
        self.time_local(page, part)
            .max(self.time_remote(page, part))
    }

    /// Eq. 6 — expected time spent on optional objects after the page is
    /// retrieved. Each optional download opens its own connection, so it
    /// pays the full overhead, local or remote according to `X'`.
    pub fn optional_time(&self, page: PageId, part: &PagePartition) -> Secs {
        let p = self.system.page(page);
        let site = self.system.site(p.site);
        let (repo_rate, repo_ovhd) = self.remote_channel(p.site, site);
        let mut t = 0.0;
        for (slot, opt) in p.optional.iter().enumerate() {
            let size = self.system.object_size(opt.object);
            let per = if part.local_optional[slot] {
                site.local_ovhd + size / site.local_rate
            } else {
                repo_ovhd + size / repo_rate
            };
            t += opt.prob * per.get();
        }
        Secs(p.opt_req_factor * t)
    }

    /// All four per-page cost components at once.
    pub fn page_cost(&self, page: PageId, part: &PagePartition) -> PageCost {
        let local = self.time_local(page, part);
        let remote = self.time_remote(page, part);
        PageCost {
            local,
            remote,
            response: local.max(remote),
            optional: self.optional_time(page, part),
        }
    }

    /// `D1 = Σ_j f(W_j) · Time(W_j)` (first target of Eq. 7).
    pub fn d1(&self, placement: &Placement) -> f64 {
        placement
            .iter()
            .map(|(pid, part)| {
                self.system.page(pid).freq.get() * self.page_response(pid, part).get()
            })
            .sum()
    }

    /// `D2 = Σ_j f(W_j) · Time(W_j, M)` (second target of Eq. 7).
    pub fn d2(&self, placement: &Placement) -> f64 {
        placement
            .iter()
            .map(|(pid, part)| {
                self.system.page(pid).freq.get() * self.optional_time(pid, part).get()
            })
            .sum()
    }

    /// The composite objective `D = α1·D1 + α2·D2`.
    pub fn objective(&self, placement: &Placement) -> f64 {
        placement
            .iter()
            .map(|(pid, part)| {
                self.page_cost(pid, part)
                    .weighted(self.system.page(pid).freq.get(), self.params)
            })
            .sum()
    }

    /// Frequency-weighted *mean* response time over page requests,
    /// `Σ f(W_j) Time(W_j) / Σ f(W_j)` — the quantity the paper's figures
    /// plot (as a ratio to the unconstrained policy).
    pub fn mean_response(&self, placement: &Placement) -> Secs {
        let total_freq: f64 = self.system.pages().values().map(|p| p.freq.get()).sum();
        if total_freq == 0.0 {
            return Secs::ZERO;
        }
        Secs(self.d1(placement) / total_freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{MediaObject, OptionalRef, Site, SystemBuilder, WebPage};
    use crate::units::{Bytes, BytesPerSec, ReqPerSec};

    /// A site with round numbers so every expected value below is exact:
    /// local pipe 10 KiB/s, repo pipe 1 KiB/s, overheads 1 s / 2 s.
    fn round_site() -> Site {
        Site {
            storage: Bytes::gib(10),
            capacity: ReqPerSec::INFINITE,
            local_rate: BytesPerSec::kib_per_sec(10.0),
            repo_rate: BytesPerSec::kib_per_sec(1.0),
            local_ovhd: Secs(1.0),
            repo_ovhd: Secs(2.0),
        }
    }

    /// One page: HTML 10 KiB, compulsory objects of 100 KiB and 50 KiB,
    /// one optional 20 KiB object with probability 0.5.
    fn fixture() -> System {
        let mut b = SystemBuilder::new();
        let s = b.add_site(round_site());
        let m_big = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m_small = b.add_object(MediaObject::of_size(Bytes::kib(50)));
        let m_opt = b.add_object(MediaObject::of_size(Bytes::kib(20)));
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(2.0),
            compulsory: vec![m_big, m_small],
            optional: vec![OptionalRef {
                object: m_opt,
                prob: 0.5,
            }],
            opt_req_factor: 1.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn eq3_all_local() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let part = PagePartition::all_local(sys.page(PageId::new(0)));
        // 1 + (10 + 100 + 50)/10 = 17
        assert!((cm.time_local(PageId::new(0), &part).get() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn eq4_all_remote() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let part = PagePartition::all_remote(sys.page(PageId::new(0)));
        // 2 + (100 + 50)/1 = 152
        assert!((cm.time_remote(PageId::new(0), &part).get() - 152.0).abs() < 1e-12);
        // local stream still carries the HTML: 1 + 10/10 = 2
        assert!((cm.time_local(PageId::new(0), &part).get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eq4_zero_when_nothing_remote() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let part = PagePartition::all_local(sys.page(PageId::new(0)));
        assert_eq!(cm.time_remote(PageId::new(0), &part), Secs::ZERO);
    }

    #[test]
    fn eq5_takes_the_max_stream() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let page = PageId::new(0);

        // Split: big object local, small remote.
        let part = PagePartition {
            local_compulsory: vec![true, false],
            local_optional: vec![false],
        };
        // local: 1 + (10 + 100)/10 = 12; remote: 2 + 50/1 = 52.
        let resp = cm.page_response(page, &part);
        assert!((resp.get() - 52.0).abs() < 1e-12);

        let all_local = PagePartition::all_local(sys.page(page));
        assert!((cm.page_response(page, &all_local).get() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn eq6_weights_by_probability_and_location() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let page = PageId::new(0);

        let remote = PagePartition::all_remote(sys.page(page));
        // remote optional: 0.5 * (2 + 20/1) = 11
        assert!((cm.optional_time(page, &remote).get() - 11.0).abs() < 1e-12);

        let local = PagePartition::all_local(sys.page(page));
        // local optional: 0.5 * (1 + 20/10) = 1.5
        assert!((cm.optional_time(page, &local).get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn eq7_objective_composition() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let placement = Placement::all_local(&sys);
        // D1 = 2.0 * 17; D2 = 2.0 * 1.5; D = 2*34 + 1*3 = 71.
        assert!((cm.d1(&placement) - 34.0).abs() < 1e-12);
        assert!((cm.d2(&placement) - 3.0).abs() < 1e-12);
        assert!((cm.objective(&placement) - 71.0).abs() < 1e-12);
    }

    #[test]
    fn custom_weights_change_objective() {
        let sys = fixture();
        let cm = CostModel::new(
            &sys,
            CostParams {
                alpha1: 1.0,
                alpha2: 0.0,
            },
        );
        let placement = Placement::all_local(&sys);
        assert!((cm.objective(&placement) - cm.d1(&placement)).abs() < 1e-12);
    }

    #[test]
    fn mean_response_is_frequency_weighted() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let placement = Placement::all_local(&sys);
        // Single page: mean = its response time.
        assert!((cm.mean_response(&placement).get() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn page_cost_bundle_consistent() {
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let page = PageId::new(0);
        let part = PagePartition {
            local_compulsory: vec![false, true],
            local_optional: vec![true],
        };
        let cost = cm.page_cost(page, &part);
        assert_eq!(cost.local, cm.time_local(page, &part));
        assert_eq!(cost.remote, cm.time_remote(page, &part));
        assert_eq!(cost.response, cost.local.max(cost.remote));
        assert_eq!(cost.optional, cm.optional_time(page, &part));
        let w = cost.weighted(2.0, CostParams::default());
        assert!((w - 2.0 * (2.0 * cost.response.get() + 1.0 * cost.optional.get())).abs() < 1e-12);
    }

    #[test]
    fn raw_channels_reproduce_plain_model_bit_for_bit() {
        let sys = fixture();
        let channels: IdVec<SiteId, ServingChannel> = sys
            .sites()
            .iter()
            .map(|(_, s)| ServingChannel {
                rate: s.repo_rate,
                ovhd: s.repo_ovhd,
                hops: 0,
            })
            .collect();
        let plain = CostModel::with_defaults(&sys);
        let routed = CostModel::with_channels(&sys, CostParams::default(), &channels);
        let placement = Placement::all_remote(&sys);
        assert_eq!(
            plain.objective(&placement).to_bits(),
            routed.objective(&placement).to_bits()
        );
        let page = PageId::new(0);
        let part = PagePartition::all_remote(sys.page(page));
        assert_eq!(
            plain.time_remote(page, &part).get().to_bits(),
            routed.time_remote(page, &part).get().to_bits()
        );
        assert_eq!(
            plain.optional_time(page, &part).get().to_bits(),
            routed.optional_time(page, &part).get().to_bits()
        );
    }

    #[test]
    fn degraded_channel_slows_only_the_remote_stream() {
        let sys = fixture();
        // Serving from a distant ancestor: half the rate, +1 s latency.
        let channels: IdVec<SiteId, ServingChannel> = sys
            .sites()
            .iter()
            .map(|(_, s)| ServingChannel {
                rate: BytesPerSec(s.repo_rate.get() / 2.0),
                ovhd: s.repo_ovhd + Secs(1.0),
                hops: 2,
            })
            .collect();
        let cm = CostModel::with_channels(&sys, CostParams::default(), &channels);
        let page = PageId::new(0);
        let part = PagePartition::all_remote(sys.page(page));
        // remote: (2 + 1) + (100 + 50)/0.5 = 303
        assert!((cm.time_remote(page, &part).get() - 303.0).abs() < 1e-12);
        // local stream untouched: 1 + 10/10 = 2
        assert!((cm.time_local(page, &part).get() - 2.0).abs() < 1e-12);
        // optional: 0.5 * (3 + 20/0.5) = 21.5
        assert!((cm.optional_time(page, &part).get() - 21.5).abs() < 1e-12);
    }

    #[test]
    fn moving_everything_local_beats_all_remote_on_fast_local_pipe() {
        // Sanity direction check: with a 10x faster local pipe, the Local
        // extreme dominates the Remote extreme on response time.
        let sys = fixture();
        let cm = CostModel::with_defaults(&sys);
        let local = Placement::all_local(&sys);
        let remote = Placement::all_remote(&sys);
        assert!(cm.d1(&local) < cm.d1(&remote));
    }

    #[test]
    fn balanced_partition_beats_both_extremes_when_pipes_comparable() {
        // With equal pipes, splitting the two objects across streams wins.
        let mut site = round_site();
        site.repo_rate = BytesPerSec::kib_per_sec(10.0);
        site.repo_ovhd = Secs(1.0);
        let mut b = SystemBuilder::new();
        let s = b.add_site(site);
        let m0 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        let m1 = b.add_object(MediaObject::of_size(Bytes::kib(100)));
        b.add_page(WebPage {
            site: s,
            html_size: Bytes::kib(10),
            freq: ReqPerSec(1.0),
            compulsory: vec![m0, m1],
            optional: vec![],
            opt_req_factor: 1.0,
        });
        let sys = b.build().unwrap();
        let cm = CostModel::with_defaults(&sys);
        let page = PageId::new(0);

        let split = PagePartition {
            local_compulsory: vec![true, false],
            local_optional: vec![],
        };
        let split_resp = cm.page_response(page, &split);
        let local_resp = cm.page_response(page, &PagePartition::all_local(sys.page(page)));
        let remote_resp = cm.page_response(page, &PagePartition::all_remote(sys.page(page)));
        assert!(split_resp < local_resp, "{split_resp:?} vs {local_resp:?}");
        assert!(
            split_resp < remote_resp,
            "{split_resp:?} vs {remote_resp:?}"
        );
    }
}
