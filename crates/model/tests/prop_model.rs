//! Property tests for the model crate's data structures: the bit matrix,
//! the unit arithmetic and the placement bookkeeping.

use mmrepl_model::{BitMatrix, Bytes, BytesPerSec, Secs};
use proptest::prelude::*;

proptest! {
    /// Set/get roundtrip over arbitrary in-range coordinates.
    #[test]
    fn bitmatrix_set_get_roundtrip(
        rows in 1usize..20,
        cols in 1usize..200,
        ops in prop::collection::vec((0usize..20, 0usize..200, any::<bool>()), 0..100),
    ) {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut shadow = vec![vec![false; cols]; rows];
        for (r, c, v) in ops {
            let (r, c) = (r % rows, c % cols);
            m.set(r, c, v);
            shadow[r][c] = v;
        }
        for (r, row) in shadow.iter().enumerate() {
            for (c, &bit) in row.iter().enumerate() {
                prop_assert_eq!(m.get(r, c), bit, "at ({}, {})", r, c);
            }
        }
        let expect: usize = shadow.iter().flatten().filter(|&&b| b).count();
        prop_assert_eq!(m.count(), expect);
    }

    /// Row iteration yields exactly the set columns, ascending.
    #[test]
    fn bitmatrix_row_iter_matches_gets(
        cols in 1usize..300,
        set in prop::collection::btree_set(0usize..300, 0..50),
    ) {
        let mut m = BitMatrix::zeros(1, cols);
        let expect: Vec<usize> = set.iter().copied().filter(|&c| c < cols).collect();
        for &c in &expect {
            m.set(0, c, true);
        }
        let got: Vec<usize> = m.row_iter(0).collect();
        prop_assert_eq!(got, expect);
    }

    /// `and_not` equals the element-wise definition, and `contains_all`
    /// recognizes `u & x` as a subset of `u`.
    #[test]
    fn bitmatrix_andnot_and_subset(
        cols in 1usize..150,
        a_bits in prop::collection::btree_set(0usize..150, 0..40),
        b_bits in prop::collection::btree_set(0usize..150, 0..40),
    ) {
        let mut u = BitMatrix::zeros(1, cols);
        let mut x = BitMatrix::zeros(1, cols);
        for &c in a_bits.iter().filter(|&&c| c < cols) {
            u.set(0, c, true);
        }
        for &c in b_bits.iter().filter(|&&c| c < cols) {
            x.set(0, c, true);
        }
        let diff = u.and_not(&x);
        for c in 0..cols {
            prop_assert_eq!(diff.get(0, c), u.get(0, c) && !x.get(0, c));
        }
        prop_assert!(u.contains_all(&diff));
        prop_assert!(u.contains_all(&u.and_not(&diff)));
    }

    /// Transfer time scales linearly in size and inversely in rate.
    #[test]
    fn transfer_time_scaling(size in 1u64..1_000_000_000, rate in 1.0f64..1e9) {
        let t1 = Bytes(size) / BytesPerSec(rate);
        let t2 = Bytes(size * 2) / BytesPerSec(rate);
        let t3 = Bytes(size) / BytesPerSec(rate * 2.0);
        prop_assert!((t2.get() - 2.0 * t1.get()).abs() <= 1e-9 * t2.get().max(1.0));
        prop_assert!((t3.get() - 0.5 * t1.get()).abs() <= 1e-9 * t1.get().max(1.0));
        prop_assert!(t1.is_valid());
    }

    /// Secs max/min are consistent with ordering.
    #[test]
    fn secs_lattice(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (x, y) = (Secs(a), Secs(b));
        prop_assert_eq!(x.max(y), y.max(x));
        prop_assert_eq!(x.min(y), y.min(x));
        prop_assert!(x.max(y) >= x.min(y));
        prop_assert_eq!(x.max(y) + x.min(y), x + y);
    }

    /// Bytes::scale never overshoots and is monotone in the fraction.
    #[test]
    fn bytes_scale_monotone(total in 0u64..u64::MAX / 4, f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let b = Bytes(total);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(b.scale(lo) <= b.scale(hi) + Bytes(1));
        prop_assert!(b.scale(1.0) == b);
        prop_assert!(b.scale(0.0) == Bytes::ZERO);
    }
}
