//! A deterministic discrete-event core: simulation time plus a stable
//! min-heap of timestamped events.
//!
//! Determinism matters more than raw speed here — two events at the same
//! timestamp must always pop in insertion order, or parallel experiment
//! runs would not be reproducible. The queue therefore keys on
//! `(time, sequence)`.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulation time in seconds. A thin wrapper over `f64` that is totally
/// ordered (NaN is rejected at construction) so it can key a heap.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time; panics on NaN or negative values.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "invalid sim time {t}");
        SimTime(t)
    }

    /// Raw seconds.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// This time advanced by `dt` seconds.
    pub fn after(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Constructor rejects NaN, so total order is safe.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.4}", self.0)
    }
}

/// A heap entry: reversed ordering turns `BinaryHeap`'s max-heap into a
/// min-heap on `(time, seq)`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (time, seq) is the heap maximum.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic event queue.
///
/// Events scheduled at equal times pop in scheduling order (FIFO), and
/// scheduling an event in the past is a logic error that panics
/// immediately rather than silently reordering history.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time — the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `dt` seconds from now.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        self.schedule(self.now.after(dt), event);
    }

    /// Advances the clock to `at` without popping anything — the idle-wait
    /// primitive timeout-driven protocols need (a negotiator giving up on
    /// a reply must burn the waited time even though no event fired).
    ///
    /// # Panics
    /// Panics if an event is pending before `at`: skipping over scheduled
    /// history would silently reorder it.
    pub fn advance_to(&mut self, at: SimTime) {
        if at <= self.now {
            return;
        }
        if let Some(next) = self.peek_time() {
            assert!(
                next >= at,
                "advancing past a pending event: {next:?} < {at:?}"
            );
        }
        self.now = at;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drains the queue, applying `f` to every event in time order. Returns
    /// the final simulation time.
    pub fn run(&mut self, mut f: impl FnMut(&mut Self, SimTime, E)) -> SimTime {
        while let Some((t, e)) = self.pop() {
            f(self, t, e);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = a.after(0.5);
        assert!(b > a);
        assert_eq!(b.get(), 1.5);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn sim_time_rejects_nan() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn sim_time_rejects_negative() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for name in ["first", "second", "third"] {
            q.schedule(SimTime::new(5.0), name);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), ());
        q.schedule(SimTime::new(7.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::new(2.0));
        q.pop();
        assert_eq!(q.now(), SimTime::new(7.0));
        assert_eq!(q.processed(), 2);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        q.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(4.0), 1);
        q.pop();
        q.schedule_in(2.5, 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(6.5)));
    }

    #[test]
    fn run_drains_and_allows_cascading() {
        // Each event may schedule follow-ups; run() must see them all.
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), 3u32); // countdown event
        let mut seen = Vec::new();
        let end = q.run(|q, t, n| {
            seen.push((t.get(), n));
            if n > 0 {
                q.schedule_in(1.0, n - 1);
            }
        });
        assert_eq!(seen, vec![(1.0, 3), (2.0, 2), (3.0, 1), (4.0, 0)]);
        assert_eq!(end, SimTime::new(4.0));
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn advance_to_moves_the_clock_without_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::new(3.0));
        assert_eq!(q.now(), SimTime::new(3.0));
        // Never moves backwards.
        q.advance_to(SimTime::new(1.0));
        assert_eq!(q.now(), SimTime::new(3.0));
        q.schedule(SimTime::new(5.0), ());
        // Up to (and onto) the next event is fine.
        q.advance_to(SimTime::new(5.0));
        assert_eq!(q.now(), SimTime::new(5.0));
    }

    #[test]
    #[should_panic(expected = "advancing past a pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), ());
        q.advance_to(SimTime::new(4.0));
    }

    /// Two events scheduled at the *identical* `SimTime` must replay in
    /// the same order on every run: the heap keys on `(time, seq)` with a
    /// monotonic per-queue sequence, so equal-time delivery is scheduling
    /// order, never heap-internal order. Seeded fault scenarios (which
    /// routinely jitter two messages onto the same timestamp) rely on
    /// this for bit-identical replay.
    #[test]
    fn identical_simtime_ties_replay_bit_identically() {
        let replay = |labels: &[&'static str]| -> Vec<&'static str> {
            let mut q = EventQueue::new();
            // Interleave an unrelated earlier event so the tie sits in a
            // non-trivial heap, then pop everything.
            q.schedule(SimTime::new(1.0), "early");
            for &l in labels {
                q.schedule(SimTime::new(2.5), l);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        let a = replay(&["first", "second"]);
        let b = replay(&["first", "second"]);
        assert_eq!(a, b);
        assert_eq!(a, vec!["early", "first", "second"]);
        // The tie-break is the explicit sequence, not the payload: swap
        // the scheduling order and the delivery order swaps with it,
        // deterministically.
        assert_eq!(
            replay(&["second", "first"]),
            vec!["early", "second", "first"]
        );
    }

    #[test]
    fn pending_counts() {
        let mut q = EventQueue::new();
        assert_eq!(q.pending(), 0);
        q.schedule(SimTime::new(1.0), ());
        q.schedule(SimTime::new(2.0), ());
        assert_eq!(q.pending(), 2);
        q.pop();
        assert_eq!(q.pending(), 1);
    }
}
