//! Server processing-capacity model.
//!
//! The paper treats per-request processing time as constant ("since we
//! assumed peak hours, i.e., almost fixed server utilization"), so a server
//! with capacity `C` requests/second is a deterministic FIFO queue with
//! service time `1/C` per HTTP request. The planning constraints (Eq. 8/9)
//! keep offered load under `C`; this model answers the follow-up question
//! the paper leaves implicit — *how much queueing delay appears when a
//! placement violates them* — and powers the queueing-aware replay
//! extension in `mmrepl-sim`.

use crate::event::SimTime;
use mmrepl_model::{ReqPerSec, Secs};
use serde::{Deserialize, Serialize};

/// A deterministic-service FIFO server.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueingServer {
    capacity: ReqPerSec,
    next_free: SimTime,
    served: u64,
    busy: f64,
}

/// The outcome of admitting a batch of requests.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceOutcome {
    /// When service began (>= arrival).
    pub start: SimTime,
    /// When the batch finished processing.
    pub finish: SimTime,
    /// Queueing delay suffered before service began.
    pub wait: Secs,
}

impl QueueingServer {
    /// A server with the given processing capacity. Infinite capacity means
    /// zero service time (the Table 1 repository).
    pub fn new(capacity: ReqPerSec) -> Self {
        assert!(
            capacity.get() > 0.0,
            "server capacity must be positive, got {capacity:?}"
        );
        QueueingServer {
            capacity,
            next_free: SimTime::ZERO,
            served: 0,
            busy: 0.0,
        }
    }

    /// Deterministic service time for `n_requests` HTTP requests.
    pub fn service_time(&self, n_requests: f64) -> Secs {
        if self.capacity.get().is_infinite() {
            Secs::ZERO
        } else {
            Secs(n_requests / self.capacity.get())
        }
    }

    /// Admits a batch of `n_requests` arriving at `arrival`; FIFO service.
    pub fn admit(&mut self, arrival: SimTime, n_requests: f64) -> ServiceOutcome {
        assert!(
            n_requests >= 0.0 && n_requests.is_finite(),
            "invalid batch size {n_requests}"
        );
        let start = arrival.max(self.next_free);
        let service = self.service_time(n_requests);
        let finish = start.after(service.get());
        self.next_free = finish;
        self.served += n_requests.round() as u64;
        self.busy += service.get();
        ServiceOutcome {
            start,
            finish,
            wait: Secs(start.get() - arrival.get()),
        }
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// When the server next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Fraction of `[0, horizon]` the server spent serving. Values above 1
    /// mean the queue never drained within the horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.get() == 0.0 {
            0.0
        } else {
            self.busy / horizon.get()
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> ReqPerSec {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = QueueingServer::new(ReqPerSec(10.0));
        let out = s.admit(SimTime::new(1.0), 5.0);
        assert_eq!(out.start, SimTime::new(1.0));
        assert!((out.finish.get() - 1.5).abs() < 1e-12); // 5 req / 10 rps
        assert_eq!(out.wait, Secs::ZERO);
    }

    #[test]
    fn back_to_back_arrivals_queue_fifo() {
        let mut s = QueueingServer::new(ReqPerSec(1.0));
        let a = s.admit(SimTime::new(0.0), 2.0); // busy until t=2
        let b = s.admit(SimTime::new(1.0), 1.0); // arrives during service
        assert_eq!(a.finish, SimTime::new(2.0));
        assert_eq!(b.start, SimTime::new(2.0));
        assert!((b.wait.get() - 1.0).abs() < 1e-12);
        assert_eq!(b.finish, SimTime::new(3.0));
    }

    #[test]
    fn gap_lets_queue_drain() {
        let mut s = QueueingServer::new(ReqPerSec(1.0));
        s.admit(SimTime::new(0.0), 1.0); // done at 1
        let late = s.admit(SimTime::new(5.0), 1.0);
        assert_eq!(late.start, SimTime::new(5.0));
        assert_eq!(late.wait, Secs::ZERO);
    }

    #[test]
    fn infinite_capacity_never_queues() {
        let mut s = QueueingServer::new(ReqPerSec::INFINITE);
        for i in 0..100 {
            let out = s.admit(SimTime::new(i as f64 * 0.001), 50.0);
            assert_eq!(out.wait, Secs::ZERO);
            assert_eq!(out.start, out.finish);
        }
        assert_eq!(s.utilization(SimTime::new(1.0)), 0.0);
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut s = QueueingServer::new(ReqPerSec(2.0));
        s.admit(SimTime::new(0.0), 4.0); // 2 seconds of service
        assert!((s.utilization(SimTime::new(4.0)) - 0.5).abs() < 1e-12);
        assert!(s.utilization(SimTime::ZERO) == 0.0);
    }

    #[test]
    fn served_counts_requests() {
        let mut s = QueueingServer::new(ReqPerSec(100.0));
        s.admit(SimTime::new(0.0), 3.0);
        s.admit(SimTime::new(0.0), 2.0);
        assert_eq!(s.served(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = QueueingServer::new(ReqPerSec(0.0));
    }

    #[test]
    #[should_panic(expected = "invalid batch")]
    fn rejects_negative_batch() {
        let mut s = QueueingServer::new(ReqPerSec(1.0));
        s.admit(SimTime::ZERO, -1.0);
    }

    #[test]
    fn overload_grows_queue_without_bound() {
        // Offered load 2x capacity: waits must increase monotonically.
        let mut s = QueueingServer::new(ReqPerSec(1.0));
        let mut last_wait = -1.0;
        for i in 0..50 {
            let out = s.admit(SimTime::new(i as f64 * 0.5), 1.0);
            assert!(out.wait.get() >= last_wait);
            last_wait = out.wait.get();
        }
        assert!(last_wait > 10.0, "queue should have built up: {last_wait}");
    }
}
