//! Response-time statistics.
//!
//! The experiment harness replays 100,000 requests per run across worker
//! threads, so the accumulators here are **mergeable**: each worker fills
//! its own [`ResponseStats`], and the harness combines them without locks
//! in the hot path. Mean/variance use Welford's parallel-combinable form;
//! percentiles come from a fixed log-spaced histogram (response times span
//! roughly 1 s to 1000 s, so 1 % relative resolution needs only a few
//! hundred buckets).

use mmrepl_model::Secs;
use serde::{Deserialize, Serialize};

/// Log-spaced histogram over `[min, max]` with saturating under/overflow
/// buckets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    log_min: f64,
    log_width: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// A histogram with `n_buckets` log-spaced buckets covering
    /// `[min, max]` (both positive, min < max).
    pub fn new(min: f64, max: f64, n_buckets: usize) -> Self {
        assert!(
            min > 0.0 && max > min,
            "invalid histogram range [{min}, {max}]"
        );
        assert!(n_buckets >= 1, "need at least one bucket");
        let log_min = min.ln();
        let log_width = (max.ln() - log_min) / n_buckets as f64;
        Histogram {
            min,
            max,
            log_min,
            log_width,
            // +2 for the underflow and overflow buckets.
            buckets: vec![0; n_buckets + 2],
        }
    }

    /// The default range for response times: 10 ms to 100,000 s at ~2 %
    /// relative resolution (modem-era multimedia pages run to minutes;
    /// deliberately-overloaded queueing scenarios to hours).
    pub fn for_response_times() -> Self {
        Histogram::new(0.01, 100_000.0, 800)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v < self.min {
            0
        } else if v >= self.max {
            self.buckets.len() - 1
        } else {
            1 + (((v.ln() - self.log_min) / self.log_width) as usize).min(self.buckets.len() - 3)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        let b = self.bucket_of(v);
        self.buckets[b] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`), or `None` when empty.
    /// Returns the geometric midpoint of the bucket containing the
    /// quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bucket_value(i));
            }
        }
        Some(self.max)
    }

    fn bucket_value(&self, i: usize) -> f64 {
        if i == 0 {
            self.min
        } else if i == self.buckets.len() - 1 {
            self.max
        } else {
            // Geometric midpoint of the bucket.
            let lo = self.log_min + (i - 1) as f64 * self.log_width;
            (lo + 0.5 * self.log_width).exp()
        }
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min == other.min
                && self.max == other.max
                && self.buckets.len() == other.buckets.len(),
            "merging incompatible histograms"
        );
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Streaming response-time statistics: count, mean, variance (Welford),
/// min/max, and a histogram for percentiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    hist: Histogram,
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseStats {
    /// An empty accumulator with the default response-time histogram.
    pub fn new() -> Self {
        ResponseStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: Histogram::for_response_times(),
        }
    }

    /// Records one response time.
    pub fn record(&mut self, t: Secs) {
        debug_assert!(t.is_valid(), "recording invalid time {t:?}");
        let v = t.get();
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.record(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<Secs> {
        (self.count > 0).then_some(Secs(self.mean))
    }

    /// Sample standard deviation (n-1 denominator), or `None` for < 2
    /// samples.
    pub fn std_dev(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).sqrt())
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<Secs> {
        (self.count > 0).then_some(Secs(self.min))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<Secs> {
        (self.count > 0).then_some(Secs(self.max))
    }

    /// Approximate quantile from the histogram.
    pub fn quantile(&self, q: f64) -> Option<Secs> {
        self.hist.quantile(q).map(Secs)
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &ResponseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_none() {
        let s = ResponseStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.std_dev().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.quantile(0.5).is_none());
    }

    #[test]
    fn mean_min_max_exact() {
        let mut s = ResponseStats::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(Secs(v));
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap().get() - 2.5).abs() < 1e-12);
        assert_eq!(s.min().unwrap().get(), 1.0);
        assert_eq!(s.max().unwrap().get(), 4.0);
        // std dev of 1,2,3,4 = sqrt(5/3)
        assert!((s.std_dev().unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<f64> = (1..=100).map(|i| (i as f64).sqrt() * 3.7).collect();
        let mut all = ResponseStats::new();
        for &v in &values {
            all.record(Secs(v));
        }
        let mut a = ResponseStats::new();
        let mut b = ResponseStats::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.record(Secs(v));
            } else {
                b.record(Secs(v));
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap().get() - all.mean().unwrap().get()).abs() < 1e-9);
        assert!((a.std_dev().unwrap() - all.std_dev().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = ResponseStats::new();
        s.record(Secs(5.0));
        let snapshot = s.clone();
        s.merge(&ResponseStats::new());
        assert_eq!(s, snapshot);

        let mut empty = ResponseStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn histogram_quantiles_are_approximately_right() {
        let mut s = ResponseStats::new();
        // Uniform 1..=1000 seconds.
        for i in 1..=1000 {
            s.record(Secs(i as f64));
        }
        let p50 = s.quantile(0.5).unwrap().get();
        let p95 = s.quantile(0.95).unwrap().get();
        assert!((p50 / 500.0 - 1.0).abs() < 0.05, "p50 = {p50}");
        assert!((p95 / 950.0 - 1.0).abs() < 0.05, "p95 = {p95}");
        let p0 = s.quantile(0.0).unwrap().get();
        assert!(p0 <= s.quantile(1.0).unwrap().get());
    }

    #[test]
    fn histogram_handles_out_of_range() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        h.record(0.5); // underflow
        h.record(1e9); // overflow
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(1.0)); // underflow bucket
        assert_eq!(h.quantile(1.0), Some(100.0)); // overflow bucket
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let mut b = Histogram::new(1.0, 100.0, 10);
        a.record(5.0);
        b.record(5.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let b = Histogram::new(1.0, 100.0, 20);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(0.0, 10.0, 5);
    }

    #[test]
    fn single_sample_quantiles() {
        let mut s = ResponseStats::new();
        s.record(Secs(42.0));
        let q = s.quantile(0.5).unwrap().get();
        assert!((q / 42.0 - 1.0).abs() < 0.05, "q = {q}");
    }
}
