//! Response-time statistics.
//!
//! The experiment harness replays 100,000 requests per run across worker
//! threads, so the accumulators here are **mergeable**: each worker fills
//! its own [`ResponseStats`], and the harness combines them without locks
//! in the hot path. Mean/variance use Welford's parallel-combinable form;
//! percentiles come from a fixed log-spaced histogram (response times span
//! roughly 1 s to 1000 s, so 1 % relative resolution needs only a few
//! hundred buckets).

use mmrepl_model::Secs;
use serde::{Deserialize, Serialize};

// One histogram implementation for the whole workspace: the log-spaced
// design this module introduced now lives in `mmrepl-obs` (the tracing
// layer records into the same type), re-exported here so existing users
// keep their import path.
pub use mmrepl_obs::Histogram;

/// Streaming response-time statistics: count, mean, variance (Welford),
/// min/max, and a histogram for percentiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    hist: Histogram,
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseStats {
    /// An empty accumulator with the default response-time histogram.
    pub fn new() -> Self {
        ResponseStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: Histogram::for_response_times(),
        }
    }

    /// Records one response time.
    pub fn record(&mut self, t: Secs) {
        debug_assert!(t.is_valid(), "recording invalid time {t:?}");
        let v = t.get();
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.record(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<Secs> {
        (self.count > 0).then_some(Secs(self.mean))
    }

    /// Sample standard deviation (n-1 denominator), or `None` for < 2
    /// samples.
    pub fn std_dev(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).sqrt())
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<Secs> {
        (self.count > 0).then_some(Secs(self.min))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<Secs> {
        (self.count > 0).then_some(Secs(self.max))
    }

    /// Approximate quantile from the histogram.
    pub fn quantile(&self, q: f64) -> Option<Secs> {
        self.hist.quantile(q).map(Secs)
    }

    /// The underlying response-time histogram (e.g. to merge a replay's
    /// distribution into an `mmrepl-obs` trace).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &ResponseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_none() {
        let s = ResponseStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.std_dev().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.quantile(0.5).is_none());
    }

    #[test]
    fn mean_min_max_exact() {
        let mut s = ResponseStats::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(Secs(v));
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap().get() - 2.5).abs() < 1e-12);
        assert_eq!(s.min().unwrap().get(), 1.0);
        assert_eq!(s.max().unwrap().get(), 4.0);
        // std dev of 1,2,3,4 = sqrt(5/3)
        assert!((s.std_dev().unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<f64> = (1..=100).map(|i| (i as f64).sqrt() * 3.7).collect();
        let mut all = ResponseStats::new();
        for &v in &values {
            all.record(Secs(v));
        }
        let mut a = ResponseStats::new();
        let mut b = ResponseStats::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.record(Secs(v));
            } else {
                b.record(Secs(v));
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap().get() - all.mean().unwrap().get()).abs() < 1e-9);
        assert!((a.std_dev().unwrap() - all.std_dev().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = ResponseStats::new();
        s.record(Secs(5.0));
        let snapshot = s.clone();
        s.merge(&ResponseStats::new());
        assert_eq!(s, snapshot);

        let mut empty = ResponseStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn histogram_quantiles_are_approximately_right() {
        let mut s = ResponseStats::new();
        // Uniform 1..=1000 seconds.
        for i in 1..=1000 {
            s.record(Secs(i as f64));
        }
        let p50 = s.quantile(0.5).unwrap().get();
        let p95 = s.quantile(0.95).unwrap().get();
        assert!((p50 / 500.0 - 1.0).abs() < 0.05, "p50 = {p50}");
        assert!((p95 / 950.0 - 1.0).abs() < 0.05, "p95 = {p95}");
        let p0 = s.quantile(0.0).unwrap().get();
        assert!(p0 <= s.quantile(1.0).unwrap().get());
    }

    // Histogram-specific behaviour (ranges, merging, boundary
    // round-trips) is tested where the implementation lives: mmrepl-obs.

    #[test]
    fn single_sample_quantiles() {
        let mut s = ResponseStats::new();
        s.record(Secs(42.0));
        let q = s.quantile(0.5).unwrap().get();
        assert!((q / 42.0 - 1.0).abs() < 0.05, "q = {q}");
    }
}
