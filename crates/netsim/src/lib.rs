#![warn(missing_docs)]

//! # mmrepl-netsim
//!
//! Discrete-event network and server substrate for the replication
//! simulator. The paper's evaluation needs three things from its
//! "network":
//!
//! 1. **Transfer timing** — how long a pipelined sequence of downloads
//!    takes over one persistent connection ([`transfer`]), including the
//!    parallel local/repository stream composition of Eq. 5;
//! 2. **Server queueing** — what happens when a server's processing
//!    capacity is exceeded, used by the queueing-aware replay extension
//!    ([`server`], [`event`]);
//! 3. **A control plane** — the repository off-loading negotiation of
//!    Section 4 is a real message protocol (status messages, workload
//!    assignments, acknowledgements); [`bus`] simulates the exchange with
//!    latency and round/message accounting so the protocol's cost is
//!    measurable, not hand-waved.
//!
//! [`metrics`] collects response-time statistics with mergeable
//! accumulators so the experiment harness can fan replay out across
//! threads and combine the results, and [`session`] replays a single page
//! download event-by-event to cross-validate the closed-form arithmetic.
//!
//! ## Example
//!
//! ```
//! use mmrepl_model::{Bytes, BytesPerSec, Secs};
//! use mmrepl_netsim::{parallel_page_time, ConnectionProfile, StreamPlan};
//!
//! // Local pipe: fast but pays 1.5 s of setup; repository pipe: slow.
//! let local = ConnectionProfile::new(Secs(1.5), BytesPerSec::kib_per_sec(8.0));
//! let repo = ConnectionProfile::new(Secs(2.2), BytesPerSec::kib_per_sec(1.0));
//!
//! let mut local_stream = StreamPlan::empty(local);
//! local_stream.push(Bytes::kib(12));   // the HTML document
//! local_stream.push(Bytes::kib(400));  // a locally replicated image
//! let mut repo_stream = StreamPlan::empty(repo);
//! repo_stream.push(Bytes::kib(60));    // one object left remote
//!
//! // Eq. 5: the page completes when the slower stream finishes.
//! let response = parallel_page_time(&local_stream, &repo_stream);
//! assert_eq!(response, local_stream.total_time().max(repo_stream.total_time()));
//! ```

pub mod bus;
pub mod event;
pub mod metrics;
pub mod server;
pub mod session;
pub mod transfer;

pub use bus::{BusStats, Endpoint, Envelope, FaultConfig, MessageBus};
pub use event::{EventQueue, SimTime};
pub use metrics::{Histogram, ResponseStats};
pub use server::{QueueingServer, ServiceOutcome};
pub use session::{simulate_page, SessionEvent, SessionTimeline, StreamSide};
pub use transfer::{parallel_page_time, pipeline_time, ConnectionProfile, StreamPlan};
