//! Persistent-connection transfer timing.
//!
//! HTTP requests for a page's objects are pipelined over one persistent
//! TCP connection per server (paper §3, citing Mogul's persistent-HTTP
//! work): the client pays the connection overhead once, then payloads
//! stream back-to-back at the connection's transfer rate. A page download
//! is two such streams in parallel — local server and repository — and
//! completes when the slower stream finishes (Eq. 5).
//!
//! This module is the single place transfer arithmetic lives: the analytic
//! cost model, the perturbed trace replay and the queueing extension all
//! call the same functions, so they cannot drift apart.

use mmrepl_model::{Bytes, BytesPerSec, Secs};
use serde::{Deserialize, Serialize};

/// One end-to-end connection: setup/processing overhead plus a steady
/// transfer rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnectionProfile {
    /// `Ovhd(·)` — TCP setup plus HTTP processing latency, paid once per
    /// connection.
    pub overhead: Secs,
    /// Steady payload rate for this connection.
    pub rate: BytesPerSec,
}

impl ConnectionProfile {
    /// Creates a profile, panicking on invalid inputs (negative overhead,
    /// non-positive rate) — these are programming errors, not data.
    pub fn new(overhead: Secs, rate: BytesPerSec) -> Self {
        assert!(overhead.is_valid(), "invalid overhead {overhead:?}");
        assert!(rate.is_valid(), "invalid rate {rate:?}");
        ConnectionProfile { overhead, rate }
    }

    /// Pure payload transfer time for `size` bytes (no overhead).
    #[inline]
    pub fn transfer_time(&self, size: Bytes) -> Secs {
        size / self.rate
    }

    /// Overhead plus payload time — a single-object fetch on a fresh
    /// connection (how optional objects are fetched, Eq. 6).
    #[inline]
    pub fn single_fetch(&self, size: Bytes) -> Secs {
        self.overhead + self.transfer_time(size)
    }
}

/// A pipelined download stream: one connection carrying a sequence of
/// payloads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamPlan {
    /// The connection the payloads ride on.
    pub profile: ConnectionProfile,
    /// Payload sizes in download order.
    pub payloads: Vec<Bytes>,
}

impl StreamPlan {
    /// An empty stream on `profile`.
    pub fn empty(profile: ConnectionProfile) -> Self {
        StreamPlan {
            profile,
            payloads: Vec::new(),
        }
    }

    /// Appends a payload to the pipeline.
    pub fn push(&mut self, size: Bytes) {
        self.payloads.push(size);
    }

    /// Total bytes queued on the stream.
    pub fn total_bytes(&self) -> Bytes {
        self.payloads.iter().copied().sum()
    }

    /// Completion time of the whole stream: overhead + total payload time,
    /// or **zero** when the stream carries nothing (the connection is
    /// never opened — see the Eq. 4 note in `mmrepl-model::cost`).
    pub fn total_time(&self) -> Secs {
        if self.payloads.is_empty() {
            Secs::ZERO
        } else {
            self.profile.overhead + self.profile.transfer_time(self.total_bytes())
        }
    }

    /// Per-payload completion times (prefix sums) — when each object
    /// finishes arriving. Used by the queueing extension to interleave
    /// object arrivals with other events.
    pub fn completion_times(&self) -> Vec<Secs> {
        let mut out = Vec::with_capacity(self.payloads.len());
        let mut t = self.profile.overhead;
        for &p in &self.payloads {
            t += self.profile.transfer_time(p);
            out.push(t);
        }
        out
    }

    /// Whether the stream carries any payload.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }
}

/// Overhead + pipelined payload time for `payloads` on `profile`; zero for
/// an empty payload list. The free-function form of
/// [`StreamPlan::total_time`] for callers that don't want to allocate.
pub fn pipeline_time(profile: ConnectionProfile, payloads: &[Bytes]) -> Secs {
    if payloads.is_empty() {
        return Secs::ZERO;
    }
    let total: Bytes = payloads.iter().copied().sum();
    profile.overhead + profile.transfer_time(total)
}

/// Eq. 5 — the response time of a page served by two parallel streams:
/// the local stream (HTML + locally-replicated objects) and the repository
/// stream (everything else). Completion is the max of the two.
pub fn parallel_page_time(local: &StreamPlan, remote: &StreamPlan) -> Secs {
    local.total_time().max(remote.total_time())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ovhd: f64, rate_kib: f64) -> ConnectionProfile {
        ConnectionProfile::new(Secs(ovhd), BytesPerSec::kib_per_sec(rate_kib))
    }

    #[test]
    fn single_fetch_is_overhead_plus_payload() {
        let p = profile(2.0, 1.0);
        let t = p.single_fetch(Bytes::kib(10));
        assert!((t.get() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_takes_zero_time() {
        let s = StreamPlan::empty(profile(2.0, 1.0));
        assert!(s.is_empty());
        assert_eq!(s.total_time(), Secs::ZERO);
        assert!(s.completion_times().is_empty());
        assert_eq!(pipeline_time(profile(2.0, 1.0), &[]), Secs::ZERO);
    }

    #[test]
    fn pipeline_pays_overhead_once() {
        let p = profile(1.0, 10.0);
        let payloads = [Bytes::kib(10), Bytes::kib(20), Bytes::kib(30)];
        let t = pipeline_time(p, &payloads);
        // 1 + (10+20+30)/10 = 7, NOT 3 + 6 (per-request overheads).
        assert!((t.get() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn stream_plan_matches_free_function() {
        let p = profile(1.5, 5.0);
        let mut s = StreamPlan::empty(p);
        for kib in [5u64, 10, 15] {
            s.push(Bytes::kib(kib));
        }
        assert_eq!(s.total_time(), pipeline_time(p, &s.payloads));
        assert_eq!(s.total_bytes(), Bytes::kib(30));
    }

    #[test]
    fn completion_times_are_prefix_sums() {
        let p = profile(1.0, 1.0);
        let mut s = StreamPlan::empty(p);
        s.push(Bytes::kib(2));
        s.push(Bytes::kib(3));
        let times = s.completion_times();
        assert_eq!(times.len(), 2);
        assert!((times[0].get() - 3.0).abs() < 1e-12); // 1 + 2
        assert!((times[1].get() - 6.0).abs() < 1e-12); // 1 + 2 + 3
                                                       // Last completion equals the stream total.
        assert_eq!(*times.last().unwrap(), s.total_time());
    }

    #[test]
    fn parallel_time_is_max_of_streams() {
        let local = {
            let mut s = StreamPlan::empty(profile(1.0, 10.0));
            s.push(Bytes::kib(90)); // 1 + 9 = 10
            s
        };
        let remote = {
            let mut s = StreamPlan::empty(profile(2.0, 1.0));
            s.push(Bytes::kib(3)); // 2 + 3 = 5
            s
        };
        assert!((parallel_page_time(&local, &remote).get() - 10.0).abs() < 1e-12);
        // Empty remote stream contributes zero, not its overhead.
        let empty_remote = StreamPlan::empty(profile(2.0, 1.0));
        assert!((parallel_page_time(&local, &empty_remote).get() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn faster_rate_shortens_stream() {
        let slow = pipeline_time(profile(1.0, 1.0), &[Bytes::kib(100)]);
        let fast = pipeline_time(profile(1.0, 10.0), &[Bytes::kib(100)]);
        assert!(fast < slow);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn profile_rejects_zero_rate() {
        let _ = ConnectionProfile::new(Secs(1.0), BytesPerSec(0.0));
    }

    #[test]
    #[should_panic(expected = "invalid overhead")]
    fn profile_rejects_negative_overhead() {
        let _ = ConnectionProfile::new(Secs(-1.0), BytesPerSec(100.0));
    }
}
