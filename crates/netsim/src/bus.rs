//! Control-plane message bus.
//!
//! Section 4's off-loading negotiation is a real distributed protocol:
//! sites send status messages `(Space(S_i), P(S_i), P(S_i, R))`, the
//! repository replies with workload assignments, sites acknowledge with
//! what they could absorb, possibly over several rounds. Simulating the
//! exchange — rather than calling a function — keeps the algorithm honest
//! about what information each party actually has, and lets experiments
//! report protocol cost (messages, rounds, elapsed control-plane time).

use crate::event::{EventQueue, SimTime};
use mmrepl_model::{Secs, SiteId};
use serde::{Deserialize, Serialize};

/// A protocol participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The central repository `R`.
    Repository,
    /// A local site `S_i`.
    Site(SiteId),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Repository => write!(f, "R"),
            Endpoint::Site(s) => write!(f, "{s}"),
        }
    }
}

/// A delivered message.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// When the sender posted it.
    pub sent_at: SimTime,
    /// When it arrives at the receiver.
    pub deliver_at: SimTime,
    /// The payload.
    pub payload: M,
}

/// Aggregate protocol cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Messages posted.
    pub sent: u64,
    /// Messages delivered so far.
    pub delivered: u64,
}

/// An in-memory, deterministic message bus with fixed one-way latency per
/// hop. Messages between the same pair preserve order (equal-time delivery
/// is FIFO via the event queue's stable ordering).
pub struct MessageBus<M> {
    queue: EventQueue<Envelope<M>>,
    latency: Secs,
    stats: BusStats,
}

impl<M> MessageBus<M> {
    /// A bus where every hop takes `latency` seconds one-way. The Table 1
    /// estimates put client-repository RTT at 200 ms, so 100 ms one-way is
    /// the natural default for site-repository control traffic.
    pub fn new(latency: Secs) -> Self {
        assert!(latency.is_valid(), "invalid bus latency {latency:?}");
        MessageBus {
            queue: EventQueue::new(),
            latency,
            stats: BusStats::default(),
        }
    }

    /// Posts `payload` from `from` to `to`; it will arrive one latency
    /// later.
    pub fn send(&mut self, from: Endpoint, to: Endpoint, payload: M) {
        let sent_at = self.queue.now();
        let deliver_at = sent_at.after(self.latency.get());
        self.stats.sent += 1;
        self.queue.schedule(
            deliver_at,
            Envelope {
                from,
                to,
                sent_at,
                deliver_at,
                payload,
            },
        );
    }

    /// Delivers the next message in time order, advancing the clock.
    pub fn deliver_next(&mut self) -> Option<Envelope<M>> {
        let (_, env) = self.queue.pop()?;
        self.stats.delivered += 1;
        Some(env)
    }

    /// Delivers every message currently in flight (messages sent *during*
    /// the drain are delivered too), applying `f` to each.
    pub fn drain(&mut self, mut f: impl FnMut(&mut Self, Envelope<M>)) {
        while let Some(env) = self.deliver_next() {
            f(self, env);
        }
    }

    /// Current bus time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.pending()
    }

    /// Protocol cost so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Secs {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_after_latency() {
        let mut bus: MessageBus<&str> = MessageBus::new(Secs(0.1));
        bus.send(
            Endpoint::Site(SiteId::new(0)),
            Endpoint::Repository,
            "status",
        );
        let env = bus.deliver_next().unwrap();
        assert_eq!(env.payload, "status");
        assert_eq!(env.sent_at, SimTime::ZERO);
        assert!((env.deliver_at.get() - 0.1).abs() < 1e-12);
        assert!((bus.now().get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut bus: MessageBus<u32> = MessageBus::new(Secs(0.05));
        let s = Endpoint::Site(SiteId::new(1));
        for i in 0..5 {
            bus.send(s, Endpoint::Repository, i);
        }
        let order: Vec<u32> =
            std::iter::from_fn(|| bus.deliver_next().map(|e| e.payload)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn request_reply_takes_two_latencies() {
        let mut bus: MessageBus<&str> = MessageBus::new(Secs(0.1));
        bus.send(
            Endpoint::Repository,
            Endpoint::Site(SiteId::new(2)),
            "assign",
        );
        let req = bus.deliver_next().unwrap();
        assert_eq!(req.payload, "assign");
        // Reply is posted at delivery time.
        bus.send(req.to, req.from, "ack");
        let reply = bus.deliver_next().unwrap();
        assert_eq!(reply.payload, "ack");
        assert!((reply.deliver_at.get() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn drain_handles_cascading_sends() {
        // Repository broadcasts; each site acks; repository counts acks.
        let mut bus: MessageBus<&str> = MessageBus::new(Secs(0.1));
        for i in 0..3 {
            bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(i)), "req");
        }
        let mut acks = 0;
        bus.drain(|bus, env| match env.payload {
            "req" => bus.send(env.to, env.from, "ack"),
            "ack" => acks += 1,
            _ => unreachable!(),
        });
        assert_eq!(acks, 3);
        assert_eq!(
            bus.stats(),
            BusStats {
                sent: 6,
                delivered: 6
            }
        );
        assert_eq!(bus.in_flight(), 0);
    }

    #[test]
    fn stats_track_sent_vs_delivered() {
        let mut bus: MessageBus<()> = MessageBus::new(Secs(1.0));
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(0)), ());
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(1)), ());
        assert_eq!(bus.stats().sent, 2);
        assert_eq!(bus.stats().delivered, 0);
        assert_eq!(bus.in_flight(), 2);
        bus.deliver_next();
        assert_eq!(bus.stats().delivered, 1);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::Repository.to_string(), "R");
        assert_eq!(Endpoint::Site(SiteId::new(3)).to_string(), "S3");
    }

    #[test]
    #[should_panic(expected = "invalid bus latency")]
    fn rejects_negative_latency() {
        let _: MessageBus<()> = MessageBus::new(Secs(-0.1));
    }
}
