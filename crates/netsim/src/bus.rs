//! Control-plane message bus.
//!
//! Section 4's off-loading negotiation is a real distributed protocol:
//! sites send status messages `(Space(S_i), P(S_i), P(S_i, R))`, the
//! repository replies with workload assignments, sites acknowledge with
//! what they could absorb, possibly over several rounds. Simulating the
//! exchange — rather than calling a function — keeps the algorithm honest
//! about what information each party actually has, and lets experiments
//! report protocol cost (messages, rounds, elapsed control-plane time).
//!
//! The bus is also the **fault-injection surface** for the asynchronous
//! negotiation (`mmrepl_core::negotiate`): a seeded [`FaultConfig`] makes
//! it drop, duplicate, reorder and jitter messages deterministically, and
//! [`BusStats`] counts every fate so accounting closes exactly:
//!
//! ```text
//! sent + duplicated_extra == delivered + dropped + in_flight
//! ```
//!
//! (each `send` produces one envelope, a duplication fault produces one
//! *extra* envelope, and every scheduled envelope is eventually delivered
//! or still in flight; drops consume a send without scheduling anything).

use crate::event::{EventQueue, SimTime};
use mmrepl_model::{Secs, SiteId};
use serde::{Deserialize, Serialize};

/// A protocol participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The central repository `R`.
    Repository,
    /// A local site `S_i`.
    Site(SiteId),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Repository => write!(f, "R"),
            Endpoint::Site(s) => write!(f, "{s}"),
        }
    }
}

/// A delivered message.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Bus-assigned sequence number, unique per `send` call and shared by
    /// fault-injected duplicate copies — receivers dedup on it.
    pub seq: u64,
    /// When the sender posted it.
    pub sent_at: SimTime,
    /// When it arrives at the receiver.
    pub deliver_at: SimTime,
    /// The payload.
    pub payload: M,
}

/// Aggregate protocol cost and fault accounting.
///
/// Conservation law (property-tested):
/// `sent + duplicated_extra == delivered + dropped + in_flight`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Messages posted (`send` calls).
    pub sent: u64,
    /// Envelopes delivered so far (duplicate copies count individually).
    pub delivered: u64,
    /// Sends swallowed by a drop fault (nothing was scheduled).
    #[serde(default)]
    pub dropped: u64,
    /// *Extra* envelope copies scheduled by duplication faults.
    #[serde(default)]
    pub duplicated_extra: u64,
    /// Envelopes whose delivery was pushed past at least one later send
    /// by a reorder fault.
    #[serde(default)]
    pub reordered: u64,
    /// Envelopes that picked up a nonzero jitter delay.
    #[serde(default)]
    pub jittered: u64,
}

/// Seeded control-plane fault knobs. All probabilities are per-`send`
/// rolls on a deterministic [splitmix64] stream, so a scenario replays
/// bit-identically from its seed.
///
/// [splitmix64]: https://prng.di.unimi.it/splitmix64.c
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a sent message is silently lost.
    pub drop: f64,
    /// Probability an extra copy of the message is delivered too.
    pub duplicate: f64,
    /// Probability the message is held back long enough for later sends
    /// to overtake it (delivery delayed by 1–2 extra latencies).
    pub reorder: f64,
    /// Maximum extra uniform delivery delay, seconds (0 = no jitter).
    pub jitter: Secs,
    /// RNG seed for the fault stream.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all — the deterministic fixed-latency bus.
    pub fn reliable() -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            jitter: Secs(0.0),
            seed: 0,
        }
    }

    /// A mildly lossy WAN: occasional loss, duplication and reordering
    /// with sub-latency jitter.
    pub fn lossy(seed: u64) -> Self {
        FaultConfig {
            drop: 0.10,
            duplicate: 0.05,
            reorder: 0.10,
            jitter: Secs(0.05),
            seed,
        }
    }

    /// An adversarial control plane: heavy loss, duplication, reordering
    /// and multi-latency jitter.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            drop: 0.25,
            duplicate: 0.15,
            reorder: 0.25,
            jitter: Secs(0.2),
            seed,
        }
    }

    /// Whether every knob is zero (the reliable fast path).
    pub fn is_reliable(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0 && self.jitter.get() == 0.0
    }

    /// Validates the knobs: probabilities in `[0, 1)` (a drop rate of 1
    /// would make every protocol spin forever) and finite non-negative
    /// jitter.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("fault {name} probability {p} not in [0, 1)"));
            }
        }
        if !self.jitter.is_valid() {
            return Err(format!("invalid fault jitter {:?}", self.jitter));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::reliable()
    }
}

/// splitmix64 — tiny, seedable, std-only; good enough to decorrelate
/// fault rolls and fully deterministic per seed.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An in-memory, deterministic message bus with fixed one-way latency per
/// hop and optional seeded fault injection. Messages between the same
/// pair preserve order on a reliable bus (equal-time delivery is FIFO via
/// the event queue's `(time, seq)` ordering); a faulty bus may drop,
/// duplicate, reorder or delay them — deterministically per seed.
pub struct MessageBus<M> {
    queue: EventQueue<Envelope<M>>,
    latency: Secs,
    stats: BusStats,
    faults: FaultConfig,
    rng: SplitMix64,
    next_seq: u64,
}

impl<M: Clone> MessageBus<M> {
    /// A bus where every hop takes `latency` seconds one-way. The Table 1
    /// estimates put client-repository RTT at 200 ms, so 100 ms one-way is
    /// the natural default for site-repository control traffic.
    pub fn new(latency: Secs) -> Self {
        Self::with_faults(latency, FaultConfig::reliable())
    }

    /// A bus with seeded fault injection on top of the base latency.
    pub fn with_faults(latency: Secs, faults: FaultConfig) -> Self {
        assert!(latency.is_valid(), "invalid bus latency {latency:?}");
        faults
            .validate()
            .unwrap_or_else(|e| panic!("invalid bus faults: {e}"));
        MessageBus {
            queue: EventQueue::new(),
            latency,
            stats: BusStats::default(),
            faults,
            rng: SplitMix64(faults.seed ^ 0x6D6D_7265_706C_0B05),
            next_seq: 0,
        }
    }

    /// Posts `payload` from `from` to `to`. On a reliable bus it arrives
    /// exactly one latency later; with faults configured it may be
    /// dropped, duplicated, reordered past later sends, or jittered.
    /// Returns the bus-assigned sequence number (fault copies share it).
    pub fn send(&mut self, from: Endpoint, to: Endpoint, payload: M) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.sent += 1;
        mmrepl_obs::counter_add("netsim.bus.sent", 1);
        let sent_at = self.queue.now();

        if self.faults.is_reliable() {
            let deliver_at = sent_at.after(self.latency.get());
            self.queue.schedule(
                deliver_at,
                Envelope {
                    from,
                    to,
                    seq,
                    sent_at,
                    deliver_at,
                    payload,
                },
            );
            return seq;
        }

        // Fault rolls happen in a fixed order per send — drop, jitter,
        // reorder, duplicate — so the stream stays aligned across replays
        // regardless of which faults fire.
        let drop_roll = self.rng.next_f64();
        let jitter_roll = self.rng.next_f64();
        let reorder_roll = self.rng.next_f64();
        let dup_roll = self.rng.next_f64();
        let dup_offset_roll = self.rng.next_f64();

        if drop_roll < self.faults.drop {
            self.stats.dropped += 1;
            mmrepl_obs::counter_add("netsim.bus.dropped", 1);
            return seq;
        }

        let mut delay = self.latency.get();
        let jitter = self.faults.jitter.get() * jitter_roll;
        if self.faults.jitter.get() > 0.0 && jitter > 0.0 {
            self.stats.jittered += 1;
            delay += jitter;
        }
        if reorder_roll < self.faults.reorder {
            // Hold the message back past its own latency window so any
            // message sent within the next 1–2 latencies overtakes it.
            self.stats.reordered += 1;
            mmrepl_obs::counter_add("netsim.bus.reordered", 1);
            delay += self.latency.get() * (1.0 + reorder_roll / self.faults.reorder.max(1e-12));
        }
        let deliver_at = sent_at.after(delay);
        self.queue.schedule(
            deliver_at,
            Envelope {
                from,
                to,
                seq,
                sent_at,
                deliver_at,
                payload: payload.clone(),
            },
        );
        if dup_roll < self.faults.duplicate {
            // The copy trails the original by a fraction of a latency.
            self.stats.duplicated_extra += 1;
            mmrepl_obs::counter_add("netsim.bus.duplicated", 1);
            let copy_at = deliver_at.after(self.latency.get() * (0.1 + 0.9 * dup_offset_roll));
            self.queue.schedule(
                copy_at,
                Envelope {
                    from,
                    to,
                    seq,
                    sent_at,
                    deliver_at: copy_at,
                    payload,
                },
            );
        }
        seq
    }

    /// Delivers the next message in time order, advancing the clock.
    pub fn deliver_next(&mut self) -> Option<Envelope<M>> {
        let (_, env) = self.queue.pop()?;
        self.stats.delivered += 1;
        if mmrepl_obs::enabled() {
            mmrepl_obs::counter_add("netsim.bus.delivered", 1);
            mmrepl_obs::gauge_set("netsim.bus.in_flight", self.in_flight() as f64);
        }
        Some(env)
    }

    /// Delivers up to `fuel` messages in time order, applying `f` to
    /// each; messages sent *during* the drain are eligible too. Returns
    /// the number still in flight when the fuel ran out (0 = drained).
    ///
    /// The fuel bound is what keeps reply-producing handlers safe: an
    /// unbounded drain over a ping-pong exchange (every delivery sends a
    /// new message) never observes an empty queue and livelocks. Callers
    /// that know their protocol quiesces can size `fuel` generously and
    /// treat a nonzero return as the protocol failing to settle.
    pub fn drain(&mut self, fuel: usize, mut f: impl FnMut(&mut Self, Envelope<M>)) -> usize {
        for _ in 0..fuel {
            match self.deliver_next() {
                Some(env) => f(self, env),
                None => return 0,
            }
        }
        self.in_flight()
    }

    /// Delivery time of the next in-flight message, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the bus clock to `at` without delivering anything — the
    /// timeout primitive: a negotiator that gives up waiting for a reply
    /// still pays the waited control-plane time.
    ///
    /// # Panics
    /// Panics if a message would be delivered before `at`.
    pub fn advance_to(&mut self, at: SimTime) {
        self.queue.advance_to(at);
    }

    /// Current bus time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.pending()
    }

    /// Protocol cost so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Secs {
        self.latency
    }

    /// The configured fault knobs.
    pub fn faults(&self) -> FaultConfig {
        self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_after_latency() {
        let mut bus: MessageBus<&str> = MessageBus::new(Secs(0.1));
        bus.send(
            Endpoint::Site(SiteId::new(0)),
            Endpoint::Repository,
            "status",
        );
        let env = bus.deliver_next().unwrap();
        assert_eq!(env.payload, "status");
        assert_eq!(env.seq, 0);
        assert_eq!(env.sent_at, SimTime::ZERO);
        assert!((env.deliver_at.get() - 0.1).abs() < 1e-12);
        assert!((bus.now().get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut bus: MessageBus<u32> = MessageBus::new(Secs(0.05));
        let s = Endpoint::Site(SiteId::new(1));
        for i in 0..5 {
            bus.send(s, Endpoint::Repository, i);
        }
        let order: Vec<u32> =
            std::iter::from_fn(|| bus.deliver_next().map(|e| e.payload)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn request_reply_takes_two_latencies() {
        let mut bus: MessageBus<&str> = MessageBus::new(Secs(0.1));
        bus.send(
            Endpoint::Repository,
            Endpoint::Site(SiteId::new(2)),
            "assign",
        );
        let req = bus.deliver_next().unwrap();
        assert_eq!(req.payload, "assign");
        // Reply is posted at delivery time.
        bus.send(req.to, req.from, "ack");
        let reply = bus.deliver_next().unwrap();
        assert_eq!(reply.payload, "ack");
        assert!((reply.deliver_at.get() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn drain_handles_cascading_sends() {
        // Repository broadcasts; each site acks; repository counts acks.
        let mut bus: MessageBus<&str> = MessageBus::new(Secs(0.1));
        for i in 0..3 {
            bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(i)), "req");
        }
        let mut acks = 0;
        let left = bus.drain(64, |bus, env| match env.payload {
            "req" => {
                bus.send(env.to, env.from, "ack");
            }
            "ack" => acks += 1,
            _ => unreachable!(),
        });
        assert_eq!(left, 0);
        assert_eq!(acks, 3);
        assert_eq!(
            bus.stats(),
            BusStats {
                sent: 6,
                delivered: 6,
                ..BusStats::default()
            }
        );
        assert_eq!(bus.in_flight(), 0);
    }

    /// The livelock regression: a ping-pong handler (every delivery sends
    /// a reply) means the queue never empties. The fuel bound must stop
    /// the drain and report the in-flight remainder instead of spinning
    /// forever.
    #[test]
    fn drain_fuel_bounds_a_ping_pong_livelock() {
        let mut bus: MessageBus<u64> = MessageBus::new(Secs(0.01));
        let site = Endpoint::Site(SiteId::new(0));
        bus.send(Endpoint::Repository, site, 0);
        let mut deliveries = 0u64;
        let left = bus.drain(100, |bus, env| {
            deliveries += 1;
            // Pong: reply forever.
            bus.send(env.to, env.from, env.payload + 1);
        });
        assert_eq!(deliveries, 100, "fuel must cap deliveries exactly");
        assert_eq!(left, 1, "the last pong is still in flight");
        assert_eq!(bus.in_flight(), 1);
        // The bound is per-call: a fresh drain picks the exchange back up.
        let left = bus.drain(10, |bus, env| {
            bus.send(env.to, env.from, env.payload + 1);
        });
        assert_eq!(left, 1);
    }

    #[test]
    fn stats_track_sent_vs_delivered() {
        let mut bus: MessageBus<()> = MessageBus::new(Secs(1.0));
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(0)), ());
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(1)), ());
        assert_eq!(bus.stats().sent, 2);
        assert_eq!(bus.stats().delivered, 0);
        assert_eq!(bus.in_flight(), 2);
        bus.deliver_next();
        assert_eq!(bus.stats().delivered, 1);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::Repository.to_string(), "R");
        assert_eq!(Endpoint::Site(SiteId::new(3)).to_string(), "S3");
    }

    #[test]
    #[should_panic(expected = "invalid bus latency")]
    fn rejects_negative_latency() {
        let _: MessageBus<()> = MessageBus::new(Secs(-0.1));
    }

    #[test]
    #[should_panic(expected = "invalid bus faults")]
    fn rejects_certain_drop() {
        let _: MessageBus<()> = MessageBus::with_faults(
            Secs(0.1),
            FaultConfig {
                drop: 1.0,
                ..FaultConfig::reliable()
            },
        );
    }

    #[test]
    fn seeded_faults_replay_bit_identically() {
        let run = |seed: u64| -> (BusStats, Vec<(u64, f64)>) {
            let mut bus: MessageBus<u32> =
                MessageBus::with_faults(Secs(0.1), FaultConfig::chaos(seed));
            for i in 0..50 {
                bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(i % 4)), i);
            }
            let mut seen = Vec::new();
            while let Some(env) = bus.deliver_next() {
                seen.push((env.seq, env.deliver_at.get()));
            }
            (bus.stats(), seen)
        };
        let (sa, da) = run(7);
        let (sb, db) = run(7);
        assert_eq!(sa, sb);
        assert_eq!(da, db);
        // A different seed must actually change the fault pattern.
        let (sc, dc) = run(8);
        assert!(da != dc || sa != sc);
    }

    #[test]
    fn fault_accounting_closes() {
        let mut bus: MessageBus<u32> = MessageBus::with_faults(Secs(0.1), FaultConfig::chaos(42));
        for i in 0..200 {
            bus.send(Endpoint::Site(SiteId::new(i % 3)), Endpoint::Repository, i);
        }
        // Deliver half, leave the rest in flight: the ledger must close
        // mid-stream too.
        for _ in 0..bus.in_flight() / 2 {
            bus.deliver_next();
        }
        let st = bus.stats();
        assert!(st.dropped > 0, "chaos config never dropped in 200 sends");
        assert!(st.duplicated_extra > 0);
        assert!(st.reordered > 0);
        assert_eq!(
            st.sent + st.duplicated_extra,
            st.delivered + st.dropped + bus.in_flight() as u64
        );
    }

    #[test]
    fn duplicates_share_the_original_seq() {
        let cfg = FaultConfig {
            duplicate: 0.999,
            ..FaultConfig::reliable()
        };
        let mut bus: MessageBus<&str> = MessageBus::with_faults(Secs(0.1), cfg);
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(0)), "m");
        let first = bus.deliver_next().unwrap();
        let copy = bus.deliver_next().unwrap();
        assert_eq!(first.seq, copy.seq);
        assert_eq!(first.payload, copy.payload);
        assert!(copy.deliver_at > first.deliver_at);
        assert_eq!(bus.stats().duplicated_extra, 1);
    }

    #[test]
    fn reorder_lets_later_sends_overtake() {
        // Force a reorder on the first send only by making the roll
        // deterministic: with reorder = 0.999 every message reorders, so
        // send one reorderable message then switch to checking that its
        // delivery trails a later message's.
        let cfg = FaultConfig {
            reorder: 0.999,
            ..FaultConfig::reliable()
        };
        let mut bus: MessageBus<u32> = MessageBus::with_faults(Secs(0.1), cfg);
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(0)), 0);
        let mut order = Vec::new();
        while let Some(env) = bus.deliver_next() {
            order.push(env.payload);
        }
        assert_eq!(order, vec![0]);
        assert_eq!(bus.stats().reordered, 1);
        // Delivery took more than one latency: a message sent in that
        // window would have overtaken it.
        assert!(bus.now().get() > 0.2 - 1e-12);
    }

    #[test]
    fn advance_to_models_timeouts() {
        let mut bus: MessageBus<()> = MessageBus::new(Secs(0.1));
        bus.advance_to(SimTime::new(1.5));
        assert_eq!(bus.now(), SimTime::new(1.5));
        // Sends after the wait depart from the advanced clock.
        bus.send(Endpoint::Repository, Endpoint::Site(SiteId::new(0)), ());
        let env = bus.deliver_next().unwrap();
        assert!((env.deliver_at.get() - 1.6).abs() < 1e-12);
    }
}
