//! Event-driven page-download sessions.
//!
//! The closed-form pipeline arithmetic in [`crate::transfer`] is what the
//! experiments use; this module simulates the *same* download as discrete
//! events — connection established, each payload completed — on the
//! [`crate::event::EventQueue`]. Its purpose is cross-validation: the
//! event-driven end time must equal the closed form exactly, which the
//! unit and property tests assert. It also gives downstream users an
//! observable timeline (when did object `k` arrive?) that the closed form
//! cannot provide.

use crate::event::{EventQueue, SimTime};
use crate::transfer::StreamPlan;
use serde::{Deserialize, Serialize};

/// Which of the page's two parallel streams an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamSide {
    /// The local-server connection (carries the HTML first).
    Local,
    /// The repository connection.
    Remote,
}

/// One observable milestone of a page download.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The connection finished setup and the first byte is flowing.
    Connected(StreamSide),
    /// Payload `index` (in stream order) fully arrived.
    PayloadComplete {
        /// Which stream delivered it.
        side: StreamSide,
        /// Index into that stream's payload list.
        index: u32,
    },
    /// The stream delivered everything and closed.
    StreamDone(StreamSide),
}

/// The full, time-ordered milestone log of one page download.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionTimeline {
    /// `(time, event)` pairs in non-decreasing time order.
    pub events: Vec<(SimTime, SessionEvent)>,
    /// When the page completed: the later `StreamDone` (or the only one).
    pub page_done: SimTime,
}

impl SessionTimeline {
    /// When `index` on `side` completed, if it exists.
    pub fn payload_time(&self, side: StreamSide, index: u32) -> Option<SimTime> {
        self.events.iter().find_map(|&(t, e)| match e {
            SessionEvent::PayloadComplete { side: s, index: i } if s == side && i == index => {
                Some(t)
            }
            _ => None,
        })
    }
}

/// Simulates the two parallel pipelined streams of one page request as
/// discrete events, starting at time zero. Empty streams produce no
/// events (the connection is never opened), matching
/// [`StreamPlan::total_time`]'s zero.
pub fn simulate_page(local: &StreamPlan, remote: &StreamPlan) -> SessionTimeline {
    let mut queue: EventQueue<SessionEvent> = EventQueue::new();
    for (side, plan) in [(StreamSide::Local, local), (StreamSide::Remote, remote)] {
        if plan.is_empty() {
            continue;
        }
        queue.schedule(
            SimTime::new(plan.profile.overhead.get()),
            SessionEvent::Connected(side),
        );
        let completions = plan.completion_times();
        for (i, t) in completions.iter().enumerate() {
            queue.schedule(
                SimTime::new(t.get()),
                SessionEvent::PayloadComplete {
                    side,
                    index: i as u32,
                },
            );
        }
        let done = completions.last().expect("non-empty stream");
        queue.schedule(SimTime::new(done.get()), SessionEvent::StreamDone(side));
    }

    let mut events = Vec::with_capacity(queue.pending());
    let mut page_done = SimTime::ZERO;
    while let Some((t, e)) = queue.pop() {
        if matches!(e, SessionEvent::StreamDone(_)) {
            page_done = page_done.max(t);
        }
        events.push((t, e));
    }
    SessionTimeline { events, page_done }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::{parallel_page_time, ConnectionProfile};
    use mmrepl_model::{Bytes, BytesPerSec, Secs};

    fn profile(ovhd: f64, rate_kib: f64) -> ConnectionProfile {
        ConnectionProfile::new(Secs(ovhd), BytesPerSec::kib_per_sec(rate_kib))
    }

    fn plan(p: ConnectionProfile, kib: &[u64]) -> StreamPlan {
        let mut s = StreamPlan::empty(p);
        for &k in kib {
            s.push(Bytes::kib(k));
        }
        s
    }

    #[test]
    fn event_end_time_matches_closed_form() {
        let local = plan(profile(1.0, 10.0), &[10, 50, 20]);
        let remote = plan(profile(2.0, 1.0), &[5]);
        let timeline = simulate_page(&local, &remote);
        let closed = parallel_page_time(&local, &remote);
        assert!((timeline.page_done.get() - closed.get()).abs() < 1e-12);
    }

    #[test]
    fn events_are_time_ordered_and_complete() {
        let local = plan(profile(1.5, 8.0), &[12, 400]);
        let remote = plan(profile(2.2, 1.0), &[60, 30]);
        let t = simulate_page(&local, &remote);
        // 2 connects + 4 payloads + 2 dones.
        assert_eq!(t.events.len(), 8);
        let mut last = 0.0;
        for &(time, _) in &t.events {
            assert!(time.get() >= last);
            last = time.get();
        }
        // Each payload has a timestamp equal to its prefix sum.
        let local_times = local.completion_times();
        for (i, lt) in local_times.iter().enumerate() {
            let observed = t.payload_time(StreamSide::Local, i as u32).unwrap();
            assert!((observed.get() - lt.get()).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_remote_stream_produces_no_remote_events() {
        let local = plan(profile(1.0, 10.0), &[10]);
        let remote = StreamPlan::empty(profile(2.0, 1.0));
        let t = simulate_page(&local, &remote);
        assert!(t.events.iter().all(|&(_, e)| match e {
            SessionEvent::Connected(s)
            | SessionEvent::StreamDone(s)
            | SessionEvent::PayloadComplete { side: s, .. } => s == StreamSide::Local,
        }));
        assert!((t.page_done.get() - local.total_time().get()).abs() < 1e-12);
    }

    #[test]
    fn connected_precedes_first_payload() {
        let local = plan(profile(1.0, 10.0), &[10]);
        let remote = plan(profile(2.0, 1.0), &[10]);
        let t = simulate_page(&local, &remote);
        for side in [StreamSide::Local, StreamSide::Remote] {
            let connect = t
                .events
                .iter()
                .find(|&&(_, e)| e == SessionEvent::Connected(side))
                .unwrap()
                .0;
            let first_payload = t.payload_time(side, 0).unwrap();
            assert!(connect <= first_payload);
        }
    }

    #[test]
    fn html_arrives_before_big_objects_on_the_same_stream() {
        // Pipelining means the 12 KiB HTML lands long before the 4 MiB
        // video sharing its connection.
        let local = plan(profile(1.5, 8.0), &[12, 4096]);
        let remote = StreamPlan::empty(profile(2.2, 1.0));
        let t = simulate_page(&local, &remote);
        let html = t.payload_time(StreamSide::Local, 0).unwrap();
        let video = t.payload_time(StreamSide::Local, 1).unwrap();
        assert!(html < video);
        assert!(video.get() - html.get() > 500.0);
    }
}
