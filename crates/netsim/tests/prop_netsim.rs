//! Property tests for the netsim substrate: statistics merging, event
//! ordering and transfer arithmetic.

use mmrepl_model::{Bytes, BytesPerSec, ReqPerSec, Secs, SiteId};
use mmrepl_netsim::{
    parallel_page_time, pipeline_time, simulate_page, ConnectionProfile, Endpoint, EventQueue,
    FaultConfig, MessageBus, QueueingServer, ResponseStats, SimTime, StreamPlan,
};
use proptest::prelude::*;

proptest! {
    /// Merging split accumulators equals accumulating sequentially,
    /// regardless of the split.
    #[test]
    fn stats_merge_is_split_invariant(
        values in prop::collection::vec(0.001f64..10_000.0, 1..200),
        split in any::<u64>(),
    ) {
        let mut whole = ResponseStats::new();
        let mut a = ResponseStats::new();
        let mut b = ResponseStats::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(Secs(v));
            if (split >> (i % 64)) & 1 == 0 {
                a.record(Secs(v));
            } else {
                b.record(Secs(v));
            }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        let (am, wm) = (a.mean().unwrap().get(), whole.mean().unwrap().get());
        prop_assert!((am - wm).abs() <= 1e-9 * wm.max(1.0));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        if values.len() > 1 {
            let (asd, wsd) = (a.std_dev().unwrap(), whole.std_dev().unwrap());
            prop_assert!((asd - wsd).abs() <= 1e-6 * wsd.max(1.0));
        }
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(values in prop::collection::vec(0.01f64..5_000.0, 1..300)) {
        let mut s = ResponseStats::new();
        for &v in &values {
            s.record(Secs(v));
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0];
        let mut last = 0.0;
        for &q in &qs {
            let v = s.quantile(q).unwrap().get();
            prop_assert!(v >= last, "q{} = {} < {}", q, v, last);
            last = v;
        }
    }

    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::new(t), i);
        }
        let mut last_t = -1.0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = f64::NAN;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t.get() >= last_t);
            if t.get() == last_time {
                // FIFO among equal times: indices ascend.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < i));
            } else {
                seen_at_time.clear();
                last_time = t.get();
            }
            seen_at_time.push(i);
            last_t = t.get();
        }
        prop_assert_eq!(q.processed() as usize, times.len());
    }

    /// A FIFO server never reorders and never finishes before arrival +
    /// service.
    #[test]
    fn queueing_server_fifo_invariants(
        arrivals in prop::collection::vec((0.0f64..100.0, 0.1f64..20.0), 1..50),
        capacity in 0.5f64..100.0,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut server = QueueingServer::new(ReqPerSec(capacity));
        let mut last_finish = 0.0;
        for (t, n) in sorted {
            let out = server.admit(SimTime::new(t), n);
            prop_assert!(out.start.get() >= t);
            prop_assert!(out.start.get() >= last_finish - 1e-12);
            let service = n / capacity;
            prop_assert!((out.finish.get() - out.start.get() - service).abs() < 1e-9);
            last_finish = out.finish.get();
        }
    }

    /// The event-driven session simulation agrees exactly with the
    /// closed-form parallel page time, for arbitrary stream shapes.
    #[test]
    fn event_simulation_matches_closed_form(
        local_ovhd in 0.0f64..5.0,
        local_rate in 0.1f64..100.0,
        remote_ovhd in 0.0f64..5.0,
        remote_rate in 0.1f64..100.0,
        local_sizes in prop::collection::vec(1u64..2_000_000, 1..20),
        remote_sizes in prop::collection::vec(1u64..2_000_000, 0..20),
    ) {
        let mut local = StreamPlan::empty(ConnectionProfile::new(
            Secs(local_ovhd),
            BytesPerSec(local_rate * 1024.0),
        ));
        for s in local_sizes {
            local.push(Bytes(s));
        }
        let mut remote = StreamPlan::empty(ConnectionProfile::new(
            Secs(remote_ovhd),
            BytesPerSec(remote_rate * 1024.0),
        ));
        for s in remote_sizes {
            remote.push(Bytes(s));
        }
        let timeline = simulate_page(&local, &remote);
        let closed = parallel_page_time(&local, &remote);
        prop_assert!(
            (timeline.page_done.get() - closed.get()).abs() < 1e-9,
            "events {} vs closed form {}",
            timeline.page_done.get(),
            closed.get()
        );
        // The timeline is monotone.
        let mut last = 0.0;
        for (t, _) in &timeline.events {
            prop_assert!(t.get() >= last);
            last = t.get();
        }
    }

    /// Bus fault accounting closes at every observation point across
    /// arbitrary send/deliver interleavings and fault mixes.
    ///
    /// Ledger algebra: each `send` yields one scheduled envelope (or none,
    /// if dropped), a duplication fault yields one *extra* envelope, and
    /// every scheduled envelope is eventually delivered or still pending —
    /// so `sent + duplicated_extra == delivered + dropped + in_flight`.
    /// (The ISSUE statement `sent == delivered + dropped + duplicated_extra
    /// + in_flight` is this same law when duplicate copies are *excluded*
    /// from `delivered`; we count every arriving envelope in `delivered` —
    /// receivers dedup by `seq` — so the extra copies move to the other
    /// side of the equation.)
    #[test]
    fn bus_accounting_closes_under_faults(
        seed in any::<u64>(),
        drop in 0.0f64..0.9,
        duplicate in 0.0f64..0.9,
        reorder in 0.0f64..0.9,
        jitter in 0.0f64..0.5,
        // true = send a message, false = deliver one (no-op when empty).
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let faults = FaultConfig { drop, duplicate, reorder, jitter: Secs(jitter), seed };
        let mut bus: MessageBus<u32> = MessageBus::with_faults(Secs(0.1), faults);
        let check = |bus: &MessageBus<u32>| {
            let st = bus.stats();
            st.sent + st.duplicated_extra == st.delivered + st.dropped + bus.in_flight() as u64
        };
        let mut payload = 0u32;
        for op in ops {
            if op {
                payload += 1;
                let from = Endpoint::Site(SiteId::new(payload % 5));
                bus.send(from, Endpoint::Repository, payload);
            } else {
                let _ = bus.deliver_next();
            }
            prop_assert!(check(&bus), "ledger open mid-stream: {:?} + {} in flight",
                bus.stats(), bus.in_flight());
        }
        // Drain to quiescence: the ledger must close with in_flight = 0,
        // and a fuel-bounded drain with no reply handler always finishes.
        let left = bus.drain(usize::MAX, |_, _| {});
        prop_assert_eq!(left, 0);
        let st = bus.stats();
        prop_assert_eq!(st.sent + st.duplicated_extra, st.delivered + st.dropped);
    }

    /// Pipelining payloads on one connection is never slower than the sum
    /// of independent fetches (overhead paid once vs n times) and never
    /// faster than the pure transfer time.
    #[test]
    fn pipeline_bounds(
        ovhd in 0.0f64..5.0,
        rate in 0.1f64..100.0,
        sizes in prop::collection::vec(1u64..5_000_000, 1..30),
    ) {
        let profile = ConnectionProfile::new(Secs(ovhd), BytesPerSec(rate * 1024.0));
        let payloads: Vec<Bytes> = sizes.iter().map(|&s| Bytes(s)).collect();
        let pipelined = pipeline_time(profile, &payloads).get();
        let independent: f64 = payloads
            .iter()
            .map(|&p| profile.single_fetch(p).get())
            .sum();
        let pure: f64 = payloads.iter().map(|&p| profile.transfer_time(p).get()).sum();
        prop_assert!(pipelined <= independent + 1e-9);
        prop_assert!(pipelined + 1e-9 >= pure);
    }
}
