//! Streaming per-(site, page) request-rate estimation.
//!
//! The planner consumes the Table 1 frequency matrix `f(W_j)`; offline it
//! comes from "past access patterns" (Section 4.1). Online we rebuild it
//! live from the request stream: each page keeps a sliding-window counter,
//! and at every window close the windowed rate `count / duration` folds
//! into an exponentially weighted moving average. Counting is
//! order-insensitive within a window (a property test pins this), and on
//! a stationary trace the EWMA converges geometrically to the generator's
//! true rates.
//!
//! Windows close **per site**: sites serve different aggregate rates, so
//! the same number of requests spans different wall-clock durations.

use mmrepl_model::{PageId, ReqPerSec, Secs, SiteId, System};
use mmrepl_workload::SiteTrace;
use serde::{Deserialize, Serialize};

/// Estimator tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// EWMA weight of the newest window, in `(0, 1]`. `1.0` trusts the
    /// latest window alone (fast, noisy); small values smooth harder but
    /// track drift slower.
    pub ewma_alpha: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig { ewma_alpha: 0.7 }
    }
}

/// Live frequency matrix: one EWMA rate estimate per page, fed by
/// per-window request counts.
#[derive(Clone, Debug, PartialEq)]
pub struct RateEstimator {
    alpha: f64,
    /// Current rate estimate per page (req/s), seeded from the rates the
    /// initial plan was built against so the estimator starts agreeing
    /// with the planner instead of at zero.
    rates: Vec<f64>,
    /// Requests observed in the currently open window, per page.
    counts: Vec<u64>,
    /// Windows closed per site (diagnostics).
    windows: Vec<u64>,
}

impl RateEstimator {
    /// An estimator primed with `system`'s current (planned-for) rates.
    pub fn new(system: &System, config: EstimatorConfig) -> Self {
        assert!(
            config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "ewma_alpha {} outside (0, 1]",
            config.ewma_alpha
        );
        RateEstimator {
            alpha: config.ewma_alpha,
            rates: system.pages().values().map(|p| p.freq.get()).collect(),
            counts: vec![0; system.n_pages()],
            windows: vec![0; system.n_sites()],
        }
    }

    /// Records one page request in the open window.
    #[inline]
    pub fn observe(&mut self, page: PageId) {
        self.counts[page.index()] += 1;
    }

    /// Records every request of a trace (or trace window) in the open
    /// window. Pure counting — ingest order does not matter.
    pub fn ingest(&mut self, requests: &[mmrepl_workload::Request]) {
        for r in requests {
            self.observe(r.page);
        }
    }

    /// Records whole site traces (convenience over [`RateEstimator::ingest`]).
    pub fn ingest_traces(&mut self, traces: &[SiteTrace]) {
        for t in traces {
            self.ingest(&t.requests);
        }
    }

    /// Closes `site`'s open window, which spanned `duration` of virtual
    /// time: every page of the site folds `count / duration` into its
    /// EWMA and resets its counter.
    pub fn close_site_window(&mut self, system: &System, site: SiteId, duration: Secs) {
        assert!(duration.get() > 0.0, "window duration must be positive");
        for &p in system.pages_of(site) {
            let i = p.index();
            let windowed = self.counts[i] as f64 / duration.get();
            self.rates[i] = self.alpha * windowed + (1.0 - self.alpha) * self.rates[i];
            self.counts[i] = 0;
        }
        self.windows[site.index()] += 1;
    }

    /// The current rate estimate for `page`.
    #[inline]
    pub fn rate(&self, page: PageId) -> f64 {
        self.rates[page.index()]
    }

    /// All current rate estimates, page-id order.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Windows closed so far for `site`.
    pub fn windows_closed(&self, site: SiteId) -> u64 {
        self.windows[site.index()]
    }

    /// Materializes the live frequency matrix as a [`System`] the planner
    /// can consume in place of the static Table 1 rates: `base`'s
    /// structure and capacities with every page frequency replaced by its
    /// estimate.
    pub fn estimated_system(&self, base: &System) -> System {
        base.map_frequencies(|pid, _| ReqPerSec(self.rates[pid.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_workload::{generate_system, generate_trace, TraceConfig, WorkloadParams};

    fn setup() -> (System, Vec<SiteTrace>) {
        let params = WorkloadParams::small();
        let sys = generate_system(&params, 5).unwrap();
        let traces = generate_trace(&sys, &TraceConfig::from_params(&params), 5);
        (sys, traces)
    }

    #[test]
    fn primed_with_planned_rates() {
        let (sys, _) = setup();
        let est = RateEstimator::new(&sys, EstimatorConfig::default());
        for (pid, page) in sys.pages().iter() {
            assert_eq!(est.rate(pid), page.freq.get());
        }
        assert_eq!(est.estimated_system(&sys), sys);
    }

    #[test]
    fn window_close_moves_rates_toward_observed() {
        let (sys, traces) = setup();
        let mut est = RateEstimator::new(&sys, EstimatorConfig { ewma_alpha: 1.0 });
        est.ingest_traces(&traces);
        let site = traces[0].site;
        let total: f64 = sys
            .pages_of(site)
            .iter()
            .map(|&p| sys.page(p).freq.get())
            .sum();
        let duration = Secs(traces[0].len() as f64 / total);
        est.close_site_window(&sys, site, duration);
        assert_eq!(est.windows_closed(site), 1);
        // alpha = 1: estimate equals the windowed count exactly.
        let some_page = sys.pages_of(site)[0];
        let count = traces[0]
            .requests
            .iter()
            .filter(|r| r.page == some_page)
            .count() as f64;
        assert!((est.rate(some_page) - count / duration.get()).abs() < 1e-9);
        // Other sites' pages untouched (their windows are still open).
        let other = traces[1].site;
        for &p in sys.pages_of(other) {
            assert_eq!(est.rate(p), sys.page(p).freq.get());
        }
    }

    #[test]
    fn estimated_system_preserves_structure() {
        let (sys, traces) = setup();
        let mut est = RateEstimator::new(&sys, EstimatorConfig::default());
        est.ingest_traces(&traces);
        for t in &traces {
            est.close_site_window(&sys, t.site, Secs(10.0));
        }
        let est_sys = est.estimated_system(&sys);
        assert_eq!(est_sys.n_pages(), sys.n_pages());
        assert_eq!(est_sys.n_objects(), sys.n_objects());
        for (pid, page) in sys.pages().iter() {
            assert_eq!(est_sys.page(pid).compulsory, page.compulsory);
            assert_eq!(est_sys.page(pid).freq.get(), est.rate(pid));
        }
    }

    #[test]
    #[should_panic(expected = "ewma_alpha")]
    fn rejects_zero_alpha() {
        let (sys, _) = setup();
        let _ = RateEstimator::new(&sys, EstimatorConfig { ewma_alpha: 0.0 });
    }
}
