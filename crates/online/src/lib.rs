#![warn(missing_docs)]

//! # mmrepl-online
//!
//! The online control plane for the IPPS 2000 replication planner. The
//! paper plans offline from "past access patterns" and concedes (Section
//! 4.1) that the plan goes stale as access patterns drift; its only remedy
//! is re-running the whole algorithm off-peak. This crate closes the loop
//! at run time:
//!
//! * [`estimator`] — streaming per-(site, page) request-rate estimation:
//!   sliding-window counters folded into an EWMA at every window close,
//!   yielding a live frequency matrix the planner can consume;
//! * [`detector`] — drift detection with cooldown and hysteresis: replan
//!   only when estimated and planned-for rates diverge past a threshold;
//! * [`delta`] — churn-bounded incremental replanning: re-run the
//!   restorations for the *dirty sites only* (warm-started from the cached
//!   frequency-independent `PARTITION`), diff against the live plan, and
//!   apply the best ΔD-per-byte switches under a migration-byte budget;
//! * [`migrate`] — bandwidth-charged migration replay: new replicas
//!   travel a φ share of the repository link before they can serve, and
//!   foreground remote fetches are derated to `1 − φ` meanwhile.
//!
//! [`OnlineController`] wires the four together: feed it request windows,
//! and it estimates, detects, replans and migrates — `mmrepl-sim`'s
//! `online` experiment (E-X5) compares it against the stale plan, per-epoch
//! full replanning and LRU on identical traces.

pub mod delta;
pub mod detector;
pub mod estimator;
pub mod migrate;

pub use delta::{ChurnBudget, DeltaOutcome, DeltaPlanner, DeltaReport, SiteMigration};
pub use detector::{rate_divergence, DetectorConfig, DriftDecision, DriftDetector, HoldReason};
pub use estimator::{EstimatorConfig, RateEstimator};
pub use migrate::{MigrateConfig, MigrationQueue, OnlineReplayOutcome};

use mmrepl_core::ReplicationPolicy;
use mmrepl_model::{Placement, Secs, SiteId, System};
use mmrepl_workload::Request;
use serde::{Deserialize, Serialize};

/// Tuning for the whole control loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Rate-estimation knobs.
    pub estimator: EstimatorConfig,
    /// Drift-detection knobs.
    pub detector: DetectorConfig,
    /// Migration bytes allowed per replan.
    pub budget: ChurnBudget,
    /// Migration bandwidth share.
    pub migrate: MigrateConfig,
}

/// What one control step (window close) did.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlReport {
    /// Windows closed so far (this one included).
    pub window: u64,
    /// Per-site divergence between planned-for and estimated rates,
    /// site-id order.
    pub divergences: Vec<f64>,
    /// Sites whose detectors fired.
    pub dirty: Vec<SiteId>,
    /// The incremental replan, when one ran.
    pub delta: Option<DeltaReport>,
    /// Replica bytes that finished transferring in this window's off-peak
    /// drain (Section 4.1's "off-peak hours").
    pub offpeak_bytes: u64,
}

/// The closed control loop: estimate → detect → delta-replan → migrate.
#[derive(Clone, Debug)]
pub struct OnlineController {
    base: System,
    cfg: OnlineConfig,
    estimator: RateEstimator,
    detectors: Vec<DriftDetector>,
    planner: DeltaPlanner,
    /// The rates each page's current row was planned for (site-granular:
    /// a replan refreshes only the dirty sites' pages).
    planned: Vec<f64>,
    queues: Vec<MigrationQueue>,
    windows: u64,
    replans: u64,
}

impl OnlineController {
    /// Plans `system` cold and starts the loop around the result.
    pub fn new(system: &System, policy: ReplicationPolicy, cfg: OnlineConfig) -> Self {
        cfg.migrate.validate();
        let planner = DeltaPlanner::new(system, policy);
        let queues = system
            .sites()
            .ids()
            .map(|s| MigrationQueue::new(planner.live().stored_set(system, s)))
            .collect();
        OnlineController {
            base: system.clone(),
            estimator: RateEstimator::new(system, cfg.estimator),
            detectors: vec![DriftDetector::new(cfg.detector); system.n_sites()],
            planner,
            planned: system.pages().values().map(|p| p.freq.get()).collect(),
            queues,
            windows: 0,
            replans: 0,
            cfg,
        }
    }

    /// The live placement.
    pub fn placement(&self) -> &Placement {
        self.planner.live()
    }

    /// The configuration in use.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Serves one site's window of requests against the live placement,
    /// draining that site's migration queue on the side, and feeds every
    /// request to the rate estimator. Call [`OnlineController::end_window`]
    /// once all sites' windows are served.
    pub fn serve_window(
        &mut self,
        site: SiteId,
        requests: &[Request],
        duration: Secs,
    ) -> OnlineReplayOutcome {
        self.estimator.ingest(requests);
        migrate::replay_window(
            &self.base,
            site,
            requests,
            self.planner.live(),
            &mut self.queues[site.index()],
            duration,
            &self.cfg.migrate,
        )
    }

    /// Closes every site's estimation window (`durations` in site-id
    /// order), runs the drift detectors, and — if any fired — replans the
    /// dirty sites incrementally and schedules the resulting migrations.
    pub fn end_window(&mut self, durations: &[Secs]) -> ControlReport {
        assert_eq!(
            durations.len(),
            self.base.n_sites(),
            "one duration per site"
        );
        let mut divergences = Vec::with_capacity(self.base.n_sites());
        let mut dirty = Vec::new();
        for (i, site) in self.base.sites().ids().enumerate() {
            self.estimator
                .close_site_window(&self.base, site, durations[i]);
            let pages = self.base.pages_of(site);
            let planned: Vec<f64> = pages.iter().map(|&p| self.planned[p.index()]).collect();
            let estimated: Vec<f64> = pages.iter().map(|&p| self.estimator.rate(p)).collect();
            let div = rate_divergence(&planned, &estimated);
            divergences.push(div);
            if self.detectors[site.index()].observe(div).is_replan() {
                dirty.push(site);
            }
        }

        let delta = if dirty.is_empty() {
            None
        } else {
            let est_sys = self.estimator.estimated_system(&self.base);
            let outcome = self.planner.replan(&est_sys, &dirty, self.cfg.budget);
            for m in &outcome.migrations {
                self.queues[m.site.index()].enqueue(m);
            }
            for &s in &dirty {
                for &p in self.base.pages_of(s) {
                    self.planned[p.index()] = self.estimator.rate(p);
                }
            }
            self.replans += 1;
            Some(outcome.report)
        };
        // The off-peak maintenance window: scheduled transfers run at the
        // full link rate with no foreground traffic to contend with.
        let mut offpeak_bytes = 0u64;
        for site in self.base.sites().ids() {
            let q = &mut self.queues[site.index()];
            offpeak_bytes += match self.cfg.migrate.offpeak_secs {
                None => q.drain_all(),
                Some(s) => q.drain(s * self.base.site(site).repo_rate.get()),
            };
        }

        self.windows += 1;
        ControlReport {
            window: self.windows,
            divergences,
            dirty,
            delta,
            offpeak_bytes,
        }
    }

    /// The live rate estimator.
    pub fn estimator(&self) -> &RateEstimator {
        &self.estimator
    }

    /// One site's migration state.
    pub fn queue(&self, site: SiteId) -> &MigrationQueue {
        &self.queues[site.index()]
    }

    /// Windows closed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Incremental replans run so far.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Total migration bytes scheduled across all sites.
    pub fn bytes_scheduled(&self) -> u64 {
        self.queues.iter().map(|q| q.scheduled_bytes()).sum()
    }

    /// Total migration bytes that have physically arrived.
    pub fn bytes_completed(&self) -> u64 {
        self.queues.iter().map(|q| q.completed_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_workload::{generate_trace, DriftModel, SiteTrace, TraceConfig, WorkloadParams};

    fn setup(seed: u64) -> (System, WorkloadParams) {
        let params = WorkloadParams::small();
        // Tight storage makes the restorations frequency-sensitive — with
        // slack storage the whole plan is frequency-independent and drift
        // (correctly) never changes it.
        let sys = mmrepl_workload::generate_system(&params, seed)
            .unwrap()
            .with_storage_fraction(0.65)
            .with_processing_fraction(f64::INFINITY);
        (sys, params)
    }

    fn durations(sys: &System, traces: &[SiteTrace], windows: usize) -> Vec<Secs> {
        traces
            .iter()
            .map(|t| {
                let total: f64 = sys
                    .pages_of(t.site)
                    .iter()
                    .map(|&p| sys.page(p).freq.get())
                    .sum();
                Secs(t.len() as f64 / total / windows as f64)
            })
            .collect()
    }

    #[test]
    fn initial_placement_matches_cold_plan() {
        let (sys, _) = setup(21);
        let ctl = OnlineController::new(&sys, ReplicationPolicy::new(), OnlineConfig::default());
        let cold = ReplicationPolicy::new().plan(&sys).placement;
        assert_eq!(*ctl.placement(), cold);
        assert_eq!(ctl.replans(), 0);
        assert_eq!(ctl.bytes_scheduled(), 0);
    }

    #[test]
    fn drifted_traffic_triggers_incremental_replan() {
        let (sys, params) = setup(22);
        let drifted = DriftModel::new(0.5).apply(&sys, 22);
        let traces = generate_trace(&drifted, &TraceConfig::from_params(&params), 22);
        let mut ctl = OnlineController::new(
            &sys,
            ReplicationPolicy::new(),
            OnlineConfig {
                estimator: EstimatorConfig { ewma_alpha: 1.0 },
                ..OnlineConfig::default()
            },
        );
        for t in &traces {
            ctl.serve_window(t.site, &t.requests, Secs(10.0));
        }
        let report = ctl.end_window(&durations(&sys, &traces, 1));
        assert_eq!(report.window, 1);
        assert!(
            !report.dirty.is_empty(),
            "hot-set rotation must look like drift: {:?}",
            report.divergences
        );
        let delta = report.delta.expect("replan ran");
        assert!(delta.pages_applied > 0);
        assert_eq!(ctl.replans(), 1);
        assert!(ctl.bytes_scheduled() > 0, "replicas must move");
    }

    #[test]
    fn stationary_traffic_holds_the_plan_under_budgeted_controller() {
        let (sys, params) = setup(23);
        let traces = generate_trace(&sys, &TraceConfig::from_params(&params), 23);
        // Smoothed estimation + a threshold above sampling noise.
        let mut ctl = OnlineController::new(
            &sys,
            ReplicationPolicy::new(),
            OnlineConfig {
                estimator: EstimatorConfig { ewma_alpha: 0.3 },
                detector: DetectorConfig {
                    threshold: 1.5,
                    ..DetectorConfig::default()
                },
                ..OnlineConfig::default()
            },
        );
        for t in &traces {
            ctl.serve_window(t.site, &t.requests, Secs(10.0));
        }
        let report = ctl.end_window(&durations(&sys, &traces, 1));
        assert!(
            report.dirty.is_empty(),
            "divergences: {:?}",
            report.divergences
        );
        assert_eq!(ctl.replans(), 0);
    }

    #[test]
    fn churn_budget_defers_migrations() {
        let (sys, params) = setup(24);
        let drifted = DriftModel::new(0.5).apply(&sys, 24);
        let traces = generate_trace(&drifted, &TraceConfig::from_params(&params), 24);
        let run = |budget: ChurnBudget| {
            let mut ctl = OnlineController::new(
                &sys,
                ReplicationPolicy::new(),
                OnlineConfig {
                    estimator: EstimatorConfig { ewma_alpha: 1.0 },
                    budget,
                    ..OnlineConfig::default()
                },
            );
            for t in &traces {
                ctl.serve_window(t.site, &t.requests, Secs(10.0));
            }
            ctl.end_window(&durations(&sys, &traces, 1))
                .delta
                .expect("replan ran")
        };
        let unlimited = run(ChurnBudget::unlimited());
        assert_eq!(unlimited.pages_deferred, 0);
        let tight = run(ChurnBudget::bytes(unlimited.bytes_migrated / 4));
        assert!(tight.bytes_migrated <= unlimited.bytes_migrated / 4);
        assert!(tight.pages_deferred > 0, "tight budget must defer work");
        assert!(tight.bytes_deferred > 0);
    }
}
