//! Bandwidth-charged replica migration.
//!
//! An incremental replan is not free just because the planner was fast:
//! every newly-marked replica must physically travel the site's repository
//! link before the site can serve it locally. This module replays a trace
//! window with that cost charged for real — no teleporting:
//!
//! * each site drains its migration queue at a configured **fraction φ of
//!   its repository link** ([`MigrateConfig::bandwidth_frac`]), in the
//!   priority order the delta planner scheduled;
//! * while the queue drains, foreground remote fetches see only the
//!   remaining `(1 − φ)` of the link;
//! * a request routes an object locally only if the placement marks it
//!   local **and** the replica has already arrived — until then it falls
//!   back to the repository stream.
//!
//! With an empty queue this replay is request-for-request identical to the
//! offline replayer in `mmrepl-sim` (pinned by a cross-crate test there),
//! so online and offline response series are directly comparable.

use std::collections::VecDeque;

use crate::delta::SiteMigration;
use mmrepl_model::{Bytes, ObjectId, Placement, Secs, SiteId, StoredSet, System};
use mmrepl_netsim::{parallel_page_time, ConnectionProfile, ResponseStats, StreamPlan};
use mmrepl_workload::{events_of, Request};
use serde::{Deserialize, Serialize};

/// Migration bandwidth policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MigrateConfig {
    /// Fraction φ of each site's repository link reserved for replica
    /// migration while its queue is non-empty, in `(0, 0.9]`. Foreground
    /// remote fetches run on the remaining `1 − φ`.
    pub bandwidth_frac: f64,
    /// Seconds of *off-peak* full-rate drain each site gets at every
    /// window close — the paper's own remedy ("execute during off-peak
    /// hours", Section 4.1): the estimation windows cover the busy
    /// period, and scheduled transfers run overnight at the full link
    /// rate with no foreground to contend with. `None` (the default)
    /// means the night is long enough to finish the queue; `Some(s)`
    /// bounds it, leaving the remainder to drain (and contend) in-window.
    pub offpeak_secs: Option<f64>,
}

impl Default for MigrateConfig {
    fn default() -> Self {
        MigrateConfig {
            bandwidth_frac: 0.25,
            offpeak_secs: None,
        }
    }
}

impl MigrateConfig {
    /// Panics unless `bandwidth_frac` is in `(0, 0.9]` — migration must
    /// make progress, and the foreground must keep some link.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_frac > 0.0 && self.bandwidth_frac <= 0.9,
            "bandwidth_frac {} outside (0, 0.9]",
            self.bandwidth_frac
        );
        if let Some(s) = self.offpeak_secs {
            assert!(s >= 0.0 && s.is_finite(), "offpeak_secs {s} invalid");
        }
    }
}

/// One in-flight replica fetch.
#[derive(Clone, Debug, PartialEq)]
struct PendingFetch {
    object: ObjectId,
    size: Bytes,
    /// Bytes still to transfer (the head item drains partially).
    bytes_left: f64,
}

/// A site's migration state: which objects have physically arrived and
/// which are still queued on the repository link.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationQueue {
    resident: StoredSet,
    pending: VecDeque<PendingFetch>,
    scheduled_bytes: u64,
    completed_bytes: u64,
    completed_objects: u64,
}

impl MigrationQueue {
    /// A queue over the objects already resident at the site.
    pub fn new(resident: StoredSet) -> Self {
        MigrationQueue {
            resident,
            pending: VecDeque::new(),
            scheduled_bytes: 0,
            completed_bytes: 0,
            completed_objects: 0,
        }
    }

    /// Enqueues a replan's schedule: drops free their space immediately
    /// (and cancel any still-pending fetch of the same object); fetches
    /// append in the planner's priority order.
    pub fn enqueue(&mut self, migration: &SiteMigration) {
        for &k in &migration.drops {
            self.resident.remove(k);
            self.pending.retain(|p| p.object != k);
        }
        for &(k, size) in &migration.fetches {
            if self.resident.contains(k) || self.pending.iter().any(|p| p.object == k) {
                continue;
            }
            self.scheduled_bytes += size.0;
            self.pending.push_back(PendingFetch {
                object: k,
                size,
                bytes_left: size.0 as f64,
            });
        }
    }

    /// Whether `object` has physically arrived (or was always stored).
    #[inline]
    pub fn is_resident(&self, object: ObjectId) -> bool {
        self.resident.contains(object)
    }

    /// Whether a migration is in flight (the link is being shared).
    #[inline]
    pub fn active(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Bytes still queued.
    pub fn pending_bytes(&self) -> f64 {
        self.pending.iter().map(|p| p.bytes_left).sum()
    }

    /// Total bytes ever scheduled on this queue.
    pub fn scheduled_bytes(&self) -> u64 {
        self.scheduled_bytes
    }

    /// Total bytes of completed (arrived) replicas.
    pub fn completed_bytes(&self) -> u64 {
        self.completed_bytes
    }

    /// Replicas that have arrived.
    pub fn completed_objects(&self) -> u64 {
        self.completed_objects
    }

    /// Drains the whole queue (an unbounded off-peak window); returns the
    /// completed bytes.
    pub fn drain_all(&mut self) -> u64 {
        self.advance(f64::INFINITY)
    }

    /// Drains up to `budget` transfer bytes (a bounded off-peak window);
    /// returns the completed bytes.
    pub fn drain(&mut self, budget: f64) -> u64 {
        self.advance(budget)
    }

    /// Spends `budget` transfer bytes draining the queue head-first;
    /// returns the bytes of replicas that *completed* (an object becomes
    /// resident only when its final byte lands).
    fn advance(&mut self, mut budget: f64) -> u64 {
        let mut done = 0u64;
        while budget > 0.0 {
            let Some(head) = self.pending.front_mut() else {
                break;
            };
            if head.bytes_left <= budget {
                budget -= head.bytes_left;
                let fetched = self.pending.pop_front().expect("head exists");
                self.resident.insert(fetched.object);
                self.completed_bytes += fetched.size.0;
                self.completed_objects += 1;
                done += fetched.size.0;
            } else {
                head.bytes_left -= budget;
                budget = 0.0;
            }
        }
        done
    }
}

/// Replay results with migration accounting — the online counterpart of
/// `mmrepl-sim`'s `ReplayOutcome`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineReplayOutcome {
    /// Page response times (Eq. 5 realized), one sample per request.
    pub pages: ResponseStats,
    /// Optional-download times (Eq. 6 realized).
    pub optional: ResponseStats,
    /// Objects served locally.
    pub local_objects: u64,
    /// Objects served by the repository.
    pub remote_objects: u64,
    /// Requests served while a migration was sharing the link.
    pub contended_requests: u64,
    /// Bytes of replicas that finished migrating during this replay.
    pub migrated_bytes: u64,
}

impl OnlineReplayOutcome {
    /// An empty outcome.
    pub fn new() -> Self {
        OnlineReplayOutcome {
            pages: ResponseStats::new(),
            optional: ResponseStats::new(),
            local_objects: 0,
            remote_objects: 0,
            contended_requests: 0,
            migrated_bytes: 0,
        }
    }

    /// Merges another outcome (across sites or windows).
    pub fn merge(&mut self, other: &OnlineReplayOutcome) {
        self.pages.merge(&other.pages);
        self.optional.merge(&other.optional);
        self.local_objects += other.local_objects;
        self.remote_objects += other.remote_objects;
        self.contended_requests += other.contended_requests;
        self.migrated_bytes += other.migrated_bytes;
    }

    /// Mean page response time.
    pub fn mean_response(&self) -> f64 {
        self.pages.mean().map(|s| s.get()).unwrap_or(0.0)
    }
}

impl Default for OnlineReplayOutcome {
    fn default() -> Self {
        OnlineReplayOutcome::new()
    }
}

/// Replays one site's trace window under `placement` while `queue` drains
/// on a φ share of the repository link. Requests arrive at uniform virtual
/// times across `window`; replicas become servable exactly when their
/// cumulative bytes fit in the migration bandwidth elapsed so far.
pub fn replay_window(
    system: &System,
    site_id: SiteId,
    requests: &[Request],
    placement: &Placement,
    queue: &mut MigrationQueue,
    window: Secs,
    cfg: &MigrateConfig,
) -> OnlineReplayOutcome {
    cfg.validate();
    assert!(window.get() > 0.0, "window duration must be positive");
    let site = system.site(site_id);
    let mig_rate = site.repo_rate.get() * cfg.bandwidth_frac;
    let mut out = OnlineReplayOutcome::new();
    let mut last_t = 0.0f64;

    for ev in events_of(requests, window) {
        out.migrated_bytes += queue.advance(mig_rate * (ev.t.get() - last_t));
        last_t = ev.t.get();
        let contended = queue.active();
        if contended {
            out.contended_requests += 1;
        }
        serve_request(
            system, site, ev.request, placement, queue, contended, cfg, &mut out,
        );
    }
    out.migrated_bytes += queue.advance(mig_rate * (window.get() - last_t));
    out
}

/// Serves one request: the `mmrepl-sim` pricing (two pipelined parallel
/// streams, Eq. 5; per-fetch optional connections, Eq. 6) with routing
/// gated on physical residency and the remote link derated by φ while a
/// migration is in flight.
#[allow(clippy::too_many_arguments)]
fn serve_request(
    system: &System,
    site: &mmrepl_model::Site,
    req: &Request,
    placement: &Placement,
    queue: &MigrationQueue,
    contended: bool,
    cfg: &MigrateConfig,
    out: &mut OnlineReplayOutcome,
) {
    let page = system.page(req.page);
    let c = &req.conditions;
    let row = placement.partition(req.page);

    let local = ConnectionProfile::new(
        site.local_ovhd * c.local_ovhd_factor,
        site.local_rate.scale(c.local_rate_factor),
    );
    let foreground = if contended {
        1.0 - cfg.bandwidth_frac
    } else {
        1.0
    };
    let remote = ConnectionProfile::new(
        site.repo_ovhd * c.repo_ovhd_factor,
        site.repo_rate.scale(c.repo_rate_factor * foreground),
    );

    let mut local_stream = StreamPlan::empty(local);
    local_stream.push(page.html_size);
    let mut remote_stream = StreamPlan::empty(remote);
    for (slot, &k) in page.compulsory.iter().enumerate() {
        let size = system.object_size(k);
        if row.local_compulsory[slot] && queue.is_resident(k) {
            local_stream.push(size);
            out.local_objects += 1;
        } else {
            remote_stream.push(size);
            out.remote_objects += 1;
        }
    }
    out.pages
        .record(parallel_page_time(&local_stream, &remote_stream));

    if !req.optional_slots.is_empty() {
        let mut total = Secs::ZERO;
        for &slot in &req.optional_slots {
            let k = page.optional[slot as usize].object;
            let size = system.object_size(k);
            if row.local_optional[slot as usize] && queue.is_resident(k) {
                total += local.single_fetch(size);
                out.local_objects += 1;
            } else {
                total += remote.single_fetch(size);
                out.remote_objects += 1;
            }
        }
        out.optional.record(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_core::partition_all;
    use mmrepl_workload::{generate_system, generate_trace, TraceConfig, WorkloadParams};

    fn setup(seed: u64) -> (System, Vec<mmrepl_workload::SiteTrace>) {
        let params = WorkloadParams::small();
        let sys = generate_system(&params, seed).unwrap();
        let traces = generate_trace(&sys, &TraceConfig::from_params(&params), seed);
        (sys, traces)
    }

    #[test]
    fn empty_queue_serves_per_placement() {
        let (sys, traces) = setup(11);
        let placement = partition_all(&sys);
        let site = traces[0].site;
        let mut q = MigrationQueue::new(placement.stored_set(&sys, site));
        let out = replay_window(
            &sys,
            site,
            &traces[0].requests,
            &placement,
            &mut q,
            Secs(100.0),
            &MigrateConfig::default(),
        );
        assert_eq!(out.contended_requests, 0);
        assert_eq!(out.migrated_bytes, 0);
        assert_eq!(out.pages.count(), traces[0].len() as u64);
        assert!(out.local_objects > 0 && out.remote_objects > 0);
    }

    #[test]
    fn pending_objects_arrive_then_serve_locally() {
        let (sys, traces) = setup(12);
        let site = traces[0].site;
        // Start from all-remote, migrate toward the planned placement.
        let target = partition_all(&sys);
        let all_remote = Placement::all_remote(&sys);
        let mut q = MigrationQueue::new(all_remote.stored_set(&sys, site));
        let fetches: Vec<(ObjectId, Bytes)> = target
            .stored_set(&sys, site)
            .iter()
            .map(|k| (k, sys.object_size(k)))
            .collect();
        assert!(!fetches.is_empty());
        let migration = SiteMigration {
            site,
            fetches,
            drops: vec![],
        };
        q.enqueue(&migration);
        assert!(q.active());
        let scheduled = q.scheduled_bytes();

        // A long enough window drains everything.
        let window = Secs(2.0 * scheduled as f64 / (sys.site(site).repo_rate.get() * 0.25));
        let out = replay_window(
            &sys,
            site,
            &traces[0].requests,
            &target,
            &mut q,
            window,
            &MigrateConfig::default(),
        );
        assert!(!q.active(), "queue should have drained");
        assert_eq!(out.migrated_bytes, scheduled);
        assert_eq!(q.completed_bytes(), scheduled);
        assert!(out.contended_requests > 0, "early requests saw contention");
        assert!(
            out.contended_requests < out.pages.count(),
            "late requests saw a drained queue"
        );
    }

    #[test]
    fn drops_cancel_pending_fetches() {
        let (sys, _) = setup(13);
        let site = SiteId::new(0);
        let k = sys
            .pages_of(site)
            .iter()
            .flat_map(|&p| sys.page(p).compulsory.iter().copied())
            .next()
            .expect("site has objects");
        let mut q = MigrationQueue::new(StoredSet::empty(sys.n_objects()));
        q.enqueue(&SiteMigration {
            site,
            fetches: vec![(k, sys.object_size(k))],
            drops: vec![],
        });
        assert!(q.active());
        q.enqueue(&SiteMigration {
            site,
            fetches: vec![],
            drops: vec![k],
        });
        assert!(!q.active(), "drop must cancel the pending fetch");
        assert!(!q.is_resident(k));
    }

    #[test]
    fn contention_slows_remote_fetches() {
        let (sys, traces) = setup(14);
        let site = traces[0].site;
        let all_remote = Placement::all_remote(&sys);
        // Same trace twice: once with an (undrainable within the window)
        // migration hogging φ of the link, once clean.
        let mut clean = MigrationQueue::new(all_remote.stored_set(&sys, site));
        let quiet = replay_window(
            &sys,
            site,
            &traces[0].requests,
            &all_remote,
            &mut clean,
            Secs(1.0),
            &MigrateConfig::default(),
        );
        let mut busy = MigrationQueue::new(all_remote.stored_set(&sys, site));
        let huge: Vec<(ObjectId, Bytes)> = sys
            .pages_of(site)
            .iter()
            .flat_map(|&p| sys.page(p).compulsory.iter().copied())
            .take(50)
            .map(|k| (k, Bytes(u64::MAX / 128)))
            .collect();
        busy.enqueue(&SiteMigration {
            site,
            fetches: huge,
            drops: vec![],
        });
        let contended = replay_window(
            &sys,
            site,
            &traces[0].requests,
            &all_remote,
            &mut busy,
            Secs(1.0),
            &MigrateConfig::default(),
        );
        assert_eq!(contended.contended_requests, contended.pages.count());
        assert!(
            contended.mean_response() > quiet.mean_response(),
            "contended {} vs quiet {}",
            contended.mean_response(),
            quiet.mean_response()
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth_frac")]
    fn rejects_full_link_migration() {
        MigrateConfig {
            bandwidth_frac: 1.0,
            ..MigrateConfig::default()
        }
        .validate();
    }
}
