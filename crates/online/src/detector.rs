//! Drift detection with hysteresis — when is a live plan stale *enough*?
//!
//! Section 4.1 concedes offline plans go stale but offers only "re-run
//! during off-peak hours". Replanning on every wiggle would thrash the
//! placement (and pay migration bandwidth for noise), so the detector
//! fires only when the divergence between the **estimated** rates and the
//! rates the live plan was **built for** crosses a threshold, then
//! disarms: a cooldown suppresses back-to-back replans, and a Schmitt-
//! trigger re-arm level keeps a divergence hovering at the threshold from
//! re-firing until it either collapses (replan worked) or climbs again.

use serde::{Deserialize, Serialize};

/// Detector tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Relative L1 divergence that triggers a replan.
    pub threshold: f64,
    /// Windows to hold after a trigger, regardless of divergence.
    pub cooldown: u32,
    /// Re-arm level as a fraction of `threshold` (hysteresis): after a
    /// trigger the detector stays disarmed until divergence falls to
    /// `threshold * rearm` or below. `1.0` disables hysteresis.
    pub rearm: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            threshold: 0.15,
            cooldown: 1,
            rearm: 0.5,
        }
    }
}

impl DetectorConfig {
    /// A hair-trigger configuration: replan whenever estimated and
    /// planned-for rates differ at all (no cooldown, no hysteresis).
    /// Used by the equivalence tests and as the "always adapt" extreme.
    pub fn hair_trigger() -> Self {
        DetectorConfig {
            threshold: 0.0,
            cooldown: 0,
            rearm: 1.0,
        }
    }
}

/// Why the detector held fire this window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HoldReason {
    /// Divergence below the trigger threshold.
    BelowThreshold,
    /// Inside the post-trigger cooldown.
    Cooldown,
    /// Above threshold but disarmed (hysteresis): divergence has not
    /// dipped to the re-arm level since the last trigger.
    Disarmed,
}

/// Per-window verdict.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DriftDecision {
    /// Replan now.
    Replan {
        /// The divergence that tripped the detector.
        divergence: f64,
    },
    /// Keep the live plan.
    Hold {
        /// The observed divergence.
        divergence: f64,
        /// Why no replan fired.
        reason: HoldReason,
    },
}

impl DriftDecision {
    /// Whether this decision triggers a replan.
    pub fn is_replan(&self) -> bool {
        matches!(self, DriftDecision::Replan { .. })
    }
}

/// The drift detector state machine (one per site).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    config: DetectorConfig,
    cooldown_left: u32,
    armed: bool,
    triggers: u64,
}

impl DriftDetector {
    /// A fresh, armed detector.
    pub fn new(config: DetectorConfig) -> Self {
        assert!(config.threshold >= 0.0, "negative threshold");
        assert!(
            (0.0..=1.0).contains(&config.rearm),
            "rearm {} outside [0, 1]",
            config.rearm
        );
        DriftDetector {
            config,
            cooldown_left: 0,
            armed: true,
            triggers: 0,
        }
    }

    /// Feeds one window's divergence; decides whether to replan.
    pub fn observe(&mut self, divergence: f64) -> DriftDecision {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            // Cooldown windows still re-arm once divergence has settled.
            if divergence <= self.config.threshold * self.config.rearm {
                self.armed = true;
            }
            return DriftDecision::Hold {
                divergence,
                reason: HoldReason::Cooldown,
            };
        }
        if !self.armed {
            if divergence <= self.config.threshold * self.config.rearm {
                self.armed = true;
            } else {
                return DriftDecision::Hold {
                    divergence,
                    reason: HoldReason::Disarmed,
                };
            }
        }
        if divergence > self.config.threshold {
            self.triggers += 1;
            self.cooldown_left = self.config.cooldown;
            // Hysteresis: stay disarmed until divergence settles to the
            // re-arm level (rearm = 1.0 re-arms immediately next window).
            self.armed = self.config.rearm >= 1.0;
            DriftDecision::Replan { divergence }
        } else {
            DriftDecision::Hold {
                divergence,
                reason: HoldReason::BelowThreshold,
            }
        }
    }

    /// Total replans triggered.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }
}

/// Relative L1 divergence between the planned-for and estimated rates of
/// one site's pages: `Σ|planned − estimated| / Σ planned`. Zero when they
/// agree; `1.0` roughly means "the whole traffic volume moved".
pub fn rate_divergence(planned: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(
        planned.len(),
        estimated.len(),
        "rate vectors differ in length"
    );
    let total: f64 = planned.iter().sum();
    if total <= f64::EPSILON {
        return if estimated.iter().any(|&e| e > f64::EPSILON) {
            f64::INFINITY
        } else {
            0.0
        };
    }
    let l1: f64 = planned
        .iter()
        .zip(estimated)
        .map(|(p, e)| (p - e).abs())
        .sum();
    l1 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_is_zero_on_agreement_and_scales() {
        assert_eq!(rate_divergence(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // Swap the rates of a hot and a cold page: |3-1| + |1-3| = 4 over 4.
        assert!((rate_divergence(&[3.0, 1.0], &[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(rate_divergence(&[0.0], &[0.0]), 0.0);
        assert_eq!(rate_divergence(&[0.0], &[1.0]), f64::INFINITY);
    }

    #[test]
    fn fires_above_threshold_only() {
        let mut d = DriftDetector::new(DetectorConfig {
            threshold: 0.2,
            cooldown: 0,
            rearm: 1.0,
        });
        assert!(!d.observe(0.1).is_replan());
        assert!(d.observe(0.3).is_replan());
        assert_eq!(d.triggers(), 1);
        // rearm = 1.0: immediately armed again.
        assert!(d.observe(0.3).is_replan());
    }

    #[test]
    fn cooldown_suppresses_consecutive_replans() {
        let mut d = DriftDetector::new(DetectorConfig {
            threshold: 0.2,
            cooldown: 2,
            rearm: 1.0,
        });
        assert!(d.observe(0.5).is_replan());
        assert_eq!(
            d.observe(0.5),
            DriftDecision::Hold {
                divergence: 0.5,
                reason: HoldReason::Cooldown
            }
        );
        assert_eq!(
            d.observe(0.5),
            DriftDecision::Hold {
                divergence: 0.5,
                reason: HoldReason::Cooldown
            }
        );
        assert!(d.observe(0.5).is_replan());
    }

    #[test]
    fn hysteresis_requires_settling_before_refire() {
        let mut d = DriftDetector::new(DetectorConfig {
            threshold: 0.2,
            cooldown: 0,
            rearm: 0.5,
        });
        assert!(d.observe(0.25).is_replan());
        // Hovering just above threshold: disarmed, no thrash.
        assert_eq!(
            d.observe(0.25),
            DriftDecision::Hold {
                divergence: 0.25,
                reason: HoldReason::Disarmed
            }
        );
        // Settles below threshold * rearm = 0.1: re-arms…
        assert!(!d.observe(0.05).is_replan());
        // …so the next excursion fires again.
        assert!(d.observe(0.3).is_replan());
        assert_eq!(d.triggers(), 2);
    }

    #[test]
    fn hair_trigger_replans_on_any_divergence() {
        let mut d = DriftDetector::new(DetectorConfig::hair_trigger());
        assert!(!d.observe(0.0).is_replan());
        assert!(d.observe(1e-9).is_replan());
        assert!(d.observe(1e-9).is_replan());
    }
}
