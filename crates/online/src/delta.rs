//! Churn-bounded incremental replanning.
//!
//! A cold [`ReplicationPolicy::plan`] rebuilds everything: the
//! unconstrained `PARTITION`, per-site state, both restorations, the
//! off-loading negotiation. Online we exploit two structural facts:
//!
//! 1. **`PARTITION` is frequency-independent** (it balances stream
//!    *sizes*; PR 1's warm-start invariant), so the unconstrained
//!    partition computed once at start-up keeps warm-starting every
//!    replan no matter how the rates drift;
//! 2. **sites are independent until the off-loading stage**, so only the
//!    sites whose rates actually drifted ("dirty" sites) need their
//!    storage/capacity restorations re-run — the dominant cost at scale
//!    (`restore_storage` is ~90 % of a paper-scale plan). Clean sites
//!    keep their live rows, and the repository negotiation runs over the
//!    dirty subset against the capacity left after the clean sites'
//!    (unchanged) repository load.
//!
//! The resulting *target* rows are then **diffed against the live plan**
//! and applied under a *churn budget*: switching a page's row is free
//! when every newly-marked object is already resident at the site
//! (including objects another page keeps stored), otherwise it costs the
//! bytes that must be fetched from the repository. Free switches always
//! apply; paid switches apply highest-ΔD-per-byte first until the budget
//! runs out, and the rest are deferred to a later replan. With an
//! unlimited budget and every site dirty, the applied placement is
//! **bit-identical** to a cold plan on the same estimated rates — pinned
//! by a property test.

use mmrepl_core::{
    partition_all, restore_capacity, restore_storage, run_offload, ReplicationPolicy, SiteWork,
};
use mmrepl_model::{
    Bytes, CostModel, ObjectId, PageId, PagePartition, Placement, SiteId, StoredSet, System,
};
use serde::{Deserialize, Serialize};

/// Maximum bytes a single replan may schedule for migration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnBudget {
    /// `None` = unlimited (every diffed page applies).
    pub bytes_per_replan: Option<u64>,
}

impl ChurnBudget {
    /// No limit: track the target plan exactly.
    pub fn unlimited() -> Self {
        ChurnBudget {
            bytes_per_replan: None,
        }
    }

    /// At most `bytes` migrated per replan.
    pub fn bytes(bytes: u64) -> Self {
        ChurnBudget {
            bytes_per_replan: Some(bytes),
        }
    }

    fn allows(&self, spent: u64, cost: u64) -> bool {
        match self.bytes_per_replan {
            None => true,
            Some(limit) => spent.saturating_add(cost) <= limit,
        }
    }
}

/// The replica transfers one replan scheduled for one site.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteMigration {
    /// The site receiving the replicas.
    pub site: SiteId,
    /// Objects to fetch from the repository, in application (priority)
    /// order, with their sizes.
    pub fetches: Vec<(ObjectId, Bytes)>,
    /// Objects no longer stored at the site (deletion is free).
    pub drops: Vec<ObjectId>,
}

impl SiteMigration {
    /// Total bytes to fetch.
    pub fn bytes(&self) -> u64 {
        self.fetches.iter().map(|&(_, b)| b.0).sum()
    }
}

/// What one incremental replan did.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaReport {
    /// Sites replanned.
    pub dirty_sites: usize,
    /// Pages whose target row differed from the live row.
    pub pages_changed: usize,
    /// Diffed pages actually switched to the target row.
    pub pages_applied: usize,
    /// Diffed pages deferred by the churn budget.
    pub pages_deferred: usize,
    /// `X`/`X'` marks flipped by the applied switches.
    pub marks_flipped: usize,
    /// Bytes scheduled for migration (fetches from the repository).
    pub bytes_migrated: u64,
    /// Bytes the deferred switches would additionally have needed.
    pub bytes_deferred: u64,
}

/// The outcome of one incremental replan.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaOutcome {
    /// Accounting.
    pub report: DeltaReport,
    /// Per-dirty-site migration schedules (sites with work only).
    pub migrations: Vec<SiteMigration>,
}

/// One diffed page awaiting application.
struct Candidate {
    page: PageId,
    dirty_idx: usize,
    /// Objective improvement (estimated system) of switching this page.
    gain: f64,
    /// Fetch bytes against the pre-replan stored set (refined at apply
    /// time against the evolving resident set).
    est_bytes: u64,
}

/// The incremental replanner: owns the live placement and the cached
/// frequency-independent unconstrained partition.
#[derive(Clone, Debug)]
pub struct DeltaPlanner {
    policy: ReplicationPolicy,
    /// `partition_all` of the base system — valid for every rate estimate
    /// because `PARTITION` never reads frequencies.
    partition: Placement,
    live: Placement,
}

impl DeltaPlanner {
    /// Plans `system` cold and caches the warm-start partition.
    pub fn new(system: &System, policy: ReplicationPolicy) -> Self {
        let partition = partition_all(system);
        let live = policy.plan_with_partition(system, &partition).placement;
        DeltaPlanner {
            policy,
            partition,
            live,
        }
    }

    /// The live placement.
    pub fn live(&self) -> &Placement {
        &self.live
    }

    /// The policy driving the restorations.
    pub fn policy(&self) -> &ReplicationPolicy {
        &self.policy
    }

    /// Replans the `dirty` sites against `est` (the base system carrying
    /// the estimated rates), then applies the diff to the live placement
    /// under `budget`. Clean sites are untouched.
    pub fn replan(&mut self, est: &System, dirty: &[SiteId], budget: ChurnBudget) -> DeltaOutcome {
        let _span = mmrepl_obs::span("online.replan");
        let mut dirty: Vec<SiteId> = dirty.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        let mut report = DeltaReport {
            dirty_sites: dirty.len(),
            ..DeltaReport::default()
        };
        if dirty.is_empty() {
            return DeltaOutcome {
                report,
                migrations: Vec::new(),
            };
        }

        let target = self.target_rows(est, &dirty);

        // Diff the target against the live plan, page by page.
        let cfg = *self.policy.config();
        let cm = CostModel::new(est, cfg.cost);
        let mut residents: Vec<StoredSet> = dirty
            .iter()
            .map(|&s| self.live.stored_set(est, s))
            .collect();
        let old_stored = residents.clone();
        let mut candidates: Vec<Candidate> = Vec::new();
        for (dirty_idx, &site) in dirty.iter().enumerate() {
            for &p in est.pages_of(site) {
                let target_row = target[p.index()].as_ref().expect("dirty page planned");
                let live_row = self.live.partition(p);
                if target_row == live_row {
                    continue;
                }
                let freq = est.page(p).freq.get();
                let gain = cm.page_cost(p, live_row).weighted(freq, cfg.cost)
                    - cm.page_cost(p, target_row).weighted(freq, cfg.cost);
                let est_bytes = fetch_bytes(est, p, target_row, &residents[dirty_idx]);
                candidates.push(Candidate {
                    page: p,
                    dirty_idx,
                    gain,
                    est_bytes,
                });
            }
        }
        report.pages_changed = candidates.len();

        // Free switches first, then best objective improvement per byte.
        candidates.sort_by(|a, b| {
            let free_a = a.est_bytes == 0;
            let free_b = b.est_bytes == 0;
            free_b
                .cmp(&free_a)
                .then_with(|| ratio(b).total_cmp(&ratio(a)))
                .then_with(|| a.page.cmp(&b.page))
        });

        let mut fetches: Vec<Vec<(ObjectId, Bytes)>> = vec![Vec::new(); dirty.len()];
        let mut spent = 0u64;
        for c in &candidates {
            let row = target[c.page.index()].as_ref().expect("dirty page planned");
            let resident = &mut residents[c.dirty_idx];
            let new_objects = missing_objects(est, c.page, row, resident);
            let cost: u64 = new_objects.iter().map(|&(_, b)| b.0).sum();
            if cost > 0 && !budget.allows(spent, cost) {
                report.pages_deferred += 1;
                report.bytes_deferred += cost;
                continue;
            }
            spent += cost;
            for &(k, size) in &new_objects {
                resident.insert(k);
                fetches[c.dirty_idx].push((k, size));
            }
            report.marks_flipped += marks_flipped(self.live.partition(c.page), row);
            *self.live.partition_mut(c.page) = row.clone();
            report.pages_applied += 1;
        }
        report.bytes_migrated = spent;

        // Per-site migration schedules: the fetches accumulated above plus
        // the objects that lost their last mark (free deletions).
        let mut migrations = Vec::new();
        for (dirty_idx, &site) in dirty.iter().enumerate() {
            let new_stored = self.live.stored_set(est, site);
            let drops: Vec<ObjectId> = old_stored[dirty_idx]
                .iter()
                .filter(|&k| !new_stored.contains(k))
                .collect();
            let site_fetches = std::mem::take(&mut fetches[dirty_idx]);
            debug_assert!(site_fetches.iter().all(|&(k, _)| new_stored.contains(k)));
            if !site_fetches.is_empty() || !drops.is_empty() {
                migrations.push(SiteMigration {
                    site,
                    fetches: site_fetches,
                    drops,
                });
            }
        }
        if mmrepl_obs::enabled() {
            mmrepl_obs::add("replan.dirty_sites", report.dirty_sites as u64);
            mmrepl_obs::add("replan.pages_changed", report.pages_changed as u64);
            mmrepl_obs::add("replan.pages_applied", report.pages_applied as u64);
            mmrepl_obs::add("replan.pages_deferred", report.pages_deferred as u64);
            mmrepl_obs::add("replan.marks_flipped", report.marks_flipped as u64);
            // Churn spent vs budget: what the budget allowed through and
            // what it pushed to later replans.
            mmrepl_obs::add("replan.churn_spent_bytes", report.bytes_migrated);
            mmrepl_obs::add("replan.churn_deferred_bytes", report.bytes_deferred);
            if let Some(limit) = budget.bytes_per_replan {
                mmrepl_obs::add("replan.churn_budget_bytes", limit);
            }
            // Live mirrors for the telemetry plane.
            mmrepl_obs::counter_add("online.replans", 1);
            mmrepl_obs::counter_add("online.migrated_bytes", report.bytes_migrated);
        }
        DeltaOutcome { report, migrations }
    }

    /// Computes the target rows for every page of the dirty sites: the
    /// restorations re-run per dirty site from the cached partition, then
    /// the off-loading negotiation over the dirty subset against the
    /// repository capacity net of the clean sites' unchanged load.
    fn target_rows(&self, est: &System, dirty: &[SiteId]) -> Vec<Option<PagePartition>> {
        let cfg = *self.policy.config();
        let mut works: Vec<SiteWork<'_>> = dirty
            .iter()
            .map(|&s| {
                let mut w = SiteWork::with_update_accounting(
                    est,
                    s,
                    &self.partition,
                    cfg.cost,
                    cfg.include_update_load,
                );
                restore_storage(&mut w);
                restore_capacity(&mut w);
                #[cfg(feature = "audit")]
                mmrepl_core::assert_consistent(&w, mmrepl_core::AuditStage::DeltaReplan);
                w
            })
            .collect();

        let clean_repo_load: f64 = est
            .sites()
            .ids()
            .filter(|s| dirty.binary_search(s).is_err())
            .map(|s| self.live.repo_load_from(est, s).get())
            .sum();
        let eff_capacity = (est.repository().capacity.get() - clean_repo_load).max(0.0);
        run_offload(&mut works, eff_capacity, &cfg.offload);
        #[cfg(feature = "audit")]
        for w in &works {
            mmrepl_core::assert_consistent(w, mmrepl_core::AuditStage::DeltaReplan);
        }

        let mut rows: Vec<Option<PagePartition>> = vec![None; est.n_pages()];
        for w in works {
            for (pid, part) in w.into_partitions() {
                rows[pid.index()] = Some(part);
            }
        }
        rows
    }
}

/// Gain per fetched byte (free switches are handled before this applies).
fn ratio(c: &Candidate) -> f64 {
    c.gain / (c.est_bytes.max(1) as f64)
}

/// `X`/`X'` marks that differ between two rows of the same page.
fn marks_flipped(a: &PagePartition, b: &PagePartition) -> usize {
    let comp = a
        .local_compulsory
        .iter()
        .zip(&b.local_compulsory)
        .filter(|(x, y)| x != y)
        .count();
    let opt = a
        .local_optional
        .iter()
        .zip(&b.local_optional)
        .filter(|(x, y)| x != y)
        .count();
    comp + opt
}

/// Objects the target row marks local that are not yet resident.
fn missing_objects(
    system: &System,
    page: PageId,
    row: &PagePartition,
    resident: &StoredSet,
) -> Vec<(ObjectId, Bytes)> {
    let p = system.page(page);
    let mut out = Vec::new();
    let mut push = |k: ObjectId| {
        if !resident.contains(k) && !out.iter().any(|&(seen, _)| seen == k) {
            out.push((k, system.object_size(k)));
        }
    };
    for (slot, &k) in p.compulsory.iter().enumerate() {
        if row.local_compulsory[slot] {
            push(k);
        }
    }
    for (slot, o) in p.optional.iter().enumerate() {
        if row.local_optional[slot] {
            push(o.object);
        }
    }
    out
}

/// Fetch bytes of switching `page` to `row` against `resident`.
fn fetch_bytes(system: &System, page: PageId, row: &PagePartition, resident: &StoredSet) -> u64 {
    missing_objects(system, page, row, resident)
        .iter()
        .map(|&(_, b)| b.0)
        .sum()
}
