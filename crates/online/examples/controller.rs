//! Minimal closed-loop demo: drift the workload, stream the drifted
//! trace through the [`mmrepl_online::OnlineController`] window by
//! window, and print what each control step saw and did.
//!
//! ```text
//! cargo run -p mmrepl-online --example controller
//! ```

use mmrepl_core::ReplicationPolicy;
use mmrepl_model::Secs;
use mmrepl_online::{OnlineConfig, OnlineController};
use mmrepl_workload::{generate_system, generate_trace, DriftModel, TraceConfig, WorkloadParams};

fn main() {
    let params = WorkloadParams::small();
    // Tight storage makes the plan frequency-sensitive; with slack
    // storage drift (correctly) never changes it.
    let base = generate_system(&params, 7)
        .expect("valid params")
        .with_storage_fraction(0.65)
        .with_processing_fraction(f64::INFINITY);

    let mut cfg = OnlineConfig::default();
    cfg.detector.rearm = 1.0; // sampled traces never settle near zero
    let mut ctl = OnlineController::new(&base, ReplicationPolicy::new(), cfg);

    // One stationary epoch, then one 50 % hot-set rotation.
    let trace_cfg = TraceConfig::from_params(&params);
    let drifted = DriftModel::new(0.5).apply(&base, 7);
    for (label, system) in [("stationary", &base), ("drifted", &drifted)] {
        let traces = generate_trace(system, &trace_cfg, 7);
        let mut durations = Vec::new();
        for t in &traces {
            let total: f64 = system
                .pages_of(t.site)
                .iter()
                .map(|&p| system.page(p).freq.get())
                .sum();
            let dur = Secs(t.len() as f64 / total);
            let out = ctl.serve_window(t.site, &t.requests, dur);
            println!(
                "{label}: site {} served {} requests, mean response {:.1}s",
                t.site,
                out.pages.count(),
                out.mean_response()
            );
            durations.push(dur);
        }
        let report = ctl.end_window(&durations);
        println!(
            "{label}: window {} divergences {:?} -> {} dirty site(s), {} page rows changed, \
             {} replica bytes drained off-peak\n",
            report.window,
            report
                .divergences
                .iter()
                .map(|d| (d * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            report.dirty.len(),
            report.delta.as_ref().map(|d| d.pages_changed).unwrap_or(0),
            report.offpeak_bytes,
        );
    }
    println!(
        "total: {} replans, {} bytes scheduled, {} bytes arrived",
        ctl.replans(),
        ctl.bytes_scheduled(),
        ctl.bytes_completed()
    );
}
