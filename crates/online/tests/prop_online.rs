//! Property tests for the online control plane.
//!
//! The two load-bearing guarantees (ISSUE acceptance criteria):
//!
//! * **Delta-plan equivalence** — with an unlimited churn budget and every
//!   site dirty, the incremental replanner's applied placement is
//!   bit-identical to a cold `plan` on the same estimated rates;
//! * **Estimator soundness** — ingest is order-insensitive within a
//!   window, and on a stationary trace the EWMA converges to the
//!   generator's rates (hot pages estimated hot, cold pages cold).

use mmrepl_core::ReplicationPolicy;
use mmrepl_model::{Secs, System};
use mmrepl_online::{rate_divergence, ChurnBudget, DeltaPlanner, EstimatorConfig, RateEstimator};
use mmrepl_workload::{generate_trace, DriftModel, SiteTrace, TraceConfig, WorkloadParams};
use proptest::prelude::*;

/// Constrained systems: tight storage makes the restorations (and thus the
/// plan) frequency-sensitive, which is the only interesting case online.
fn constrained_sys(seed: u64, frac: f64) -> System {
    mmrepl_workload::generate_system(&WorkloadParams::small(), seed)
        .expect("valid params")
        .with_storage_fraction(frac)
        .with_processing_fraction(f64::INFINITY)
}

/// The virtual duration one site's trace spans: requests over total rate.
fn trace_duration(sys: &System, t: &SiteTrace) -> Secs {
    let total: f64 = sys
        .pages_of(t.site)
        .iter()
        .map(|&p| sys.page(p).freq.get())
        .sum();
    Secs(t.len() as f64 / total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unlimited budget + all sites dirty == a cold plan of the estimated
    /// system, bit for bit. The delta path (dirty-site restorations warm-
    /// started from the cached partition, offload against net capacity)
    /// must not be an approximation.
    #[test]
    fn delta_replan_matches_cold_plan(
        seed in 0u64..500,
        frac in 0.45f64..0.95,
        rotation in 0.1f64..0.9,
    ) {
        let base = constrained_sys(seed, frac);
        let est = DriftModel::new(rotation).apply(&base, seed ^ 0xD1F7);

        let mut planner = DeltaPlanner::new(&base, ReplicationPolicy::new());
        let all_sites: Vec<_> = base.sites().ids().collect();
        let outcome = planner.replan(&est, &all_sites, ChurnBudget::unlimited());
        prop_assert_eq!(outcome.report.pages_deferred, 0);
        prop_assert_eq!(outcome.report.bytes_deferred, 0);

        let cold = ReplicationPolicy::new().plan(&est).placement;
        prop_assert_eq!(planner.live(), &cold);
    }

    /// A second replan on the same estimates is a no-op: the live plan
    /// already is the target.
    #[test]
    fn replan_is_idempotent(seed in 0u64..500, rotation in 0.1f64..0.9) {
        let base = constrained_sys(seed, 0.65);
        let est = DriftModel::new(rotation).apply(&base, seed);
        let mut planner = DeltaPlanner::new(&base, ReplicationPolicy::new());
        let all_sites: Vec<_> = base.sites().ids().collect();
        planner.replan(&est, &all_sites, ChurnBudget::unlimited());
        let again = planner.replan(&est, &all_sites, ChurnBudget::unlimited());
        prop_assert_eq!(again.report.pages_changed, 0);
        prop_assert_eq!(again.report.bytes_migrated, 0);
        prop_assert!(again.migrations.is_empty());
    }

    /// Any churn budget never over-spends, and applied + deferred always
    /// accounts for every diffed page.
    #[test]
    fn budget_is_respected(
        seed in 0u64..500,
        rotation in 0.1f64..0.9,
        budget in 0u64..4_000_000,
    ) {
        let base = constrained_sys(seed, 0.65);
        let est = DriftModel::new(rotation).apply(&base, seed);
        let mut planner = DeltaPlanner::new(&base, ReplicationPolicy::new());
        let all_sites: Vec<_> = base.sites().ids().collect();
        let outcome = planner.replan(&est, &all_sites, ChurnBudget::bytes(budget));
        let r = &outcome.report;
        prop_assert!(r.bytes_migrated <= budget,
            "migrated {} over budget {}", r.bytes_migrated, budget);
        prop_assert_eq!(r.pages_applied + r.pages_deferred, r.pages_changed);
        let scheduled: u64 = outcome.migrations.iter().map(|m| m.bytes()).sum();
        prop_assert_eq!(scheduled, r.bytes_migrated);
    }

    /// Ingest is pure counting: any permutation of the same window of
    /// requests yields the same estimates after the window closes.
    #[test]
    fn estimator_is_order_insensitive(
        seed in 0u64..500,
        shuffle_seed in any::<u64>(),
    ) {
        let sys = constrained_sys(seed, 0.65);
        let traces = generate_trace(
            &sys, &TraceConfig::from_params(&WorkloadParams::small()), seed);

        let mut forward = RateEstimator::new(&sys, EstimatorConfig::default());
        let mut shuffled = RateEstimator::new(&sys, EstimatorConfig::default());
        for t in &traces {
            forward.ingest(&t.requests);
            // A cheap deterministic permutation: split at a seed-derived
            // point, ingest the tail first, then the head reversed.
            let cut = (shuffle_seed as usize) % (t.len().max(1));
            let (head, tail) = t.requests.split_at(cut);
            shuffled.ingest(tail);
            for r in head.iter().rev() {
                shuffled.observe(r.page);
            }
        }
        for t in &traces {
            let d = trace_duration(&sys, t);
            forward.close_site_window(&sys, t.site, d);
            shuffled.close_site_window(&sys, t.site, d);
        }
        prop_assert_eq!(forward.rates(), shuffled.rates());
    }

    /// On a stationary trace the EWMA converges toward the generator's
    /// true rates: after a few windows the divergence from the true
    /// frequency matrix is small, and hot pages dominate cold ones.
    #[test]
    fn estimator_converges_on_stationary_traffic(seed in 0u64..200) {
        let sys = constrained_sys(seed, 0.65);
        let cfg = TraceConfig::from_params(&WorkloadParams::small());
        let mut est = RateEstimator::new(&sys, EstimatorConfig { ewma_alpha: 0.7 });

        for window in 0..4u64 {
            let traces = generate_trace(&sys, &cfg, seed ^ (window + 1));
            for t in &traces {
                est.ingest(&t.requests);
            }
            for t in &traces {
                est.close_site_window(&sys, t.site, trace_duration(&sys, t));
            }
        }

        for site in sys.sites().ids() {
            let truth: Vec<f64> =
                sys.pages_of(site).iter().map(|&p| sys.page(p).freq.get()).collect();
            let got: Vec<f64> =
                sys.pages_of(site).iter().map(|&p| est.rate(p)).collect();
            let div = rate_divergence(&truth, &got);
            prop_assert!(div < 0.35, "site {:?} diverges {} from truth", site, div);
        }

        // Rank check: the hottest true page must be estimated well above
        // the coldest true page on every site.
        for site in sys.sites().ids() {
            let pages = sys.pages_of(site);
            let hot = pages.iter().copied()
                .max_by(|&a, &b| sys.page(a).freq.get().total_cmp(&sys.page(b).freq.get()))
                .expect("site has pages");
            let cold = pages.iter().copied()
                .min_by(|&a, &b| sys.page(a).freq.get().total_cmp(&sys.page(b).freq.get()))
                .expect("site has pages");
            prop_assert!(est.rate(hot) > est.rate(cold),
                "hot {} not above cold {}", est.rate(hot), est.rate(cold));
        }
    }
}
