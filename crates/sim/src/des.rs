//! Full discrete-event replay.
//!
//! [`crate::queueing_replay`] computes queueing delays analytically from a
//! pre-sorted arrival list. This module runs the *same* semantics through
//! the `mmrepl-netsim` event queue — every page request is an arrival
//! event, service completions advance server state, and per-request
//! session timelines come from [`mmrepl_netsim::simulate_page`]. The two
//! implementations must agree exactly (see the cross-validation tests),
//! which guards both against drift; the DES additionally exposes an
//! event-count/telemetry view and is the natural extension point for
//! behaviour the closed form cannot express (e.g. time-varying capacity).

use mmrepl_baselines::RequestRouter;
use mmrepl_model::{Secs, System};
#[cfg(debug_assertions)]
use mmrepl_netsim::simulate_page;
use mmrepl_netsim::{
    ConnectionProfile, EventQueue, QueueingServer, ResponseStats, SimTime, StreamPlan,
};
use mmrepl_workload::SiteTrace;
use serde::{Deserialize, Serialize};

/// A page-request arrival at one site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Arrival {
    site_idx: usize,
    req_idx: usize,
}

/// DES replay results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesOutcome {
    /// Page response times including queueing delay.
    pub pages: ResponseStats,
    /// Total events processed by the simulation loop.
    pub events: u64,
    /// Simulated time at which the last request completed service.
    pub makespan: f64,
}

impl DesOutcome {
    /// Mean page response time.
    pub fn mean_response(&self) -> f64 {
        self.pages.mean().map(|s| s.get()).unwrap_or(0.0)
    }
}

/// Runs the event-driven replay over all traces.
pub fn des_replay(
    system: &System,
    traces: &[SiteTrace],
    router: &mut dyn RequestRouter,
) -> DesOutcome {
    let _span = mmrepl_obs::span("des.total");
    let mut queue: EventQueue<Arrival> = EventQueue::new();
    for (site_idx, trace) in traces.iter().enumerate() {
        let page_rate: f64 = system
            .pages_of(trace.site)
            .iter()
            .map(|&p| system.page(p).freq.get())
            .sum();
        let dt = if page_rate > 0.0 {
            1.0 / page_rate
        } else {
            1.0
        };
        for req_idx in 0..trace.requests.len() {
            queue.schedule(
                SimTime::new(req_idx as f64 * dt),
                Arrival { site_idx, req_idx },
            );
        }
    }

    let mut site_servers: Vec<QueueingServer> = system
        .sites()
        .values()
        .map(|s| QueueingServer::new(s.capacity))
        .collect();
    let mut repo_server = QueueingServer::new(system.repository().capacity);

    let mut pages = ResponseStats::new();
    let mut makespan = 0.0f64;
    while let Some((now, arrival)) = queue.pop() {
        let trace = &traces[arrival.site_idx];
        let req = &trace.requests[arrival.req_idx];
        let page = system.page(req.page);
        let site = system.site(trace.site);
        let c = &req.conditions;

        let local_profile = ConnectionProfile::new(
            site.local_ovhd * c.local_ovhd_factor,
            site.local_rate.scale(c.local_rate_factor),
        );
        let remote_profile = ConnectionProfile::new(
            site.repo_ovhd * c.repo_ovhd_factor,
            site.repo_rate.scale(c.repo_rate_factor),
        );

        let decision = router.route(system, req.page, &req.optional_slots);

        let mut local_stream = StreamPlan::empty(local_profile);
        local_stream.push(page.html_size);
        let mut remote_stream = StreamPlan::empty(remote_profile);
        for (slot, &k) in page.compulsory.iter().enumerate() {
            if decision.local_compulsory[slot] {
                local_stream.push(system.object_size(k));
            } else {
                remote_stream.push(system.object_size(k));
            }
        }

        // Server occupancy (HTTP requests) and queueing waits.
        let n_opt_local = decision.local_optional.iter().filter(|&&b| b).count();
        let n_opt_remote = decision.local_optional.len() - n_opt_local;
        let local_http = (local_stream.payloads.len() + n_opt_local) as f64;
        let remote_http = (remote_stream.payloads.len() + n_opt_remote) as f64;

        let site_wait = site_servers[arrival.site_idx].admit(now, local_http).wait;
        let repo_wait = if remote_http > 0.0 {
            repo_server.admit(now, remote_http).wait
        } else {
            Secs::ZERO
        };

        // Per-request session timing; in debug builds, cross-check the
        // event-by-event session simulation against the stream arithmetic
        // for every single request.
        #[cfg(debug_assertions)]
        {
            let timeline = simulate_page(&local_stream, &remote_stream);
            debug_assert!(
                (timeline.page_done.get()
                    - local_stream
                        .total_time()
                        .max(remote_stream.total_time())
                        .get())
                .abs()
                    < 1e-9,
                "session events disagree with stream arithmetic"
            );
        }
        // Session clock is request-relative; add waits per stream side.
        let local_done = site_wait + local_stream.total_time();
        let remote_done = repo_wait + remote_stream.total_time();
        let response = local_done.max(remote_done);
        pages.record(response);
        makespan = makespan.max(now.get() + response.get());
    }

    let outcome = DesOutcome {
        pages,
        events: queue.processed(),
        makespan,
    };
    if mmrepl_obs::enabled() {
        // One merge for the whole run; the event loop itself stays free
        // of tracing calls.
        mmrepl_obs::merge_histogram("des.response_s", outcome.pages.histogram());
        mmrepl_obs::add("des.events", outcome.events);
        mmrepl_obs::add("des.page_requests", outcome.pages.count());
        // Live mirrors for the telemetry plane.
        mmrepl_obs::counter_add("des.events", outcome.events);
        mmrepl_obs::counter_add("des.page_requests", outcome.pages.count());
        mmrepl_obs::observe_hist(
            "des.response_s",
            outcome.pages.histogram(),
            outcome.mean_response() * outcome.pages.count() as f64,
        );
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queueing::queueing_replay;
    use mmrepl_baselines::StaticRouter;
    use mmrepl_core::partition_all;
    use mmrepl_workload::{generate_trace, TraceConfig, WorkloadParams};

    fn setup(seed: u64) -> (System, Vec<SiteTrace>) {
        let params = WorkloadParams::small();
        let sys = mmrepl_workload::generate_system(&params, seed).unwrap();
        let traces = generate_trace(&sys, &TraceConfig::from_params(&params), seed);
        (sys, traces)
    }

    #[test]
    fn des_agrees_with_analytic_queueing_replay() {
        let (sys, traces) = setup(1);
        let placement = partition_all(&sys);
        let des = des_replay(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        let analytic = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        assert_eq!(des.pages.count(), analytic.pages.count());
        assert!(
            (des.mean_response() - analytic.mean_response()).abs() < 1e-9,
            "DES {} vs analytic {}",
            des.mean_response(),
            analytic.mean_response()
        );
        assert_eq!(
            des.pages.quantile(0.95).unwrap(),
            analytic.pages.quantile(0.95).unwrap()
        );
    }

    #[test]
    fn des_agrees_under_overload_too() {
        let (sys, traces) = setup(2);
        let sys = sys.with_processing_fraction(0.2);
        let placement = mmrepl_model::Placement::all_local(&sys);
        let des = des_replay(&sys, &traces, &mut StaticRouter::new(&placement, "local"));
        let analytic = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "local"));
        assert!((des.mean_response() - analytic.mean_response()).abs() < 1e-9);
    }

    #[test]
    fn event_accounting() {
        let (sys, traces) = setup(3);
        let placement = partition_all(&sys);
        let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
        let des = des_replay(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        assert_eq!(des.events, total);
        assert!(des.makespan > 0.0);
        // The makespan is at least the last arrival plus its service.
        let horizon = traces
            .iter()
            .map(|t| t.len() as f64 / 5.0) // site_page_rate = 5 req/s
            .fold(0.0f64, f64::max);
        assert!(des.makespan >= horizon);
    }

    #[test]
    fn deterministic() {
        let (sys, traces) = setup(4);
        let placement = partition_all(&sys);
        let a = des_replay(&sys, &traces, &mut StaticRouter::new(&placement, "x"));
        let b = des_replay(&sys, &traces, &mut StaticRouter::new(&placement, "x"));
        assert_eq!(a, b);
    }
}
