//! Differential oracles for the planning pipeline.
//!
//! The dense planner state ([`mmrepl_core::SiteWork`]) earns its speed by
//! maintaining every derived quantity incrementally: streams, loads, mark
//! counts, stored bytes, CSR reverse indices. The invariant auditor
//! (`mmrepl_core::audit`) cross-checks those quantities against from-scratch
//! recomputation; this module goes one step further and checks the
//! *decisions*. Three oracle pairs, each asserting that two independent
//! implementations agree:
//!
//! 1. **dense planner ≡ naive reference** — [`reference_plan`] re-runs the
//!    whole pipeline (partition → storage → capacity → off-loading) on a
//!    [`RefSite`] that keeps only the partition rows and a stored-object
//!    set, recomputing streams, loads, storage and mark counts by full
//!    scans on every query. The greedy keys are bit-identical by
//!    construction (they read only exact integer stream totals and fresh
//!    per-slot deltas), so the final placements must match exactly.
//! 2. **unbounded delta-replan ≡ cold plan** — the online replanner with
//!    every site dirty and an unlimited churn budget must land on the same
//!    placement as a cold plan of the estimated system.
//! 3. **DES ≡ Eq. 5** — on an unconstrained system with a nominal
//!    (unperturbed) trace, the event-driven replay's mean page response
//!    must match the analytic Eq. 5 prediction to within float tolerance:
//!    queueing waits are zero and optional payloads are occupancy only.
//!
//! [`fuzz`] sweeps the three oracles over seeded systems;
//! [`minimize_counterexample`] shrinks a failing system by dropping sites
//! and pages while the failure persists, so divergences arrive as small
//! reproducible cases rather than 25-site haystacks.
//!
//! ## What the reference does and does not share
//!
//! The reference reuses two exported primitives whose behaviour is pinned
//! by their own unit tests: [`LazyMinHeap`] (pop order over a totally
//! ordered key set is independent of internal layout) and
//! [`OptionalCost`]'s flip accumulator (mirrored flip-for-flip so the
//! `repartition_page` keep-decision, which compares accumulated page
//! objectives at a 1e-12 threshold, rounds identically). Everything the
//! dense state maintains incrementally — streams, serving load, storage
//! bytes, mark counts, reverse indices, the orphan worklist — is
//! recomputed naively here, which is exactly the bookkeeping the oracle
//! exists to distrust.

use mmrepl_baselines::StaticRouter;
use mmrepl_core::state::SlotKind;
use mmrepl_core::{
    LazyMinHeap, OffloadConfig, OptionalCost, PlannerConfig, ReplicationPolicy, SiteParams, Streams,
};
use mmrepl_model::{
    CostModel, IdVec, ObjectId, PageId, PagePartition, Placement, SiteId, System, SystemBuilder,
    WebPage,
};
use mmrepl_online::{ChurnBudget, DeltaPlanner};
use mmrepl_workload::{generate_system, generate_trace, DriftModel, TraceConfig, WorkloadParams};
use std::collections::{BTreeSet, HashSet};

/// The negotiation tolerance shared with `mmrepl_core::offload`.
const EPS: f64 = 1e-9;

// ---------------------------------------------------------------------------
// The naive reference site
// ---------------------------------------------------------------------------

/// One site's reference planning state: partition rows, a stored-object
/// set, and the [`OptionalCost`] accumulators (mirrored flip-for-flip, see
/// module docs). Every other quantity is recomputed by full scans.
struct RefSite<'a> {
    sys: &'a System,
    site: SiteId,
    params: SiteParams,
    alpha1: f64,
    alpha2: f64,
    pages: Vec<PageId>,
    parts: Vec<PagePartition>,
    opt_cost: Vec<OptionalCost>,
    store: BTreeSet<ObjectId>,
    html_bytes: u64,
}

impl<'a> RefSite<'a> {
    /// Adopts the initial partition rows for `site`; the store becomes the
    /// locally-marked object set, exactly as [`mmrepl_core::SiteWork`]
    /// does. The reference models the paper's read-only system (no update
    /// accounting).
    fn new(sys: &'a System, site: SiteId, initial: &[PagePartition], cost: CostWeights) -> Self {
        let params = SiteParams::of(sys.site(site));
        let pages: Vec<PageId> = sys.pages_of(site).to_vec();
        let mut parts = Vec::with_capacity(pages.len());
        let mut opt_cost = Vec::with_capacity(pages.len());
        let mut store = BTreeSet::new();
        let mut html_bytes = 0u64;
        for &pid in &pages {
            let page = sys.page(pid);
            let part = initial[pid.index()].clone();
            html_bytes += page.html_size.get();
            for (slot, &k) in page.compulsory.iter().enumerate() {
                if part.local_compulsory[slot] {
                    store.insert(k);
                }
            }
            for (slot, o) in page.optional.iter().enumerate() {
                if part.local_optional[slot] {
                    store.insert(o.object);
                }
            }
            opt_cost.push(OptionalCost::build(
                page.opt_req_factor,
                &params,
                page.optional.iter().enumerate().map(|(slot, o)| {
                    (o.prob, sys.object_size(o.object), part.local_optional[slot])
                }),
            ));
            parts.push(part);
        }
        RefSite {
            sys,
            site,
            params,
            alpha1: cost.alpha1,
            alpha2: cost.alpha2,
            pages,
            parts,
            opt_cost,
            store,
            html_bytes,
        }
    }

    // --- naive recomputation -------------------------------------------

    /// Rebuilds page `idx`'s stream totals from its partition row.
    fn streams(&self, idx: usize) -> Streams {
        let page = self.sys.page(self.pages[idx]);
        let part = &self.parts[idx];
        let mut s = Streams::all_local_base(page.html_size);
        for (slot, &k) in page.compulsory.iter().enumerate() {
            let size = self.sys.object_size(k).get();
            if part.local_compulsory[slot] {
                s.local_bytes += size;
            } else {
                s.remote_bytes += size;
                s.n_remote += 1;
            }
        }
        s
    }

    fn freq(&self, idx: usize) -> f64 {
        self.sys.page(self.pages[idx]).freq.get()
    }

    /// Eq. 8 LHS by full scan (page-index order, the dense constructor's
    /// summation order).
    fn load(&self) -> f64 {
        let mut load = 0.0;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            let part = &self.parts[idx];
            let opt_local: f64 = page
                .optional
                .iter()
                .zip(&part.local_optional)
                .filter(|(_, &l)| l)
                .map(|(o, _)| o.prob)
                .sum();
            load += page.freq.get()
                * (1.0 + part.n_local_compulsory() as f64 + page.opt_req_factor * opt_local);
        }
        load
    }

    /// `P(S_i, R)` by full scan.
    fn repo_load(&self) -> f64 {
        let mut total = 0.0;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            let part = &self.parts[idx];
            let remote_comp = (page.n_compulsory() - part.n_local_compulsory()) as f64;
            let opt_remote: f64 = page
                .optional
                .iter()
                .zip(&part.local_optional)
                .filter(|(_, &l)| !l)
                .map(|(o, _)| o.prob)
                .sum();
            total += page.freq.get() * (remote_comp + page.opt_req_factor * opt_remote);
        }
        total
    }

    fn capacity(&self) -> f64 {
        self.sys.site(self.site).capacity.get()
    }

    fn headroom(&self) -> f64 {
        (self.capacity() - self.load()).max(0.0)
    }

    /// Eq. 10 LHS: HTML plus the store's bytes, both exact.
    fn storage_used(&self) -> u64 {
        self.html_bytes
            + self
                .store
                .iter()
                .map(|&k| self.sys.object_size(k).get())
                .sum::<u64>()
    }

    fn storage_capacity(&self) -> u64 {
        self.sys.site(self.site).storage.get()
    }

    fn space_left(&self) -> u64 {
        self.storage_capacity().saturating_sub(self.storage_used())
    }

    /// Local-mark count by full scan.
    fn marks_on(&self, object: ObjectId) -> u32 {
        let mut marks = 0;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            let part = &self.parts[idx];
            for (slot, &k) in page.compulsory.iter().enumerate() {
                if k == object && part.local_compulsory[slot] {
                    marks += 1;
                }
            }
            for (slot, o) in page.optional.iter().enumerate() {
                if o.object == object && part.local_optional[slot] {
                    marks += 1;
                }
            }
        }
        marks
    }

    /// Objective contribution of page `idx` — same expression as the dense
    /// `page_d`, over the rebuilt streams and the mirrored accumulator.
    fn page_d(&self, idx: usize) -> f64 {
        self.freq(idx)
            * (self.alpha1 * self.streams(idx).response(&self.params)
                + self.alpha2 * self.opt_cost[idx].time())
    }

    /// Objective increase if `object` were deallocated. The page/slot scan
    /// visits references in exactly the dense CSR order (page index
    /// ascending, compulsory slots before optional), so the floating-point
    /// accumulation rounds identically.
    fn delta_d_dealloc(&self, object: ObjectId) -> f64 {
        let size = self.sys.object_size(object);
        let mut delta = 0.0;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, &k) in page.compulsory.iter().enumerate() {
                if k == object && self.parts[idx].local_compulsory[slot] {
                    let s = self.streams(idx);
                    let before = s.response(&self.params);
                    let after = s.response_if_remote(size, &self.params);
                    delta += self.freq(idx) * self.alpha1 * (after - before);
                }
            }
        }
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, o) in page.optional.iter().enumerate() {
                if o.object == object && self.parts[idx].local_optional[slot] {
                    delta += self.freq(idx)
                        * self.alpha2
                        * self.opt_cost[idx].delta_if_flipped(o.prob, size, false, &self.params);
                }
            }
        }
        delta
    }

    // --- mutation -------------------------------------------------------

    fn set_compulsory(&mut self, idx: usize, slot: usize, local: bool) {
        if self.parts[idx].local_compulsory[slot] == local {
            return;
        }
        if local {
            let object = self.sys.page(self.pages[idx]).compulsory[slot];
            assert!(self.store.contains(&object), "marking unstored {object}");
        }
        self.parts[idx].local_compulsory[slot] = local;
    }

    fn set_optional(&mut self, idx: usize, slot: usize, local: bool) {
        if self.parts[idx].local_optional[slot] == local {
            return;
        }
        let oref = self.sys.page(self.pages[idx]).optional[slot];
        if local {
            assert!(
                self.store.contains(&oref.object),
                "marking unstored optional"
            );
        }
        let size = self.sys.object_size(oref.object);
        self.opt_cost[idx].flip(oref.prob, size, local, &self.params);
        self.parts[idx].local_optional[slot] = local;
    }

    fn alloc(&mut self, object: ObjectId) {
        self.store.insert(object);
    }

    /// Flips every local mark on `object` remote and removes it from the
    /// store, returning the page indices whose compulsory row changed (one
    /// entry per flipped slot, like the dense version).
    fn dealloc(&mut self, object: ObjectId) -> Vec<usize> {
        let mut affected = Vec::new();
        for idx in 0..self.pages.len() {
            let n_comp = self.sys.page(self.pages[idx]).compulsory.len();
            for slot in 0..n_comp {
                if self.sys.page(self.pages[idx]).compulsory[slot] == object
                    && self.parts[idx].local_compulsory[slot]
                {
                    self.set_compulsory(idx, slot, false);
                    affected.push(idx);
                }
            }
        }
        for idx in 0..self.pages.len() {
            let n_opt = self.sys.page(self.pages[idx]).optional.len();
            for slot in 0..n_opt {
                if self.sys.page(self.pages[idx]).optional[slot].object == object
                    && self.parts[idx].local_optional[slot]
                {
                    self.set_optional(idx, slot, false);
                }
            }
        }
        self.store.remove(&object);
        affected
    }

    /// Removes stored objects without any local mark (full-store scan in
    /// ascending id order), returning the bytes freed.
    fn drop_orphans(&mut self) -> u64 {
        let orphans: Vec<ObjectId> = self
            .store
            .iter()
            .copied()
            .filter(|&k| self.marks_on(k) == 0)
            .collect();
        let mut freed = 0;
        for k in orphans {
            self.store.remove(&k);
            freed += self.sys.object_size(k).get();
        }
        freed
    }

    /// The post-deallocation page adjustment, mirroring the dense
    /// `repartition_page` decision-for-decision: stored objects re-balanced
    /// in decreasing size order against the pre-charged fixed-remote
    /// payload; the new row kept only if the page objective improves past
    /// the same 1e-12 threshold.
    fn repartition_page(&mut self, idx: usize) -> bool {
        let pid = self.pages[idx];
        let page = self.sys.page(pid);
        let p = self.params;

        let mut candidates: Vec<usize> = Vec::new();
        let mut fixed_remote_bytes = 0u64;
        for (slot, &k) in page.compulsory.iter().enumerate() {
            if self.store.contains(&k) {
                candidates.push(slot);
            } else {
                fixed_remote_bytes += self.sys.object_size(k).get();
            }
        }
        candidates.sort_by(|&a, &b| {
            let sa = self.sys.object_size(page.compulsory[a]);
            let sb = self.sys.object_size(page.compulsory[b]);
            sb.cmp(&sa).then(a.cmp(&b))
        });

        let mut local = p.local_ovhd + page.html_size.get() as f64 / p.local_rate;
        let mut remote = p.repo_ovhd + fixed_remote_bytes as f64 / p.repo_rate;
        let mut new_marks = vec![false; page.n_compulsory()];
        for &slot in &candidates {
            let size = self.sys.object_size(page.compulsory[slot]).get() as f64;
            let local_if = local + size / p.local_rate;
            let remote_if = remote + size / p.repo_rate;
            if remote_if < local_if {
                remote = remote_if;
            } else {
                local = local_if;
                new_marks[slot] = true;
            }
        }
        let new_opt: Vec<bool> = page
            .optional
            .iter()
            .map(|o| {
                self.store.contains(&o.object) && p.local_fetch_wins(self.sys.object_size(o.object))
            })
            .collect();

        let before = self.page_d(idx);
        let old_comp = self.parts[idx].local_compulsory.clone();
        let old_opt = self.parts[idx].local_optional.clone();
        for (slot, &mark) in new_marks.iter().enumerate() {
            self.set_compulsory(idx, slot, mark);
        }
        for (slot, &mark) in new_opt.iter().enumerate() {
            self.set_optional(idx, slot, mark);
        }
        let after = self.page_d(idx);
        if after < before - 1e-12 {
            true
        } else {
            for (slot, &mark) in old_comp.iter().enumerate() {
                self.set_compulsory(idx, slot, mark);
            }
            for (slot, &mark) in old_opt.iter().enumerate() {
                self.set_optional(idx, slot, mark);
            }
            false
        }
    }

    // --- restoration stages ---------------------------------------------

    /// Eq. 10 restoration — the storage greedy over the shared lazy heap.
    fn restore_storage(&mut self) {
        let capacity = self.storage_capacity();
        if self.storage_used() <= capacity {
            return;
        }
        self.drop_orphans();
        let entries: Vec<(f64, ObjectId)> = self
            .store
            .iter()
            .map(|&k| (self.dealloc_key(k), k))
            .collect();
        let mut heap: LazyMinHeap<ObjectId> = LazyMinHeap::from_entries(entries);
        while self.storage_used() > capacity {
            let Some(object) =
                heap.pop_current(|k| self.store.contains(&k), |k| self.dealloc_key(k))
            else {
                break;
            };
            let affected = self.dealloc(object);
            for idx in affected {
                self.repartition_page(idx);
            }
            self.drop_orphans();
        }
    }

    /// The paper's amortized-over-size deallocation key.
    fn dealloc_key(&self, object: ObjectId) -> f64 {
        self.delta_d_dealloc(object) / self.sys.object_size(object).get() as f64
    }

    /// Eq. 8 restoration — the capacity greedy over the shared lazy heap.
    fn restore_capacity(&mut self) {
        let capacity = self.capacity();
        if self.load() <= capacity + EPS {
            return;
        }
        let mut heap: LazyMinHeap<(u32, u32, SlotKind)> = LazyMinHeap::new();
        for idx in 0..self.pages.len() {
            let part = &self.parts[idx];
            for (slot, &local) in part.local_compulsory.iter().enumerate() {
                if local {
                    let cand = (idx as u32, slot as u32, SlotKind::Compulsory);
                    heap.push(self.move_ratio(cand), cand);
                }
            }
            for (slot, &local) in part.local_optional.iter().enumerate() {
                if local {
                    let cand = (idx as u32, slot as u32, SlotKind::Optional);
                    heap.push(self.move_ratio(cand), cand);
                }
            }
        }
        while self.load() > capacity + EPS {
            let Some(cand) = heap.pop_current(
                |(idx, slot, kind)| match kind {
                    SlotKind::Compulsory => {
                        self.parts[idx as usize].local_compulsory[slot as usize]
                    }
                    SlotKind::Optional => self.parts[idx as usize].local_optional[slot as usize],
                },
                |c| self.move_ratio(c),
            ) else {
                break;
            };
            let (idx, slot, kind) = cand;
            let (idx, slot) = (idx as usize, slot as usize);
            let object = match kind {
                SlotKind::Compulsory => {
                    let k = self.sys.page(self.pages[idx]).compulsory[slot];
                    self.set_compulsory(idx, slot, false);
                    k
                }
                SlotKind::Optional => {
                    let k = self.sys.page(self.pages[idx]).optional[slot].object;
                    self.set_optional(idx, slot, false);
                    k
                }
            };
            if self.marks_on(object) == 0 && self.store.contains(&object) {
                self.dealloc(object);
            }
        }
    }

    /// The capacity greedy key: objective damage per request/second freed
    /// (read-only model — no orphan refresh bonus).
    fn move_ratio(&self, (idx, slot, kind): (u32, u32, SlotKind)) -> f64 {
        let (idx, slot) = (idx as usize, slot as usize);
        let page = self.sys.page(self.pages[idx]);
        let freq = page.freq.get();
        match kind {
            SlotKind::Compulsory => {
                let size = self.sys.object_size(page.compulsory[slot]);
                let s = self.streams(idx);
                let before = s.response(&self.params);
                let after = s.response_if_remote(size, &self.params);
                let delta_d = freq * self.alpha1 * (after - before);
                delta_d / freq.max(f64::MIN_POSITIVE)
            }
            SlotKind::Optional => {
                let oref = page.optional[slot];
                let size = self.sys.object_size(oref.object);
                let delta_d = freq
                    * self.alpha2
                    * self.opt_cost[idx].delta_if_flipped(oref.prob, size, false, &self.params);
                let delta_load = freq * page.opt_req_factor * oref.prob;
                delta_d / delta_load.max(f64::MIN_POSITIVE)
            }
        }
    }

    // --- off-loading absorption -----------------------------------------

    /// The absorption greedy key (objective change per unit of workload
    /// gained).
    fn gain_ratio(&self, (idx, slot, kind): (u32, u32, SlotKind)) -> f64 {
        let (idx, slot) = (idx as usize, slot as usize);
        let page = self.sys.page(self.pages[idx]);
        let freq = page.freq.get();
        match kind {
            SlotKind::Compulsory => {
                let size = self.sys.object_size(page.compulsory[slot]);
                let s = self.streams(idx);
                let before = s.response(&self.params);
                let after = s.response_if_local(size, &self.params);
                freq * self.alpha1 * (after - before) / freq.max(f64::MIN_POSITIVE)
            }
            SlotKind::Optional => {
                let oref = page.optional[slot];
                let size = self.sys.object_size(oref.object);
                let delta_d = freq
                    * self.alpha2
                    * self.opt_cost[idx].delta_if_flipped(oref.prob, size, true, &self.params);
                let delta_load = freq * page.opt_req_factor * oref.prob;
                delta_d / delta_load.max(f64::MIN_POSITIVE)
            }
        }
    }

    /// One absorption pass, mirroring `absorb_workload`.
    fn absorb_workload(&mut self, amount: f64, allow_alloc: bool, max_swaps: usize) -> f64 {
        let mut absorbed = self.absorb_greedy(amount, allow_alloc);
        if absorbed + EPS < amount && max_swaps > 0 {
            let swaps = self.swap_for_workload(amount - absorbed, max_swaps);
            if swaps > 0 {
                absorbed += self.absorb_greedy(amount - absorbed, true);
            }
        }
        absorbed
    }

    /// The greedy re-marking core shared by both absorption phases. The
    /// dense version open-codes the lazy revalidation; its policy is the
    /// same as [`LazyMinHeap::pop_current`], which we use directly. Entries
    /// skipped by the capacity or storage gates are consumed permanently,
    /// exactly like the dense `continue`.
    fn absorb_greedy(&mut self, amount: f64, allow_alloc: bool) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let mut heap: LazyMinHeap<(u32, u32, SlotKind)> = LazyMinHeap::new();
        for idx in 0..self.pages.len() {
            let part = &self.parts[idx];
            for (slot, &local) in part.local_compulsory.iter().enumerate() {
                if !local {
                    let cand = (idx as u32, slot as u32, SlotKind::Compulsory);
                    heap.push(self.gain_ratio(cand), cand);
                }
            }
            for (slot, &local) in part.local_optional.iter().enumerate() {
                if !local {
                    let cand = (idx as u32, slot as u32, SlotKind::Optional);
                    heap.push(self.gain_ratio(cand), cand);
                }
            }
        }
        let mut absorbed = 0.0;
        let capacity = self.capacity();
        while absorbed + EPS < amount {
            let Some((idx, slot, kind)) = heap.pop_current(|_| true, |c| self.gain_ratio(c)) else {
                break;
            };
            let (idx, slot) = (idx as usize, slot as usize);
            let page = self.sys.page(self.pages[idx]);
            let (object, gain) = match kind {
                SlotKind::Compulsory => (page.compulsory[slot], page.freq.get()),
                SlotKind::Optional => {
                    let o = page.optional[slot];
                    (o.object, page.freq.get() * page.opt_req_factor * o.prob)
                }
            };
            if self.load() + gain > capacity + EPS {
                continue;
            }
            if !self.store.contains(&object) {
                let size = self.sys.object_size(object).get();
                if !(allow_alloc && self.space_left() >= size) {
                    continue;
                }
                self.alloc(object);
            }
            match kind {
                SlotKind::Compulsory => self.set_compulsory(idx, slot, true),
                SlotKind::Optional => self.set_optional(idx, slot, true),
            }
            absorbed += gain;
        }
        absorbed
    }

    /// Workload the site would gain by serving every remote reference of
    /// `object` locally.
    fn potential_workload(&self, object: ObjectId) -> f64 {
        let mut total = 0.0;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, &k) in page.compulsory.iter().enumerate() {
                if k == object && !self.parts[idx].local_compulsory[slot] {
                    total += page.freq.get();
                }
            }
        }
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, o) in page.optional.iter().enumerate() {
                if o.object == object && !self.parts[idx].local_optional[slot] {
                    total += page.freq.get() * page.opt_req_factor * o.prob;
                }
            }
        }
        total
    }

    /// Workload currently held by `object`'s local marks.
    fn held_workload(&self, object: ObjectId) -> f64 {
        let mut total = 0.0;
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, &k) in page.compulsory.iter().enumerate() {
                if k == object && self.parts[idx].local_compulsory[slot] {
                    total += page.freq.get();
                }
            }
        }
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, o) in page.optional.iter().enumerate() {
                if o.object == object && self.parts[idx].local_optional[slot] {
                    total += page.freq.get() * page.opt_req_factor * o.prob;
                }
            }
        }
        total
    }

    /// Marks every remote reference of `object` local, capacity permitting.
    fn mark_all_refs_local(&mut self, object: ObjectId) {
        let capacity = self.capacity();
        for idx in 0..self.pages.len() {
            let n_comp = self.sys.page(self.pages[idx]).compulsory.len();
            for slot in 0..n_comp {
                if self.sys.page(self.pages[idx]).compulsory[slot] == object
                    && !self.parts[idx].local_compulsory[slot]
                {
                    let gain = self.freq(idx);
                    if self.load() + gain <= capacity + EPS {
                        self.set_compulsory(idx, slot, true);
                    }
                }
            }
        }
        for idx in 0..self.pages.len() {
            let n_opt = self.sys.page(self.pages[idx]).optional.len();
            for slot in 0..n_opt {
                let page = self.sys.page(self.pages[idx]);
                let oref = page.optional[slot];
                if oref.object == object && !self.parts[idx].local_optional[slot] {
                    let gain = page.freq.get() * page.opt_req_factor * oref.prob;
                    if self.load() + gain <= capacity + EPS {
                        self.set_optional(idx, slot, true);
                    }
                }
            }
        }
    }

    /// The paper's last-ditch swap step, mirroring `swap_for_workload`.
    fn swap_for_workload(&mut self, needed: f64, max_swaps: usize) -> usize {
        let mut candidates: Vec<(ObjectId, f64, u64)> = Vec::new();
        let mut seen: HashSet<ObjectId> = HashSet::new();
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.sys.page(pid);
            for (slot, &k) in page.compulsory.iter().enumerate() {
                if !self.parts[idx].local_compulsory[slot]
                    && !self.store.contains(&k)
                    && seen.insert(k)
                {
                    candidates.push((k, self.potential_workload(k), self.sys.object_size(k).get()));
                }
            }
            for (slot, o) in page.optional.iter().enumerate() {
                if !self.parts[idx].local_optional[slot]
                    && !self.store.contains(&o.object)
                    && seen.insert(o.object)
                {
                    candidates.push((
                        o.object,
                        self.potential_workload(o.object),
                        self.sys.object_size(o.object).get(),
                    ));
                }
            }
        }
        candidates.sort_by(|a, b| {
            let ra = a.1 / a.2.max(1) as f64;
            let rb = b.1 / b.2.max(1) as f64;
            rb.total_cmp(&ra).then(a.0.cmp(&b.0))
        });

        let mut swaps = 0;
        let mut still_needed = needed;
        for (obj, gain, size) in candidates {
            if swaps >= max_swaps || still_needed <= EPS {
                break;
            }
            if gain <= EPS {
                break;
            }
            let mut stored: Vec<(ObjectId, f64, u64)> = self
                .store
                .iter()
                .map(|&k| (k, self.held_workload(k), self.sys.object_size(k).get()))
                .collect();
            stored.sort_by(|a, b| {
                let ra = a.1 / a.2.max(1) as f64;
                let rb = b.1 / b.2.max(1) as f64;
                ra.total_cmp(&rb).then(a.0.cmp(&b.0))
            });
            let mut to_evict = Vec::new();
            let mut freed = self.space_left();
            let mut evicted_value = 0.0;
            for &(k, held, ksize) in &stored {
                if freed >= size {
                    break;
                }
                to_evict.push(k);
                freed += ksize;
                evicted_value += held;
            }
            if freed < size || evicted_value + EPS >= gain {
                continue;
            }
            if self.load() > self.capacity() + EPS {
                continue;
            }
            for k in to_evict {
                self.dealloc(k);
            }
            self.alloc(obj);
            self.mark_all_refs_local(obj);
            still_needed -= gain - evicted_value;
            swaps += 1;
        }
        swaps
    }
}

/// The objective weights the reference shares with the dense planner.
#[derive(Clone, Copy)]
struct CostWeights {
    alpha1: f64,
    alpha2: f64,
}

// ---------------------------------------------------------------------------
// Reference pipeline
// ---------------------------------------------------------------------------

/// Stage 1, reimplemented: the greedy `PARTITION(W_j)` in decreasing size
/// order, with the pseudocode's pre-charged `Ovhd(R, S_i)`.
fn ref_partition_page(sys: &System, pid: PageId) -> PagePartition {
    let page = sys.page(pid);
    let p = SiteParams::of(sys.site(page.site));
    let mut order: Vec<(u64, u32)> = page
        .compulsory
        .iter()
        .enumerate()
        .map(|(slot, &k)| (sys.object_size(k).get(), slot as u32))
        .collect();
    order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut local = p.local_ovhd + page.html_size.get() as f64 / p.local_rate;
    let mut remote = p.repo_ovhd;
    let mut local_compulsory = vec![false; page.n_compulsory()];
    for &(size, slot) in &order {
        let size = size as f64;
        let local_if = local + size / p.local_rate;
        let remote_if = remote + size / p.repo_rate;
        if remote_if < local_if {
            remote = remote_if;
        } else {
            local = local_if;
            local_compulsory[slot as usize] = true;
        }
    }
    let local_optional = page
        .optional
        .iter()
        .map(|o| p.local_fetch_wins(sys.object_size(o.object)))
        .collect();
    PagePartition {
        local_compulsory,
        local_optional,
    }
}

/// Stage 4, as a plain sequential loop. The message protocol reduces to
/// this because the bus is FIFO with uniform latency: all of a round's
/// NewReq messages are delivered (and absorbed) in assignment order before
/// any Absorbed reply, and each reply carries the status of its own site
/// only, so refreshing each status right after its absorption is
/// equivalent.
fn ref_offload(refs: &mut [RefSite<'_>], repo_capacity: f64, config: &OffloadConfig) {
    #[derive(Clone, Copy)]
    struct Status {
        space: u64,
        headroom: f64,
        repo_load: f64,
    }
    let status = |r: &RefSite<'_>| Status {
        space: r.space_left(),
        headroom: r.headroom(),
        repo_load: r.repo_load(),
    };
    let mut statuses: Vec<Status> = refs.iter().map(status).collect();
    let mut demoted = vec![false; refs.len()];
    let mut rounds = 0;

    loop {
        let p_r: f64 = statuses.iter().map(|s| s.repo_load).sum();
        if p_r <= repo_capacity + EPS || rounds >= config.max_rounds {
            break;
        }
        let l1: Vec<usize> = (0..refs.len())
            .filter(|&i| !demoted[i] && statuses[i].space > 0 && statuses[i].headroom > EPS)
            .collect();
        let l2: Vec<usize> = (0..refs.len())
            .filter(|&i| !demoted[i] && statuses[i].space == 0 && statuses[i].headroom > EPS)
            .collect();
        if l1.is_empty() && l2.is_empty() {
            break;
        }
        let excess = p_r - repo_capacity;
        let p_l1: f64 = l1.iter().map(|&i| statuses[i].headroom).sum();
        let p_l2: f64 = l2.iter().map(|&i| statuses[i].headroom).sum();

        let split = |class: &[usize], statuses: &[Status], total: f64, class_headroom: f64| {
            use mmrepl_core::AssignmentRule;
            match config.assignment {
                AssignmentRule::ProportionalToHeadroom => class
                    .iter()
                    .map(|&i| statuses[i].headroom * total / class_headroom)
                    .collect::<Vec<f64>>(),
                AssignmentRule::EqualSplit => {
                    let share = total / class.len() as f64;
                    class
                        .iter()
                        .map(|&i| share.min(statuses[i].headroom))
                        .collect()
                }
            }
        };
        let mut assignments: Vec<(usize, f64, bool)> = Vec::new();
        if excess <= p_l1 {
            for (&i, amt) in l1.iter().zip(split(&l1, &statuses, excess, p_l1)) {
                assignments.push((i, amt, true));
            }
        } else {
            for &i in &l1 {
                assignments.push((i, statuses[i].headroom, true));
            }
            if p_l2 > EPS {
                let remainder = excess - p_l1;
                for (&i, amt) in l2.iter().zip(split(&l2, &statuses, remainder, p_l2)) {
                    assignments.push((i, amt, false));
                }
            }
        }

        let mut round_absorbed = 0.0;
        for &(i, amount, allow_alloc) in &assignments {
            let cfg_swaps = if allow_alloc { 0 } else { config.max_swaps };
            let absorbed = refs[i].absorb_workload(amount, allow_alloc, cfg_swaps);
            statuses[i] = status(&refs[i]);
            if absorbed + EPS < amount {
                demoted[i] = true;
            }
            round_absorbed += absorbed;
        }
        rounds += 1;
        if round_absorbed <= EPS {
            break;
        }
    }
}

/// Runs the whole pipeline through the naive reference state and returns
/// the final placement. Must agree exactly with
/// [`ReplicationPolicy::plan`] under the same configuration — the first
/// differential oracle.
///
/// # Panics
/// Panics if `config.include_update_load` is set: the reference models the
/// paper's read-only system (the update-accounting paths have their own
/// unit tests in `mmrepl-core`).
pub fn reference_plan(system: &System, config: &PlannerConfig) -> Placement {
    assert!(
        !config.include_update_load,
        "the naive reference models the read-only system"
    );
    let initial: Vec<PagePartition> = system
        .pages()
        .ids()
        .map(|pid| ref_partition_page(system, pid))
        .collect();
    let weights = CostWeights {
        alpha1: config.cost.alpha1,
        alpha2: config.cost.alpha2,
    };
    let mut refs: Vec<RefSite<'_>> = system
        .sites()
        .ids()
        .map(|s| RefSite::new(system, s, &initial, weights))
        .collect();
    for r in refs.iter_mut() {
        r.restore_storage();
        r.restore_capacity();
    }
    ref_offload(
        &mut refs,
        system.repository().capacity.get(),
        &config.offload,
    );

    let mut rows: Vec<Option<PagePartition>> = vec![None; system.n_pages()];
    for r in refs {
        for (idx, pid) in r.pages.iter().enumerate() {
            rows[pid.index()] = Some(r.parts[idx].clone());
        }
    }
    let partitions: IdVec<PageId, PagePartition> = rows
        .into_iter()
        .map(|r| r.expect("every page belongs to exactly one site"))
        .collect();
    Placement::new(system, partitions).expect("reference shapes are consistent")
}

// ---------------------------------------------------------------------------
// Seeded oracle cases
// ---------------------------------------------------------------------------

/// SplitMix64 — derives independent per-seed parameters.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a mixed word.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The fuzzed system for oracle 1: a seeded small workload squeezed by
/// seed-derived storage, processing and repository fractions, so the fuzz
/// corpus exercises every restoration stage (including infeasible points).
fn fuzzed_system(seed: u64) -> System {
    let sys = generate_system(&WorkloadParams::small(), seed).expect("small params are valid");
    let storage = 0.3 + 0.9 * unit(splitmix64(seed ^ 0x5704_AA6E));
    let processing = 0.5 + 1.0 * unit(splitmix64(seed ^ 0xCAFA_C117));
    let central = 0.6 + 0.9 * unit(splitmix64(seed ^ 0x0C3A_7EA1));
    sys.with_storage_fraction(storage)
        .with_processing_fraction(processing)
        .with_central_fraction(central)
}

/// Oracle 1: the dense planner and the naive reference must produce
/// byte-identical placements on a seeded constrained system.
pub fn oracle_dense_vs_reference(seed: u64) -> Result<(), String> {
    let sys = fuzzed_system(seed);
    check_dense_vs_reference(&sys).map_err(|e| format!("seed {seed}: {e}"))
}

/// The system-level check behind oracle 1, reusable by the minimizer.
pub fn check_dense_vs_reference(sys: &System) -> Result<(), String> {
    let config = PlannerConfig::default();
    let dense = ReplicationPolicy::with_config(config).plan(sys).placement;
    let reference = reference_plan(sys, &config);
    if dense == reference {
        return Ok(());
    }
    let mut diffs = 0;
    let mut first = None;
    for (pid, part) in dense.iter() {
        if part != reference.partition(pid) {
            diffs += 1;
            first.get_or_insert(pid);
        }
    }
    let pid = first.expect("unequal placements must differ on some page");
    Err(format!(
        "dense and reference placements diverge on {diffs} of {} pages; first at {pid} \
         (site {}): dense {:?} vs reference {:?}",
        sys.n_pages(),
        sys.page(pid).site,
        dense.partition(pid),
        reference.partition(pid),
    ))
}

/// Oracle 2: the online replanner with every site dirty and an unlimited
/// churn budget must land exactly on the cold plan of the drifted system.
pub fn oracle_delta_vs_cold(seed: u64) -> Result<(), String> {
    let frac = 0.45 + 0.5 * unit(splitmix64(seed ^ 0xDE17A));
    let rotation = 0.1 + 0.8 * unit(splitmix64(seed ^ 0x0207A7E));
    let base = generate_system(&WorkloadParams::small(), seed)
        .expect("small params are valid")
        .with_storage_fraction(frac)
        .with_processing_fraction(f64::INFINITY);
    let est = DriftModel::new(rotation).apply(&base, seed ^ 0xD1F7);

    let mut planner = DeltaPlanner::new(&base, ReplicationPolicy::new());
    let all_sites: Vec<SiteId> = base.sites().ids().collect();
    let outcome = planner.replan(&est, &all_sites, ChurnBudget::unlimited());
    if outcome.report.pages_deferred != 0 || outcome.report.bytes_deferred != 0 {
        return Err(format!(
            "seed {seed}: unlimited budget deferred work ({} pages, {} bytes)",
            outcome.report.pages_deferred, outcome.report.bytes_deferred
        ));
    }
    let cold = ReplicationPolicy::new().plan(&est).placement;
    if planner.live() != &cold {
        let diffs = planner.live().diff(&cold).pages_changed;
        return Err(format!(
            "seed {seed}: delta replan diverges from cold plan on {diffs} pages \
             (storage {frac:.3}, rotation {rotation:.3})"
        ));
    }
    Ok(())
}

/// Oracle 3: on an unconstrained system replaying a nominal trace, the
/// DES mean page response must equal the analytic Eq. 5 mean to within
/// float tolerance (queueing waits are zero, optional payloads are server
/// occupancy only).
pub fn oracle_des_vs_analytic(seed: u64) -> Result<(), String> {
    let params = WorkloadParams::small();
    let sys = generate_system(&params, seed)
        .expect("small params are valid")
        .unconstrained();
    let placement = ReplicationPolicy::new().plan(&sys).placement;
    let traces = generate_trace(&sys, &TraceConfig::nominal_from_params(&params), seed);

    let des = super::des_replay(&sys, &traces, &mut StaticRouter::new(&placement, "oracle"));
    let cm = CostModel::with_defaults(&sys);
    let mut total = 0.0;
    let mut n = 0u64;
    for trace in &traces {
        for req in &trace.requests {
            total += cm
                .page_response(req.page, placement.partition(req.page))
                .get();
            n += 1;
        }
    }
    if n == 0 {
        return Err(format!("seed {seed}: empty trace"));
    }
    let analytic = total / n as f64;
    let measured = des.mean_response();
    let rel = (measured - analytic).abs() / analytic.max(f64::MIN_POSITIVE);
    if rel > 1e-9 {
        return Err(format!(
            "seed {seed}: DES mean response {measured} vs Eq. 5 prediction {analytic} \
             (relative error {rel:.3e} over {n} requests)"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fuzz harness + minimizer
// ---------------------------------------------------------------------------

/// One oracle failure, with the minimized reproduction when available.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Which oracle failed.
    pub oracle: &'static str,
    /// The failing seed.
    pub seed: u64,
    /// The oracle's divergence description.
    pub detail: String,
    /// For the planner oracle: the divergence re-described on the
    /// minimized system.
    pub minimized: Option<String>,
}

/// Aggregate fuzz results.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Oracle cases run (three per seed).
    pub cases: u64,
    /// Cases that passed.
    pub passed: u64,
    /// The failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether every case passed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs all three differential oracles over `count` consecutive seeds
/// starting at `start`. Planner-oracle failures are minimized before being
/// reported.
pub fn fuzz(start: u64, count: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    for seed in start..start.saturating_add(count) {
        let cases: [(&'static str, Result<(), String>); 3] = [
            ("dense-vs-reference", oracle_dense_vs_reference(seed)),
            ("delta-vs-cold", oracle_delta_vs_cold(seed)),
            ("des-vs-analytic", oracle_des_vs_analytic(seed)),
        ];
        for (oracle, result) in cases {
            report.cases += 1;
            match result {
                Ok(()) => report.passed += 1,
                Err(detail) => {
                    let minimized = (oracle == "dense-vs-reference").then(|| {
                        let (small, err) = minimize_counterexample(
                            &fuzzed_system(seed),
                            &check_dense_vs_reference,
                        );
                        format!(
                            "minimized to {} sites / {} pages / {} objects: {err}",
                            small.n_sites(),
                            small.n_pages(),
                            small.n_objects()
                        )
                    });
                    report.failures.push(FuzzFailure {
                        oracle,
                        seed,
                        detail,
                        minimized,
                    });
                }
            }
        }
    }
    report
}

/// Shrinks a system on which `check` fails: repeatedly drops whole sites
/// (with their pages), then single pages, keeping each removal that
/// preserves the failure, until a fixpoint. Returns the minimized system
/// and the failure description on it.
///
/// # Panics
/// Panics if `check` passes on `sys` — there is nothing to minimize.
pub fn minimize_counterexample(
    sys: &System,
    check: &dyn Fn(&System) -> Result<(), String>,
) -> (System, String) {
    let mut err = check(sys).expect_err("minimize_counterexample needs a failing system");
    let mut current = sys.clone();
    loop {
        let mut shrunk = false;
        // Drop whole sites first — the biggest steps.
        let mut site_idx = 0;
        while current.n_sites() > 1 && site_idx < current.n_sites() {
            let victim = current.sites().ids().nth(site_idx).expect("index in range");
            if let Some(candidate) = rebuild_without(&current, Some(victim), None) {
                if let Err(e) = check(&candidate) {
                    current = candidate;
                    err = e;
                    shrunk = true;
                    continue; // same index now names the next site
                }
            }
            site_idx += 1;
        }
        // Then single pages (keeping at least one per site).
        let mut page_idx = 0;
        while page_idx < current.n_pages() {
            let victim = current.pages().ids().nth(page_idx).expect("index in range");
            let site = current.page(victim).site;
            if current.pages_of(site).len() > 1 {
                if let Some(candidate) = rebuild_without(&current, None, Some(victim)) {
                    if let Err(e) = check(&candidate) {
                        current = candidate;
                        err = e;
                        shrunk = true;
                        continue;
                    }
                }
            }
            page_idx += 1;
        }
        if !shrunk {
            return (current, err);
        }
    }
}

/// Rebuilds `sys` without the given site (and its pages) or page,
/// remapping object ids over the surviving references and preserving the
/// repository capacity. Returns `None` if the shrunken system fails
/// builder validation.
fn rebuild_without(
    sys: &System,
    drop_site: Option<SiteId>,
    drop_page: Option<PageId>,
) -> Option<System> {
    let mut b = SystemBuilder::new();
    let mut site_map: Vec<Option<SiteId>> = vec![None; sys.n_sites()];
    for old in sys.sites().ids() {
        if Some(old) == drop_site {
            continue;
        }
        site_map[old.index()] = Some(b.add_site(sys.site(old).clone()));
    }
    let keep_page =
        |pid: PageId| -> bool { Some(pid) != drop_page && Some(sys.page(pid).site) != drop_site };
    // Objects referenced by surviving pages, remapped in ascending id order.
    let mut referenced: BTreeSet<ObjectId> = BTreeSet::new();
    for pid in sys.pages().ids().filter(|&p| keep_page(p)) {
        let page = sys.page(pid);
        referenced.extend(page.compulsory.iter().copied());
        referenced.extend(page.optional.iter().map(|o| o.object));
    }
    let mut obj_map: Vec<Option<ObjectId>> = vec![None; sys.n_objects()];
    for &old in &referenced {
        obj_map[old.index()] = Some(b.add_object(sys.object(old).clone()));
    }
    for pid in sys.pages().ids().filter(|&p| keep_page(p)) {
        let page = sys.page(pid);
        b.add_page(WebPage {
            site: site_map[page.site.index()].expect("kept page on kept site"),
            html_size: page.html_size,
            freq: page.freq,
            compulsory: page
                .compulsory
                .iter()
                .map(|&k| obj_map[k.index()].expect("referenced object kept"))
                .collect(),
            optional: page
                .optional
                .iter()
                .map(|o| mmrepl_model::OptionalRef {
                    object: obj_map[o.object.index()].expect("referenced object kept"),
                    prob: o.prob,
                })
                .collect(),
            opt_req_factor: page.opt_req_factor,
        });
    }
    b.repository_capacity(sys.repository().capacity);
    b.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_plan_matches_dense_on_probe_seeds() {
        for seed in 0..8 {
            oracle_dense_vs_reference(seed).unwrap();
        }
    }

    #[test]
    fn reference_plan_matches_dense_unconstrained() {
        // With no constraints both pipelines must reduce to the pure
        // greedy partition.
        let sys = generate_system(&WorkloadParams::small(), 42)
            .unwrap()
            .unconstrained();
        check_dense_vs_reference(&sys).unwrap();
        let reference = reference_plan(&sys, &PlannerConfig::default());
        assert_eq!(reference, mmrepl_core::partition_all(&sys));
    }

    #[test]
    fn delta_oracle_passes_on_probe_seeds() {
        for seed in 0..4 {
            oracle_delta_vs_cold(seed).unwrap();
        }
    }

    #[test]
    fn des_oracle_passes_on_probe_seeds() {
        for seed in 0..4 {
            oracle_des_vs_analytic(seed).unwrap();
        }
    }

    #[test]
    fn fuzz_smoke_is_clean() {
        let report = fuzz(0, 2);
        assert!(report.is_clean(), "failures: {:?}", report.failures);
        assert_eq!(report.cases, 6);
        assert_eq!(report.passed, 6);
    }

    #[test]
    fn minimizer_shrinks_a_synthetic_failure() {
        // A stand-in "bug": the check fails whenever the system still
        // contains an object at least as large as the original maximum.
        let sys = fuzzed_system(3);
        let threshold = sys
            .objects()
            .ids()
            .map(|k| sys.object_size(k).get())
            .max()
            .unwrap();
        let check = move |s: &System| -> Result<(), String> {
            let biggest = s
                .objects()
                .ids()
                .map(|k| s.object_size(k).get())
                .max()
                .unwrap_or(0);
            if biggest >= threshold {
                Err(format!("object of {biggest} bytes present"))
            } else {
                Ok(())
            }
        };
        let (small, err) = minimize_counterexample(&sys, &check);
        assert!(check(&small).is_err(), "minimized system must still fail");
        assert!(err.contains("bytes present"));
        assert_eq!(small.n_sites(), 1, "one site suffices for this failure");
        assert!(
            small.n_pages() < sys.n_pages(),
            "minimizer removed no pages: {} vs {}",
            small.n_pages(),
            sys.n_pages()
        );
        // Dropping any further page must lose the failure (1-minimality
        // over pages is what the fixpoint guarantees, given one page still
        // references the biggest object).
        assert!(small.n_pages() >= 1);
    }

    #[test]
    fn rebuild_without_preserves_repository_capacity() {
        let sys = fuzzed_system(5);
        let victim = sys.sites().ids().next().unwrap();
        let shrunk = rebuild_without(&sys, Some(victim), None).unwrap();
        assert_eq!(shrunk.n_sites(), sys.n_sites() - 1);
        assert_eq!(
            shrunk.repository().capacity.get(),
            sys.repository().capacity.get()
        );
        assert!(shrunk.n_pages() < sys.n_pages());
    }
}
