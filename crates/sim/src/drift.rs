//! The replanning study — an extension quantifying Section 4.1's claim
//! that "allocation decisions made off-line using the past access
//! patterns may be inaccurate due to the dynamic nature of the Web".
//!
//! Protocol per run: plan once on the epoch-0 workload, then drift the
//! hot set each epoch and replay each epoch's trace three ways:
//!
//! * **stale** — keep using the epoch-0 plan (the off-line decision);
//! * **replanned** — re-run the planner on each epoch's frequencies (the
//!   paper's "execute during off-peak hours" remedy);
//! * **lru** — the ideal LRU cache, which adapts online for free.
//!
//! Everything is normalized to the replanned policy at epoch 0, so the
//! series directly show how much of the policy's advantage survives
//! drift and how much replanning buys back.

use crate::experiment::ExperimentConfig;
use crate::par::parallel_map;
use crate::replay::replay_all;
use mmrepl_baselines::{LruRouter, StaticRouter};
use mmrepl_core::ReplicationPolicy;
use mmrepl_workload::{generate_trace, DriftModel, TraceConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One epoch's mean relative response-time increase per strategy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftEpoch {
    /// Epoch index (0 = the planning epoch).
    pub epoch: usize,
    /// Strategy name → % increase over replanned-at-epoch-0.
    pub series: BTreeMap<String, f64>,
    /// Mean number of `X`/`X'` marks the re-plan flipped relative to the
    /// stale epoch-0 plan — how much of the placement drift actually
    /// touches.
    #[serde(default)]
    pub replan_changed_marks: f64,
}

/// The whole study.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftStudy {
    /// Hot-set rotation per epoch.
    pub rotation: f64,
    /// Epochs in order.
    pub epochs: Vec<DriftEpoch>,
    /// Runs averaged.
    pub runs: usize,
}

impl DriftStudy {
    /// Renders an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "# drift study — % increase in mean response time vs replanned@epoch0 \
             (rotation {:.0}%, {} runs)\n",
            self.rotation * 100.0,
            self.runs
        );
        let names: Vec<&String> = self
            .epochs
            .first()
            .map(|e| e.series.keys().collect())
            .unwrap_or_default();
        out.push_str(&format!("{:>8}", "epoch"));
        for n in &names {
            out.push_str(&format!("{n:>14}"));
        }
        out.push_str(&format!("{:>16}\n", "replan flips"));
        for e in &self.epochs {
            out.push_str(&format!("{:>8}", e.epoch));
            for n in &names {
                out.push_str(&format!("{:>13.1}%", e.series[*n]));
            }
            out.push_str(&format!("{:>16.0}\n", e.replan_changed_marks));
        }
        out
    }
}

/// Runs the drift study: `epochs` drift steps at `rotation` hot-set
/// turnover, sites at 65 % storage (where placement quality matters most,
/// per Figure 1), processing relaxed.
pub fn drift_study(cfg: &ExperimentConfig, epochs: usize, rotation: f64) -> DriftStudy {
    let drift = DriftModel::new(rotation);
    let per_run: Vec<Vec<(BTreeMap<String, f64>, f64)>> =
        parallel_map(cfg.runs, cfg.threads, |run| {
            let seed = cfg
                .base_seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(run as u64);
            let base = mmrepl_workload::generate_system(&cfg.params, seed)
                .expect("valid params")
                .with_storage_fraction(0.65)
                .with_processing_fraction(f64::INFINITY);

            // The off-line plan, made against epoch 0.
            let stale_plan = ReplicationPolicy::new().plan(&base).placement;
            let trace_cfg = TraceConfig::from_params(&cfg.params);
            let baseline = {
                let traces = generate_trace(&base, &trace_cfg, seed);
                replay_all(&base, &traces, &mut StaticRouter::new(&stale_plan, "ours"))
                    .mean_response()
            };

            // LRU keeps its cache across epochs (it adapts online).
            let mut lru = LruRouter::new(&base);

            let mut system = base.clone();
            (0..=epochs)
                .map(|epoch| {
                    if epoch > 0 {
                        system = drift.apply(&system, seed.wrapping_add(epoch as u64));
                    }
                    let traces =
                        generate_trace(&system, &trace_cfg, seed.wrapping_add(1000 + epoch as u64));
                    let stale = replay_all(
                        &system,
                        &traces,
                        &mut StaticRouter::new(&stale_plan, "stale"),
                    )
                    .mean_response();
                    let replanned_placement = ReplicationPolicy::new().plan(&system).placement;
                    let changed = replanned_placement.diff(&stale_plan).total() as f64;
                    let replanned = replay_all(
                        &system,
                        &traces,
                        &mut StaticRouter::new(&replanned_placement, "replanned"),
                    )
                    .mean_response();
                    let lru_mean = replay_all(&system, &traces, &mut lru).mean_response();
                    let pct = |v: f64| (v / baseline - 1.0) * 100.0;
                    let mut m = BTreeMap::new();
                    m.insert("stale".to_string(), pct(stale));
                    m.insert("replanned".to_string(), pct(replanned));
                    m.insert("lru".to_string(), pct(lru_mean));
                    (m, changed)
                })
                .collect()
        });

    let n = per_run.len() as f64;
    let epochs_out = (0..=epochs)
        .map(|epoch| {
            let mut series: BTreeMap<String, f64> = BTreeMap::new();
            let mut changed = 0.0;
            for run in &per_run {
                for (k, v) in &run[epoch].0 {
                    *series.entry(k.clone()).or_insert(0.0) += v;
                }
                changed += run[epoch].1;
            }
            for v in series.values_mut() {
                *v /= n;
            }
            DriftEpoch {
                epoch,
                series,
                replan_changed_marks: changed / n,
            }
        })
        .collect();
    DriftStudy {
        rotation,
        epochs: epochs_out,
        runs: cfg.runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replanning_beats_stale_after_drift() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 2;
        let study = drift_study(&cfg, 2, 0.8);
        assert_eq!(study.epochs.len(), 3);
        // At epoch 0 stale == replanned (same plan, same trace).
        let e0 = &study.epochs[0];
        assert!(
            (e0.series["stale"] - e0.series["replanned"]).abs() < 1e-9,
            "{e0:?}"
        );
        assert_eq!(e0.replan_changed_marks, 0.0, "epoch-0 replan differed");
        // After drift the re-plan must actually move marks.
        assert!(study.epochs[1].replan_changed_marks > 0.0);
        // After drift, replanning must not lose to the stale plan.
        for e in &study.epochs[1..] {
            assert!(
                e.series["replanned"] <= e.series["stale"] + 1.0,
                "epoch {}: replanned {} vs stale {}",
                e.epoch,
                e.series["replanned"],
                e.series["stale"]
            );
        }
    }

    #[test]
    fn drift_hurts_the_stale_plan() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 2;
        let study = drift_study(&cfg, 2, 1.0);
        let e0 = study.epochs[0].series["stale"];
        let later: f64 = study.epochs[1..]
            .iter()
            .map(|e| e.series["stale"])
            .sum::<f64>()
            / (study.epochs.len() - 1) as f64;
        assert!(
            later > e0 - 1.0,
            "full rotation should not improve the stale plan: {e0} -> {later}"
        );
    }

    #[test]
    fn table_renders() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 1;
        let study = drift_study(&cfg, 1, 0.5);
        let t = study.to_table();
        assert!(t.contains("drift study"));
        assert!(t.contains("stale"));
        assert!(t.contains("replanned"));
    }
}
