//! E-X5: the online-controller study — closing the loop Section 4.1
//! leaves open.
//!
//! The drift study ([`crate::drift`]) showed the off-line plan rots as the
//! hot set rotates and that per-epoch *full* replanning buys the quality
//! back — but a full replan assumes a free oracle: it sees each epoch's
//! true frequencies and teleports every replica. This study adds the
//! honest contender, the [`mmrepl_online::OnlineController`]:
//!
//! * it never sees true frequencies — only the request stream, through
//!   the EWMA estimator;
//! * it replans only when its drift detectors fire, only for the dirty
//!   sites, under a migration-byte budget;
//! * every replica it moves is charged to a φ share of the site's
//!   repository link, contending with foreground traffic, and serves
//!   locally only after it has physically arrived.
//!
//! Each epoch splits into [`OnlineStudy::windows_per_epoch`] estimation
//! windows so the controller can react *mid-epoch* instead of only at
//! epoch boundaries. All four strategies (stale, per-epoch full replan,
//! online, LRU) replay identical traces; series are normalized to
//! replanned-at-epoch-0 exactly like the drift study.

use crate::experiment::ExperimentConfig;
use crate::par::parallel_map;
use crate::replay::replay_all;
use mmrepl_baselines::{LruRouter, StaticRouter};
use mmrepl_core::ReplicationPolicy;
use mmrepl_model::{ObjectId, Secs, System};
use mmrepl_online::{ChurnBudget, OnlineConfig, OnlineController, OnlineReplayOutcome};
use mmrepl_serve::{route_traces, EpochCell, PlacementSnapshot};
use mmrepl_workload::{generate_trace, DriftModel, SiteTrace, TraceConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One epoch's results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineEpoch {
    /// Epoch index (0 = the planning epoch).
    pub epoch: usize,
    /// Strategy name → % increase over replanned-at-epoch-0.
    pub series: BTreeMap<String, f64>,
    /// Mean migration bytes the controller scheduled during the epoch.
    pub online_migrated_bytes: f64,
    /// Mean incremental replans the controller ran during the epoch.
    pub online_replans: f64,
    /// Mean estimated serving-plane latency per request (seconds) when
    /// the epoch's traces are routed through the [`PlacementSnapshot`]
    /// the controller publishes at the epoch boundary.
    #[serde(default)]
    pub served_latency_s: f64,
    /// Mean per-epoch count of requests the snapshot's migration
    /// overlay deflected away from a promised-but-unarrived local copy.
    #[serde(default)]
    pub served_overlay_deflects: f64,
}

/// The whole study.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineStudy {
    /// Hot-set rotation per epoch.
    pub rotation: f64,
    /// Estimation windows per epoch (mid-epoch reaction points).
    pub windows_per_epoch: usize,
    /// Churn budget per replan as a fraction of aggregate site storage
    /// (`<= 0` means unlimited).
    pub budget_frac: f64,
    /// Controller tuning used.
    pub config: OnlineConfig,
    /// Epochs in order.
    pub epochs: Vec<OnlineEpoch>,
    /// Runs averaged.
    pub runs: usize,
}

impl OnlineStudy {
    /// Renders an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "# online study — % increase in mean response time vs replanned@epoch0 \
             (rotation {:.0}%, {} windows/epoch, {} runs)\n",
            self.rotation * 100.0,
            self.windows_per_epoch,
            self.runs
        );
        let names: Vec<&String> = self
            .epochs
            .first()
            .map(|e| e.series.keys().collect())
            .unwrap_or_default();
        out.push_str(&format!("{:>8}", "epoch"));
        for n in &names {
            out.push_str(&format!("{n:>14}"));
        }
        out.push_str(&format!(
            "{:>14}{:>10}{:>12}{:>10}\n",
            "moved MiB", "replans", "serve ms", "deflects"
        ));
        for e in &self.epochs {
            out.push_str(&format!("{:>8}", e.epoch));
            for n in &names {
                out.push_str(&format!("{:>13.1}%", e.series[*n]));
            }
            out.push_str(&format!(
                "{:>14.1}{:>10.1}{:>12.3}{:>10.1}\n",
                e.online_migrated_bytes / (1024.0 * 1024.0),
                e.online_replans,
                e.served_latency_s * 1e3,
                e.served_overlay_deflects
            ));
        }
        out
    }
}

/// Detector/estimator defaults tuned for the drift workload. The EWMA is
/// heavily smoothed (α 0.3) because at a few hundred requests per window
/// the raw per-window rates are noisy enough that planning straight on
/// them thrashes the placement — steady-state EWMA noise scales with
/// `sqrt(α / (2 − α))`, and plans built from a 30 % blend of one drifted
/// window already sit near the full-replan oracle. The threshold sits
/// above that damped sampling noise (~0.15 relative L1) and well below
/// the divergence a hot-set rotation causes (~2x the rotated traffic
/// share). Hysteresis is off — with sampled traces the divergence never
/// settles near zero, so a re-arm level below the noise floor would leave
/// the detector deaf after its first trigger; the cooldown alone paces
/// replans here.
pub fn study_online_config() -> OnlineConfig {
    let mut cfg = OnlineConfig::default();
    cfg.estimator.ewma_alpha = 0.3;
    cfg.detector.threshold = 0.25;
    cfg.detector.rearm = 1.0;
    cfg
}

/// Per-site virtual duration of a trace slice under `system`'s current
/// rates: requests over the site's aggregate request rate.
fn slice_duration(system: &System, trace: &SiteTrace, len: usize) -> Secs {
    let total: f64 = system
        .pages_of(trace.site)
        .iter()
        .map(|&p| system.page(p).freq.get())
        .sum();
    Secs(len as f64 / total)
}

/// Runs the online study: `epochs` drift steps at `rotation` hot-set
/// turnover, `windows_per_epoch` estimation windows per epoch, the
/// controller's churn budget per replan set to `budget_frac` of
/// aggregate site storage. Sites at 65 % storage, processing relaxed —
/// the drift-study conditions.
pub fn online_study(
    cfg: &ExperimentConfig,
    epochs: usize,
    rotation: f64,
    windows_per_epoch: usize,
    budget_frac: f64,
    online_cfg: &OnlineConfig,
) -> OnlineStudy {
    assert!(windows_per_epoch > 0, "at least one window per epoch");
    let drift = DriftModel::new(rotation);
    /// One epoch of one run: the per-strategy % series, the controller's
    /// migrated bytes and replan count, and the serving-plane estimate
    /// (mean routed latency, overlay deflections) from the epoch's
    /// published snapshot.
    type RunEpoch = (BTreeMap<String, f64>, u64, u64, f64, f64);
    let per_run: Vec<Vec<RunEpoch>> = parallel_map(cfg.runs, cfg.threads, |run| {
        let seed = cfg
            .base_seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(run as u64);
        let base = mmrepl_workload::generate_system(&cfg.params, seed)
            .expect("valid params")
            .with_storage_fraction(0.65)
            .with_processing_fraction(f64::INFINITY);

        let stale_plan = ReplicationPolicy::new().plan(&base).placement;
        let trace_cfg = TraceConfig::from_params(&cfg.params);
        let baseline = {
            let traces = generate_trace(&base, &trace_cfg, seed);
            replay_all(&base, &traces, &mut StaticRouter::new(&stale_plan, "ours")).mean_response()
        };

        let mut controller_cfg = *online_cfg;
        if budget_frac > 0.0 {
            let total_storage: u64 = base.sites().iter().map(|(_, s)| s.storage.0).sum();
            controller_cfg.budget = ChurnBudget::bytes((total_storage as f64 * budget_frac) as u64);
        }
        let mut ctl = OnlineController::new(&base, ReplicationPolicy::new(), controller_cfg);
        let mut lru = LruRouter::new(&base);

        // The serving plane reads whatever snapshot the controller last
        // published; epoch 0 starts from the off-line plan.
        let cell = EpochCell::new(Arc::new(PlacementSnapshot::build(
            &base,
            &stale_plan,
            &[],
            0,
        )));
        // The serving-latency SLO tracks the tightest QoS bound in the
        // system; every routed slice below feeds it.
        if mmrepl_obs::enabled() {
            mmrepl_serve::register_latency_slo(&cell.load());
        }

        let mut system = base.clone();
        (0..=epochs)
            .map(|epoch| {
                if epoch > 0 {
                    system = drift.apply(&system, seed.wrapping_add(epoch as u64));
                }
                let traces =
                    generate_trace(&system, &trace_cfg, seed.wrapping_add(1000 + epoch as u64));

                let stale = replay_all(
                    &system,
                    &traces,
                    &mut StaticRouter::new(&stale_plan, "stale"),
                )
                .mean_response();
                let replanned_placement = ReplicationPolicy::new().plan(&system).placement;
                let replanned = replay_all(
                    &system,
                    &traces,
                    &mut StaticRouter::new(&replanned_placement, "replanned"),
                )
                .mean_response();
                let lru_mean = replay_all(&system, &traces, &mut lru).mean_response();

                // The controller serves the same traces window by
                // window, closing every site's estimation window (and
                // possibly replanning) between them.
                let bytes_before = ctl.bytes_scheduled();
                let replans_before = ctl.replans();
                let mut online_out = OnlineReplayOutcome::new();
                let windows: Vec<Vec<&[mmrepl_workload::Request]>> = traces
                    .iter()
                    .map(|t| t.windows(windows_per_epoch))
                    .collect();
                for w in 0..windows_per_epoch {
                    let mut durations = Vec::with_capacity(traces.len());
                    for (t, site_windows) in traces.iter().zip(&windows) {
                        let slice = site_windows[w];
                        let dur = slice_duration(&system, t, slice.len());
                        online_out.merge(&ctl.serve_window(t.site, slice, dur));
                        durations.push(dur);
                    }
                    ctl.end_window(&durations);
                    if mmrepl_obs::enabled() {
                        let queued: f64 = system
                            .sites()
                            .ids()
                            .map(|s| ctl.queue(s).pending_bytes())
                            .sum();
                        mmrepl_obs::gauge_set("online.migration_queue_bytes", queued);
                    }
                }

                // Publish the controller's post-epoch placement as an
                // immutable snapshot, overlay-marking every replica its
                // migration queues have promised but not yet delivered,
                // and price the epoch's traffic through the routed view.
                let snap = PlacementSnapshot::build(&system, ctl.placement(), &[], epoch as u64);
                snap.seed_overlay(system.sites().ids().map(|s| {
                    let q = ctl.queue(s);
                    let pend: Vec<ObjectId> = system
                        .objects()
                        .ids()
                        .filter(|&k| snap.stored(s, k) && !q.is_resident(k))
                        .collect();
                    (s, pend)
                }));
                cell.publish(Arc::new(snap));
                mmrepl_obs::gauge_set("online.epoch", epoch as f64);
                let (_, served) = route_traces(&cell.load(), &traces, 1);
                let served_latency = served.est_latency_s / served.requests.max(1) as f64;

                let pct = |v: f64| (v / baseline - 1.0) * 100.0;
                let mut m = BTreeMap::new();
                m.insert("stale".to_string(), pct(stale));
                m.insert("replanned".to_string(), pct(replanned));
                m.insert("online".to_string(), pct(online_out.mean_response()));
                m.insert("lru".to_string(), pct(lru_mean));
                (
                    m,
                    ctl.bytes_scheduled() - bytes_before,
                    ctl.replans() - replans_before,
                    served_latency,
                    served.overlay_deflected as f64,
                )
            })
            .collect()
    });

    let n = per_run.len() as f64;
    let epochs_out = (0..=epochs)
        .map(|epoch| {
            let mut series: BTreeMap<String, f64> = BTreeMap::new();
            let mut bytes = 0.0;
            let mut replans = 0.0;
            let mut served = 0.0;
            let mut deflects = 0.0;
            for run in &per_run {
                for (k, v) in &run[epoch].0 {
                    *series.entry(k.clone()).or_insert(0.0) += v;
                }
                bytes += run[epoch].1 as f64;
                replans += run[epoch].2 as f64;
                served += run[epoch].3;
                deflects += run[epoch].4;
            }
            for v in series.values_mut() {
                *v /= n;
            }
            OnlineEpoch {
                epoch,
                series,
                online_migrated_bytes: bytes / n,
                online_replans: replans / n,
                served_latency_s: served / n,
                served_overlay_deflects: deflects / n,
            }
        })
        .collect();
    OnlineStudy {
        rotation,
        windows_per_epoch,
        budget_frac,
        config: *online_cfg,
        epochs: epochs_out,
        runs: cfg.runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_site;
    use mmrepl_core::partition_all;
    use mmrepl_online::{migrate, MigrateConfig, MigrationQueue};
    use mmrepl_workload::WorkloadParams;

    /// With an empty migration queue the online replayer must price every
    /// request exactly like the offline replayer — the two series are
    /// directly comparable.
    #[test]
    fn online_replay_matches_offline_without_migration() {
        let params = WorkloadParams::small();
        let sys = mmrepl_workload::generate_system(&params, 31).unwrap();
        let traces = generate_trace(&sys, &TraceConfig::from_params(&params), 31);
        let placement = partition_all(&sys);
        for t in &traces {
            let offline = replay_site(&sys, t, &mut StaticRouter::new(&placement, "ours"));
            let mut q = MigrationQueue::new(placement.stored_set(&sys, t.site));
            let online = migrate::replay_window(
                &sys,
                t.site,
                &t.requests,
                &placement,
                &mut q,
                Secs(100.0),
                &MigrateConfig::default(),
            );
            assert_eq!(online.pages, offline.pages);
            assert_eq!(online.optional, offline.optional);
            assert_eq!(online.local_objects, offline.local_objects);
            assert_eq!(online.remote_objects, offline.remote_objects);
        }
    }

    #[test]
    fn online_controller_recovers_most_of_the_replanning_gain() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 2;
        let study = online_study(&cfg, 2, 0.8, 4, 0.25, &study_online_config());
        assert_eq!(study.epochs.len(), 3);

        for e in &study.epochs[1..] {
            // The controller must beat the stale plan once drift starts…
            assert!(
                e.series["online"] < e.series["stale"],
                "epoch {}: online {} vs stale {}",
                e.epoch,
                e.series["online"],
                e.series["stale"]
            );
            // …and land within 10 % of the full-replan oracle (ratio of
            // absolute response times, not percentage points).
            let online_abs = 1.0 + e.series["online"] / 100.0;
            let replanned_abs = 1.0 + e.series["replanned"] / 100.0;
            assert!(
                online_abs <= replanned_abs * 1.10,
                "epoch {}: online {} more than 10% over replanned {}",
                e.epoch,
                e.series["online"],
                e.series["replanned"]
            );
            // Adaptation must have actually moved bounded replicas.
            assert!(e.online_replans > 0.0, "no replans at epoch {}", e.epoch);
            assert!(e.online_migrated_bytes > 0.0);
        }
    }

    #[test]
    fn churn_budget_caps_migration_per_epoch() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 1;
        let budget_frac = 0.02;
        let study = online_study(&cfg, 1, 0.8, 2, budget_frac, &study_online_config());
        let sys = mmrepl_workload::generate_system(
            &cfg.params,
            cfg.base_seed.wrapping_mul(0x9E3779B97F4A7C15),
        )
        .unwrap()
        .with_storage_fraction(0.65)
        .with_processing_fraction(f64::INFINITY);
        let total_storage: u64 = sys.sites().iter().map(|(_, s)| s.storage.0).sum();
        let per_replan = total_storage as f64 * budget_frac;
        for e in &study.epochs {
            let max_bytes = per_replan * e.online_replans.max(1.0);
            assert!(
                e.online_migrated_bytes <= max_bytes + 1.0,
                "epoch {}: moved {} over cap {}",
                e.epoch,
                e.online_migrated_bytes,
                max_bytes
            );
        }
    }

    #[test]
    fn table_renders() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 1;
        let study = online_study(&cfg, 1, 0.5, 2, 1.0, &study_online_config());
        let t = study.to_table();
        assert!(t.contains("online study"));
        assert!(t.contains("stale"));
        assert!(t.contains("online"));
        assert!(t.contains("replans"));
        assert!(t.contains("serve ms"));
        assert!(t.contains("deflects"));
    }

    /// Every epoch must price its traffic through the snapshot the
    /// controller published at the epoch boundary: the routed latency is
    /// strictly positive, and it is finite even while migrations are
    /// still in flight (the overlay deflects those requests instead of
    /// serving a replica that has not arrived).
    #[test]
    fn published_snapshots_price_served_latency_every_epoch() {
        let mut cfg = ExperimentConfig::quick();
        cfg.runs = 2;
        let study = online_study(&cfg, 2, 0.8, 4, 0.25, &study_online_config());
        for e in &study.epochs {
            assert!(
                e.served_latency_s > 0.0 && e.served_latency_s.is_finite(),
                "epoch {}: served latency {}",
                e.epoch,
                e.served_latency_s
            );
            assert!(e.served_overlay_deflects >= 0.0);
        }
    }
}
