//! Queueing-aware replay — an extension beyond the paper.
//!
//! The paper enforces processing capacity only as a *planning* constraint
//! (Eq. 8/9) and never charges queueing delay in its evaluation. This
//! replay does: page requests arrive at each site at its aggregate page
//! rate, every HTTP request occupies the serving machine for `1/C`
//! seconds, and the resulting FIFO waits delay the corresponding download
//! stream. It answers the question the paper leaves open — *what does an
//! infeasible or barely-feasible placement actually cost users?* — and
//! backs the `ablation_queueing` bench.

use mmrepl_baselines::RequestRouter;
use mmrepl_model::{Secs, System};
use mmrepl_netsim::{ConnectionProfile, QueueingServer, ResponseStats, SimTime, StreamPlan};
use mmrepl_workload::SiteTrace;
use serde::{Deserialize, Serialize};

/// Results of a queueing-aware replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueingOutcome {
    /// Page response times including queueing delays.
    pub pages: ResponseStats,
    /// Queueing waits at the local sites (one sample per page request).
    pub site_waits: ResponseStats,
    /// Queueing waits at the repository (one sample per page request that
    /// touched it).
    pub repo_waits: ResponseStats,
}

impl QueueingOutcome {
    /// Mean response time including queueing.
    pub fn mean_response(&self) -> f64 {
        self.pages.mean().map(|s| s.get()).unwrap_or(0.0)
    }
}

/// Replays all traces with queueing. Arrival times interleave across
/// sites: request `i` at site `s` arrives at `i / page_rate(s)`.
pub fn queueing_replay(
    system: &System,
    traces: &[SiteTrace],
    router: &mut dyn RequestRouter,
) -> QueueingOutcome {
    // Per-site arrival schedules.
    let mut site_servers: Vec<QueueingServer> = system
        .sites()
        .values()
        .map(|s| QueueingServer::new(s.capacity))
        .collect();
    let mut repo_server = QueueingServer::new(system.repository().capacity);

    // Build the merged arrival order: (time, site_index, request_index).
    let mut arrivals: Vec<(f64, usize, usize)> = Vec::new();
    for (si, trace) in traces.iter().enumerate() {
        let page_rate: f64 = system
            .pages_of(trace.site)
            .iter()
            .map(|&p| system.page(p).freq.get())
            .sum();
        let dt = if page_rate > 0.0 {
            1.0 / page_rate
        } else {
            1.0
        };
        for (ri, _) in trace.requests.iter().enumerate() {
            arrivals.push((ri as f64 * dt, si, ri));
        }
    }
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut out = QueueingOutcome {
        pages: ResponseStats::new(),
        site_waits: ResponseStats::new(),
        repo_waits: ResponseStats::new(),
    };

    for (t, si, ri) in arrivals {
        let trace = &traces[si];
        let req = &trace.requests[ri];
        let page = system.page(req.page);
        let site = system.site(trace.site);
        let c = &req.conditions;

        let local = ConnectionProfile::new(
            site.local_ovhd * c.local_ovhd_factor,
            site.local_rate.scale(c.local_rate_factor),
        );
        let remote = ConnectionProfile::new(
            site.repo_ovhd * c.repo_ovhd_factor,
            site.repo_rate.scale(c.repo_rate_factor),
        );

        let decision = router.route(system, req.page, &req.optional_slots);

        let mut local_stream = StreamPlan::empty(local);
        local_stream.push(page.html_size);
        let mut remote_stream = StreamPlan::empty(remote);
        for (slot, &k) in page.compulsory.iter().enumerate() {
            if decision.local_compulsory[slot] {
                local_stream.push(system.object_size(k));
            } else {
                remote_stream.push(system.object_size(k));
            }
        }

        // HTTP requests offered to each machine (optional fetches included
        // as load; their latency is accounted in the non-queueing replay).
        let n_opt_local = decision.local_optional.iter().filter(|&&b| b).count();
        let n_opt_remote = decision.local_optional.len() - n_opt_local;
        let local_http = local_stream.payloads.len() + n_opt_local;
        let remote_http = remote_stream.payloads.len() + n_opt_remote;

        let arrival = SimTime::new(t);
        let site_wait = site_servers[si].admit(arrival, local_http as f64).wait;
        out.site_waits.record(site_wait);
        let repo_wait = if remote_http > 0 {
            let w = repo_server.admit(arrival, remote_http as f64).wait;
            out.repo_waits.record(w);
            w
        } else {
            Secs::ZERO
        };

        let local_done = site_wait + local_stream.total_time();
        let remote_done = repo_wait + remote_stream.total_time();
        out.pages.record(local_done.max(remote_done));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_all;
    use mmrepl_baselines::StaticRouter;
    use mmrepl_core::partition_all;
    use mmrepl_workload::{generate_trace, TraceConfig, WorkloadParams};

    fn setup(seed: u64) -> (System, Vec<SiteTrace>) {
        let params = WorkloadParams::small();
        let sys = mmrepl_workload::generate_system(&params, seed).unwrap();
        let traces = generate_trace(&sys, &TraceConfig::from_params(&params), seed);
        (sys, traces)
    }

    #[test]
    fn ample_capacity_means_no_queueing() {
        let (sys, traces) = setup(1);
        // Capacity >> offered load.
        let sys = sys.with_processing_fraction(100.0);
        let placement = partition_all(&sys);
        let q = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        let plain = replay_all(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        // Waits ~0 -> responses match the plain replay.
        assert!(q.site_waits.max().unwrap().get() < 1e-6);
        assert!(
            (q.mean_response() - plain.mean_response()).abs() < 1e-6,
            "{} vs {}",
            q.mean_response(),
            plain.mean_response()
        );
    }

    #[test]
    fn overload_adds_visible_queueing_delay() {
        let (sys, traces) = setup(2);
        // Capacity far below the all-local load, but replay the all-local
        // placement anyway (deliberately infeasible).
        let sys = sys.with_processing_fraction(0.2);
        let placement = mmrepl_model::Placement::all_local(&sys);
        let q = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "local"));
        let plain = replay_all(&sys, &traces, &mut StaticRouter::new(&placement, "local"));
        // Transfer times dominate on this workload (minutes per page at
        // modem-era rates), but sustained 5x overload must still add
        // substantial queueing delay on top.
        assert!(
            q.mean_response() > plain.mean_response() * 1.10,
            "queueing {} vs plain {}",
            q.mean_response(),
            plain.mean_response()
        );
        assert!(q.site_waits.max().unwrap().get() > 10.0);
        assert!(q.site_waits.mean().unwrap().get() > 1.0);
    }

    #[test]
    fn feasible_plan_queues_less_than_infeasible_one() {
        let (sys, traces) = setup(3);
        let sys = sys.with_processing_fraction(0.5);
        // The planner respects the capacity; all-local does not.
        let planned = mmrepl_core::ReplicationPolicy::new().plan(&sys).placement;
        let q_planned = queueing_replay(&sys, &traces, &mut StaticRouter::new(&planned, "ours"));
        let all_local = mmrepl_model::Placement::all_local(&sys);
        let q_local = queueing_replay(&sys, &traces, &mut StaticRouter::new(&all_local, "local"));
        let wait_planned = q_planned.site_waits.mean().unwrap().get();
        let wait_local = q_local.site_waits.mean().unwrap().get();
        assert!(
            wait_planned < wait_local,
            "planned wait {wait_planned} vs all-local wait {wait_local}"
        );
    }

    #[test]
    fn repo_waits_zero_when_nothing_remote() {
        let (sys, traces) = setup(4);
        let placement = mmrepl_model::Placement::all_local(&sys);
        let q = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "local"));
        assert_eq!(q.repo_waits.count(), 0);
    }

    #[test]
    fn deterministic() {
        let (sys, traces) = setup(5);
        let placement = partition_all(&sys);
        let a = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        let b = queueing_replay(&sys, &traces, &mut StaticRouter::new(&placement, "ours"));
        assert_eq!(a, b);
    }
}
