//! Fork-join over independent work items, on the core worker pool.
//!
//! Experiment runs are embarrassingly parallel (each owns its system,
//! trace and statistics), so they map directly onto
//! [`mmrepl_core::pool::parallel_map`]: one process-wide pool of resident
//! workers, an atomic chunk-claiming cursor, and index-ordered result
//! slots that keep output deterministic regardless of scheduling. This
//! module re-exports that API under the sim crate's historical path.

pub use mmrepl_core::pool::{effective_threads, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = parallel_map(1000, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback_matches() {
        let seq = parallel_map(50, 1, |i| i + 1);
        let par = parallel_map(50, 4, |i| i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 1), 1);
        assert_eq!(effective_threads(16, 4), 4);
        assert_eq!(effective_threads(2, 100), 2);
    }

    #[test]
    fn actually_uses_multiple_threads_when_asked() {
        // Record distinct thread ids (best-effort: with 4 workers over 64
        // slow-ish items at least 2 distinct ids should appear).
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // A little work so the pool actually spreads.
            (0..100_000).fold(i as u64, |a, x| a.wrapping_add(x))
        });
        assert!(ids.lock().unwrap().len() >= 2);
    }
}
