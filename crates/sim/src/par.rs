//! Fork-join over independent work items with crossbeam scoped threads.
//!
//! Experiment runs are embarrassingly parallel (each owns its system,
//! trace and statistics), so the only shared state is an atomic work
//! counter. Results land in pre-allocated slots, keeping output order
//! deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n` across up to `threads` worker
/// threads (`0` = one per available core), returning results in index
/// order. `f` must be `Sync` because all workers share it.
///
/// Panics in a worker propagate after all threads finish (crossbeam scope
/// semantics).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    {
        // Hand each worker a disjoint view of the result slots via raw
        // chunking: we instead collect per-worker (index, value) pairs to
        // stay in safe code.
        let results: Vec<(usize, T)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scope panicked");
        for (i, v) in results {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("missing result slot"))
        .collect()
}

/// Resolves the worker count: `0` means one per available core, and never
/// more workers than items.
pub fn effective_threads(threads: usize, n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if threads == 0 { hw } else { threads };
    t.clamp(1, n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = parallel_map(1000, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback_matches() {
        let seq = parallel_map(50, 1, |i| i + 1);
        let par = parallel_map(50, 4, |i| i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 1), 1);
        assert_eq!(effective_threads(16, 4), 4);
        assert_eq!(effective_threads(2, 100), 2);
    }

    #[test]
    fn actually_uses_multiple_threads_when_asked() {
        // Record distinct thread ids (best-effort: with 4 workers over 64
        // slow-ish items at least 2 distinct ids should appear).
        use parking_lot::Mutex;
        use std::collections::HashSet;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        parallel_map(64, 4, |i| {
            ids.lock().insert(std::thread::current().id());
            // A little work so the pool actually spreads.
            (0..10_000).fold(i as u64, |a, x| a.wrapping_add(x))
        });
        assert!(ids.lock().len() >= 2);
    }
}
