//! Trace replay: what users actually experience.
//!
//! Every request in a [`SiteTrace`] is served under its own perturbed
//! conditions (Section 5.1): the router decides where each object comes
//! from, the two streams are priced with the *actual* rates/overheads via
//! the shared `mmrepl-netsim` transfer arithmetic, and the response time
//! (Eq. 5) plus any optional-fetch time (Eq. 6 realized, not expected)
//! are recorded.
//!
//! The same replayer serves every policy: static placements ride
//! [`mmrepl_baselines::StaticRouter`], LRU carries its cache state between
//! requests.

use mmrepl_baselines::RequestRouter;
use mmrepl_model::{Bytes, Secs, System};
use mmrepl_netsim::{ConnectionProfile, ResponseStats, StreamPlan};
use mmrepl_workload::{Request, SiteTrace};
use serde::{Deserialize, Serialize};

/// Aggregated replay results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Page response times (Eq. 5 realized), one sample per page request.
    pub pages: ResponseStats,
    /// Optional-download times (Eq. 6 realized), one sample per request
    /// that fetched at least one optional object.
    pub optional: ResponseStats,
    /// Total objects served locally.
    pub local_objects: u64,
    /// Total objects served by the repository.
    pub remote_objects: u64,
}

impl ReplayOutcome {
    fn new() -> Self {
        ReplayOutcome {
            pages: ResponseStats::new(),
            optional: ResponseStats::new(),
            local_objects: 0,
            remote_objects: 0,
        }
    }

    /// Merges another outcome (parallel accumulation).
    pub fn merge(&mut self, other: &ReplayOutcome) {
        self.pages.merge(&other.pages);
        self.optional.merge(&other.optional);
        self.local_objects += other.local_objects;
        self.remote_objects += other.remote_objects;
    }

    /// Mean page response time, the figure-of-merit of every plot.
    pub fn mean_response(&self) -> f64 {
        self.pages.mean().map(|s| s.get()).unwrap_or(0.0)
    }

    /// Fraction of object downloads served locally.
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_objects + self.remote_objects;
        if total == 0 {
            0.0
        } else {
            self.local_objects as f64 / total as f64
        }
    }
}

/// Replays one site's trace through `router`.
pub fn replay_site(
    system: &System,
    trace: &SiteTrace,
    router: &mut dyn RequestRouter,
) -> ReplayOutcome {
    let mut out = ReplayOutcome::new();
    let site = system.site(trace.site);

    for req in &trace.requests {
        serve_request(system, site, req, router, &mut out);
    }
    out
}

fn serve_request(
    system: &System,
    site: &mmrepl_model::Site,
    req: &Request,
    router: &mut dyn RequestRouter,
    out: &mut ReplayOutcome,
) {
    let page = system.page(req.page);
    let c = &req.conditions;

    // Actual connection profiles for this request.
    let local = ConnectionProfile::new(
        site.local_ovhd * c.local_ovhd_factor,
        site.local_rate.scale(c.local_rate_factor),
    );
    let remote = ConnectionProfile::new(
        site.repo_ovhd * c.repo_ovhd_factor,
        site.repo_rate.scale(c.repo_rate_factor),
    );

    let decision = router.route(system, req.page, &req.optional_slots);

    // Compulsory phase: two pipelined parallel streams.
    let mut local_stream = StreamPlan::empty(local);
    local_stream.push(page.html_size);
    let mut remote_stream = StreamPlan::empty(remote);
    for (slot, &k) in page.compulsory.iter().enumerate() {
        let size = system.object_size(k);
        if decision.local_compulsory[slot] {
            local_stream.push(size);
            out.local_objects += 1;
        } else {
            remote_stream.push(size);
            out.remote_objects += 1;
        }
    }
    let response = mmrepl_netsim::parallel_page_time(&local_stream, &remote_stream);
    out.pages.record(response);

    // Optional phase: each fetch opens its own connection (Eq. 6).
    if !req.optional_slots.is_empty() {
        let mut total = Secs::ZERO;
        for (i, &slot) in req.optional_slots.iter().enumerate() {
            let size: Bytes = system.object_size(page.optional[slot as usize].object);
            if decision.local_optional[i] {
                total += local.single_fetch(size);
                out.local_objects += 1;
            } else {
                total += remote.single_fetch(size);
                out.remote_objects += 1;
            }
        }
        out.optional.record(total);
    }
}

/// Replays every site's trace through `router`, merging the results.
/// Sites replay in id order so stateful routers see a deterministic
/// request sequence.
pub fn replay_all(
    system: &System,
    traces: &[SiteTrace],
    router: &mut dyn RequestRouter,
) -> ReplayOutcome {
    let _span = mmrepl_obs::span("replay.total");
    let mut out = ReplayOutcome::new();
    for trace in traces {
        let site_out = replay_site(system, trace, router);
        out.merge(&site_out);
    }
    if mmrepl_obs::enabled() {
        // The replay hot loop records into its own `ResponseStats`; the
        // whole distribution folds into the trace with one merge, so
        // per-request cost stays zero.
        mmrepl_obs::merge_histogram("replay.response_s", out.pages.histogram());
        mmrepl_obs::add("replay.page_requests", out.pages.count());
        mmrepl_obs::add("replay.local_objects", out.local_objects);
        mmrepl_obs::add("replay.remote_objects", out.remote_objects);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmrepl_baselines::{LruRouter, StaticRouter};
    use mmrepl_core::partition_all;
    use mmrepl_model::{CostModel, Placement};
    use mmrepl_workload::{generate_trace, TraceConfig, WorkloadParams};

    fn setup(seed: u64) -> (System, Vec<SiteTrace>, Vec<SiteTrace>) {
        let params = WorkloadParams::small();
        let sys = mmrepl_workload::generate_system(&params, seed).unwrap();
        let perturbed = generate_trace(&sys, &TraceConfig::from_params(&params), seed);
        let nominal = generate_trace(&sys, &TraceConfig::nominal_from_params(&params), seed);
        (sys, perturbed, nominal)
    }

    #[test]
    fn nominal_replay_matches_analytic_cost_model() {
        // With no perturbation, the replayed mean response must equal the
        // trace-weighted analytic Eq. 5 values exactly.
        let (sys, _, nominal) = setup(1);
        let placement = partition_all(&sys);
        let mut router = StaticRouter::new(&placement, "ours");
        let outcome = replay_all(&sys, &nominal, &mut router);

        let cm = CostModel::with_defaults(&sys);
        // Weight each page by its frequency *in the trace* (sampled), so
        // compare per-request: recompute the expected mean from the trace.
        let mut total = 0.0;
        let mut n = 0u64;
        for t in &nominal {
            for r in &t.requests {
                total += cm.page_response(r.page, placement.partition(r.page)).get();
                n += 1;
            }
        }
        let expected = total / n as f64;
        let got = outcome.mean_response();
        assert!(
            (got - expected).abs() < 1e-9,
            "replayed {got} vs analytic {expected}"
        );
    }

    #[test]
    fn perturbed_replay_is_slower_on_average_for_local_heavy_plans() {
        // The perturbation model cuts local rates on 40% of requests, so a
        // local-heavy placement must get slower under perturbation.
        let (sys, perturbed, nominal) = setup(2);
        let placement = Placement::all_local(&sys);
        let mut r1 = StaticRouter::new(&placement, "local");
        let mut r2 = StaticRouter::new(&placement, "local");
        let p = replay_all(&sys, &perturbed, &mut r1);
        let nom = replay_all(&sys, &nominal, &mut r2);
        assert!(
            p.mean_response() > nom.mean_response(),
            "perturbed {} <= nominal {}",
            p.mean_response(),
            nom.mean_response()
        );
    }

    #[test]
    fn remote_policy_is_much_slower_than_local() {
        // Repository pipe is ~6x slower: the Remote extreme must lose big
        // (the paper reports +335% vs our policy, +~250% vs Local).
        let (sys, perturbed, _) = setup(3);
        let local = Placement::all_local(&sys);
        let remote = Placement::all_remote(&sys);
        let l = replay_all(&sys, &perturbed, &mut StaticRouter::new(&local, "local"));
        let r = replay_all(&sys, &perturbed, &mut StaticRouter::new(&remote, "remote"));
        assert!(
            r.mean_response() > l.mean_response() * 1.5,
            "remote {} vs local {}",
            r.mean_response(),
            l.mean_response()
        );
        assert_eq!(l.remote_objects, 0);
        assert_eq!(r.local_objects, 0);
    }

    #[test]
    fn ours_beats_extremes_under_perturbation() {
        let (sys, perturbed, _) = setup(4);
        let ours = partition_all(&sys);
        let local = Placement::all_local(&sys);
        let remote = Placement::all_remote(&sys);
        let o = replay_all(&sys, &perturbed, &mut StaticRouter::new(&ours, "ours"));
        let l = replay_all(&sys, &perturbed, &mut StaticRouter::new(&local, "local"));
        let r = replay_all(&sys, &perturbed, &mut StaticRouter::new(&remote, "remote"));
        assert!(o.mean_response() <= l.mean_response() * 1.02);
        assert!(o.mean_response() < r.mean_response());
    }

    #[test]
    fn lru_warms_up_and_beats_remote() {
        let (sys, perturbed, _) = setup(5);
        let mut lru = LruRouter::new(&sys);
        let lru_out = replay_all(&sys, &perturbed, &mut lru);
        let remote = Placement::all_remote(&sys);
        let r = replay_all(&sys, &perturbed, &mut StaticRouter::new(&remote, "remote"));
        assert!(lru.hits() > 0, "cache never hit");
        assert!(
            lru_out.mean_response() < r.mean_response(),
            "lru {} vs remote {}",
            lru_out.mean_response(),
            r.mean_response()
        );
        assert!(lru_out.local_fraction() > 0.5, "cache barely used");
    }

    #[test]
    fn optional_stats_only_for_requests_with_optionals() {
        let (sys, perturbed, _) = setup(6);
        let placement = partition_all(&sys);
        let outcome = replay_all(&sys, &perturbed, &mut StaticRouter::new(&placement, "ours"));
        let with_opt: u64 = perturbed
            .iter()
            .flat_map(|t| &t.requests)
            .filter(|r| !r.optional_slots.is_empty())
            .count() as u64;
        assert_eq!(outcome.optional.count(), with_opt);
        let total: u64 = perturbed.iter().map(|t| t.len() as u64).sum();
        assert_eq!(outcome.pages.count(), total);
    }

    #[test]
    fn merge_accumulates() {
        let (sys, perturbed, _) = setup(7);
        let placement = partition_all(&sys);
        let mut whole = StaticRouter::new(&placement, "ours");
        let all = replay_all(&sys, &perturbed, &mut whole);

        let mut merged = ReplayOutcome {
            pages: ResponseStats::new(),
            optional: ResponseStats::new(),
            local_objects: 0,
            remote_objects: 0,
        };
        for t in &perturbed {
            let mut router = StaticRouter::new(&placement, "ours");
            merged.merge(&replay_site(&sys, t, &mut router));
        }
        assert_eq!(merged.pages.count(), all.pages.count());
        assert!((merged.mean_response() - all.mean_response()).abs() < 1e-9);
        assert_eq!(merged.local_objects, all.local_objects);
    }

    #[test]
    fn replay_is_deterministic() {
        let (sys, perturbed, _) = setup(8);
        let placement = partition_all(&sys);
        let a = replay_all(&sys, &perturbed, &mut StaticRouter::new(&placement, "ours"));
        let b = replay_all(&sys, &perturbed, &mut StaticRouter::new(&placement, "ours"));
        assert_eq!(a, b);
    }
}
